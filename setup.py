"""Legacy setuptools entry point.

Present so ``pip install -e .`` works in offline environments whose pip
cannot build PEP 660 editable wheels (no ``wheel`` package available).
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
