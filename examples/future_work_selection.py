#!/usr/bin/env python3
"""The paper's future-work idea, implemented: collision-aware selection.

Closing their Figures 1-6 discussion, Patil & Emer write: "we want to
predict only those branches statically that will boost constructive
collisions and reduce destructive collisions.  We plan to explore this
idea in the future."

This example explores it.  Phase one attributes every destructive
collision to both parties (the looking-up *victim* and the counter's
previous owner, the *aggressor*); selection then statically predicts
only branches that are (a) materially involved in destructive aliasing
and (b) biased enough that a fixed hint is cheap.  The comparison also
includes Lindsay's full iterative scheme (the paper evaluated only its
single-iteration simplification, Static_Fac).

Run:  python examples/future_work_selection.py [program] [size_bytes]
"""

import sys

from repro import (
    build_workload,
    get_spec,
    make_predictor,
    run_combined,
    run_selection_phase,
    simulate,
)
from repro.staticpred.iterative import select_static_iterative
from repro.utils.tables import render_table

TRACE_LENGTH = 120_000


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 2 * 1024

    workload = build_workload(get_spec(program), "ref", root_seed=42,
                              site_scale=0.125)
    trace = workload.execute(TRACE_LENGTH, run_seed=1)
    factory = lambda: make_predictor("gshare", size)
    base = simulate(trace, factory())
    print(f"{program}: gshare {size}B baseline MISP/KI = "
          f"{base.misp_per_ki:.2f}\n")

    rows = []
    for scheme in ("static_95", "static_acc", "static_collision"):
        hints = run_selection_phase(trace, scheme, predictor_factory=factory)
        result = run_combined(trace, factory(), hints)
        gain = (base.misp_per_ki - result.misp_per_ki) / base.misp_per_ki
        rows.append([
            scheme, hints.static_count(), f"{result.static_fraction:.1%}",
            round(result.misp_per_ki, 2), f"{gain:+.1%}",
            f"{gain / max(hints.static_count(), 1) * 1e4:.2f}",
        ])

    iter_hints = select_static_iterative(trace, factory)
    iter_result = run_combined(trace, factory(), iter_hints)
    iter_gain = (base.misp_per_ki - iter_result.misp_per_ki) / base.misp_per_ki
    rows.append([
        iter_hints.scheme, iter_hints.static_count(),
        f"{iter_result.static_fraction:.1%}",
        round(iter_result.misp_per_ki, 2), f"{iter_gain:+.1%}",
        f"{iter_gain / max(iter_hints.static_count(), 1) * 1e4:.2f}",
    ])

    print(render_table(
        ["scheme", "hints", "exec coverage", "MISP/KI", "improvement",
         "gain per 100 hints (%)"],
        rows,
        title="Selection schemes compared",
    ))
    print()
    print("Reading: static_collision spends far fewer hint bits because it "
          "only touches\nbranches implicated in destructive aliasing -- the "
          "highest gain per hint.\nThe iterative scheme re-simulates after "
          "each selection round and usually finds\na few extra points the "
          "single-pass schemes leave behind.")


if __name__ == "__main__":
    main()
