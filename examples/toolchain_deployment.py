#!/usr/bin/env python3
"""End-to-end deployment: profile, rewrite, persist, and price it out.

Walks the full toolchain flow the paper envisions for production use:

1. **instrument** -- run the program twice (train + ref) under the Atom
   model, accumulating the Spike profile database;
2. **optimize** -- have Spike stamp static hint bits onto the program's
   branch instructions from the stable part of the merged profile;
3. **persist** -- save the hint database (the paper's "database"
   recording phase-one decisions) and the profiles to disk, reload them,
   and verify the round trip;
4. **measure** -- simulate the rewritten program against the plain
   dynamic predictor;
5. **price** -- convert the MISP/KI delta into a CPI/speedup estimate
   with the pipeline cost model (the paper's motivation: wrong-path work
   costs cycles).

Run:  python examples/toolchain_deployment.py [program]
"""

import os
import sys
import tempfile

from repro import (
    HintAssignment,
    SpikeOptimizer,
    build_workload,
    get_spec,
    make_predictor,
    run_combined,
    simulate,
)
from repro.analysis.cost import PipelineCostModel
from repro.pipeline.frontend import FrontEndSimulator
from repro.core.combined import CombinedPredictor
from repro.profiling.database import ProfileDatabase

PREDICTOR = "gshare"
SIZE = 4 * 1024
TRACE_LENGTH = 100_000


def main() -> None:
    program_name = sys.argv[1] if len(sys.argv) > 1 else "perl"
    spec = get_spec(program_name)

    # 1. Instrumented runs feed the Spike database.
    train_workload = build_workload(spec, "train", root_seed=42,
                                    site_scale=0.125)
    ref_workload = build_workload(spec, "ref", root_seed=42, site_scale=0.125)
    train_trace = train_workload.execute(TRACE_LENGTH, run_seed=1)
    ref_trace = ref_workload.execute(TRACE_LENGTH, run_seed=1)

    spike = SpikeOptimizer()
    spike.instrument_run(train_trace)
    spike.instrument_run(ref_trace)
    print(f"instrumented {program_name}: inputs "
          f"{spike.database.inputs(program_name)}")

    # 2. Rewrite the program's hint bits from the stable merged profile.
    program = ref_workload.program
    hints = spike.optimize(program, scheme="static_95", stable_only=True)
    print(f"spike stamped {program.count_static_hints()} static hints onto "
          f"{len(program)} branch sites")

    # 3. Persist and reload everything (profiles + hint database).
    with tempfile.TemporaryDirectory() as tmp:
        spike.database.save(os.path.join(tmp, "profiles"))
        hints.save(os.path.join(tmp, "hints.json"))
        reloaded_db = ProfileDatabase.load(os.path.join(tmp, "profiles"))
        reloaded_hints = HintAssignment.load(os.path.join(tmp, "hints.json"))
    assert reloaded_hints.static_count() == hints.static_count()
    assert reloaded_db.inputs(program_name) == spike.database.inputs(program_name)
    print("profile database and hint database round-tripped through disk")

    # 4. Measure on the ref input.
    base = simulate(ref_trace, make_predictor(PREDICTOR, SIZE))
    combined = run_combined(ref_trace, make_predictor(PREDICTOR, SIZE),
                            reloaded_hints)
    print(f"\n{PREDICTOR} {SIZE}B:        MISP/KI {base.misp_per_ki:.2f}")
    print(f"{PREDICTOR} + hints:     MISP/KI {combined.misp_per_ki:.2f} "
          f"({combined.static_fraction:.0%} of executions static)")

    # 5. Price the improvement in cycles, two ways: the closed-form cost
    #    model and the trace-driven front-end simulation.
    model = PipelineCostModel(base_cpi=1.0, misprediction_penalty=7.0)
    print(f"\nclosed-form cost model (penalty "
          f"{model.misprediction_penalty:.0f} cycles):")
    print(f"  CPI {model.cpi(base):.4f} -> {model.cpi(combined):.4f}  "
          f"(speedup {model.speedup(base, combined):.3f}x)")

    frontend = FrontEndSimulator(fetch_width=4, redirect_penalty=7,
                                 taken_bubble=1)
    pipe_base = frontend.run(ref_trace, make_predictor(PREDICTOR, SIZE))
    pipe_combined = frontend.run(
        ref_trace,
        CombinedPredictor(make_predictor(PREDICTOR, SIZE), reloaded_hints),
    )
    print("trace-driven front-end model (4-wide, 7-cycle redirect):")
    print(f"  IPC {pipe_base.ipc:.3f} -> {pipe_combined.ipc:.3f}; "
          f"redirect overhead {pipe_base.redirect_overhead:.1%} -> "
          f"{pipe_combined.redirect_overhead:.1%}")


if __name__ == "__main__":
    main()
