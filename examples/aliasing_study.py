#!/usr/bin/env python3
"""Destructive aliasing under the microscope.

The paper's framing device is the *collision*: two branches sharing a
counter, classified constructive (prediction still right) or destructive
(prediction wrong).  This example uses the library's tag-based collision
instrumentation to show, for one program:

1. how collisions scale with predictor size (the paper's Figures 1-6
   x-axis),
2. how static prediction removes branches from the tables and cuts
   collisions, and
3. how the surviving collisions split into constructive vs destructive.

Run:  python examples/aliasing_study.py [program]
"""

import sys

from repro import (
    build_workload,
    get_spec,
    make_predictor,
    run_combined,
    run_selection_phase,
    simulate,
)
from repro.utils.charts import render_line_chart
from repro.utils.tables import render_table

SIZES = (512, 1024, 2048, 4096, 8192, 16384)
TRACE_LENGTH = 100_000


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    workload = build_workload(get_spec(program), "ref", root_seed=42,
                              site_scale=0.125)
    trace = workload.execute(TRACE_LENGTH, run_seed=1)
    hints = run_selection_phase(trace, "static_95")
    print(f"{program}: {len(trace)} branches; static_95 marked "
          f"{hints.static_count()} of "
          f"{len(set(trace.addresses))} executed branches\n")

    rows = []
    misp_series = {"dynamic only": [], "with static_95": []}
    collision_series = {"dynamic only": [], "with static_95": []}
    for size in SIZES:
        base = simulate(trace, make_predictor("gshare", size),
                        track_collisions=True)
        combined = run_combined(trace, make_predictor("gshare", size),
                                hints, track_collisions=True)
        rows.append([
            size,
            round(base.misp_per_ki, 2),
            base.collisions.collisions,
            f"{base.collisions.destructive_fraction:.0%}",
            round(combined.misp_per_ki, 2),
            combined.collisions.collisions,
            f"{combined.collisions.destructive_fraction:.0%}",
        ])
        misp_series["dynamic only"].append(base.misp_per_ki)
        misp_series["with static_95"].append(combined.misp_per_ki)
        collision_series["dynamic only"].append(float(base.collisions.collisions))
        collision_series["with static_95"].append(
            float(combined.collisions.collisions)
        )

    print(render_table(
        ["size (B)", "MISP/KI", "collisions", "destr.",
         "MISP/KI +static", "collisions +static", "destr. +static"],
        rows,
        title=f"gshare on {program}: aliasing vs size",
    ))
    print()
    labels = [str(s) for s in SIZES]
    print(render_line_chart(labels, misp_series,
                            title="MISP/KI vs size", y_label="MISP/KI"))
    print()
    print(render_line_chart(labels, collision_series,
                            title="collisions vs size", y_label="collisions"))
    print()
    print("Reading: collisions fall both with table size (fewer branches "
          "per counter)\nand with static prediction (statically predicted "
          "branches stop indexing the\ntables entirely) -- the two "
          "aliasing levers the paper compares.")


if __name__ == "__main__":
    main()
