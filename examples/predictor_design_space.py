#!/usr/bin/env python3
"""Predictor design-space tour: five schemes, six programs, one budget.

Sweeps the paper's five dynamic predictors (plus the related-work agree
predictor) across all six SPECINT95 stand-ins at a fixed hardware
budget, with and without profile-guided static assistance -- a compact
version of the paper's Figures 7-12 panels, useful for seeing at a
glance which scheme/program combinations are aliasing-limited.

Run:  python examples/predictor_design_space.py [size_bytes]
"""

import sys

from repro import (
    build_workload,
    get_spec,
    make_predictor,
    run_combined,
    run_selection_phase,
    simulate,
)
from repro.utils.tables import render_table
from repro.workloads.spec95 import PROGRAM_ORDER

PREDICTORS = ("bimodal", "ghist", "gshare", "bimode", "2bcgskew", "agree")
TRACE_LENGTH = 80_000


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 8 * 1024

    print(f"MISP/KI at {size} bytes, {TRACE_LENGTH} branches per program")
    print("(second value: with static_acc hints; '-' = scheme has no "
          "accuracy profile)\n")

    rows = []
    for program in PROGRAM_ORDER:
        workload = build_workload(get_spec(program), "ref", root_seed=42,
                                  site_scale=0.125)
        trace = workload.execute(TRACE_LENGTH, run_seed=1)
        row = [program]
        for name in PREDICTORS:
            factory = lambda: make_predictor(name, size)
            base = simulate(trace, factory())
            hints = run_selection_phase(trace, "static_acc",
                                        predictor_factory=factory)
            combined = run_combined(trace, factory(), hints)
            row.append(f"{base.misp_per_ki:.1f}/{combined.misp_per_ki:.1f}")
        rows.append(row)

    print(render_table(["program"] + list(PREDICTORS), rows,
                       title="MISP/KI: dynamic alone / with static_acc"))
    print()
    print("Reading: 2bcgskew is the strongest dynamic predictor everywhere "
          "(its skewed\nbanks and partial update already fight aliasing), "
          "so static hints move it least;\nsimple history predictors at "
          "small budgets gain the most -- the paper's central\ntrade-off "
          "between hardware and profile-guided aliasing relief.")


if __name__ == "__main__":
    main()
