#!/usr/bin/env python3
"""Quickstart: the paper's two-phase flow on one program.

Reproduces, in miniature, the core experiment of Patil & Emer (HPCA
2000): take a dynamic branch predictor, profile a program, select
branches for static prediction with the two schemes the paper studies,
and measure how much the combined static+dynamic predictor reduces
MISPs/KI (mispredictions per thousand instructions).

Run:  python examples/quickstart.py
"""

from repro import (
    ShiftPolicy,
    build_workload,
    get_spec,
    make_predictor,
    run_combined,
    run_selection_phase,
    simulate,
)

PROGRAM = "gcc"           # the paper's most aliasing-limited program
PREDICTOR = "gshare"
SIZE_BYTES = 4 * 1024     # a small predictor, where aliasing bites
TRACE_LENGTH = 120_000


def main() -> None:
    # 1. Build a synthetic workload calibrated to the paper's gcc
    #    statistics and execute it to get a branch trace.  (The paper
    #    ran Atom-instrumented Alpha binaries; see DESIGN.md for how the
    #    synthetic stand-ins are calibrated.)
    spec = get_spec(PROGRAM)
    workload = build_workload(spec, "ref", root_seed=42, site_scale=0.125)
    trace = workload.execute(TRACE_LENGTH, run_seed=1)
    print(f"workload: {PROGRAM}/ref, {len(trace)} branches, "
          f"{trace.instruction_count} instructions "
          f"({trace.cbrs_per_ki():.0f} CBRs/KI)")

    # 2. Baseline: the dynamic predictor alone.
    base = simulate(trace, make_predictor(PREDICTOR, SIZE_BYTES))
    print(f"\n{PREDICTOR} {SIZE_BYTES}B alone:          "
          f"MISP/KI = {base.misp_per_ki:6.2f}  (accuracy {base.accuracy:.1%})")

    # 3. Phase one -- selection.  Static_95 marks highly biased branches;
    #    Static_Acc simulates the dynamic predictor and marks branches
    #    whose bias beats the accuracy the predictor achieved on them.
    factory = lambda: make_predictor(PREDICTOR, SIZE_BYTES)
    hints_95 = run_selection_phase(trace, "static_95")
    hints_acc = run_selection_phase(trace, "static_acc",
                                    predictor_factory=factory)
    print(f"\nselection: static_95 marked {hints_95.static_count()} branches, "
          f"static_acc marked {hints_acc.static_count()}")

    # 4. Phase two -- measure the combined predictors.
    for label, hints in (("static_95 ", hints_95), ("static_acc", hints_acc)):
        result = run_combined(trace, factory(), hints)
        gain = (base.misp_per_ki - result.misp_per_ki) / base.misp_per_ki
        print(f"{PREDICTOR} + {label}:        MISP/KI = "
              f"{result.misp_per_ki:6.2f}  ({gain:+.1%}, "
              f"{result.static_fraction:.0%} of executions static)")

    # 5. The Table 4 knob: shift statically predicted outcomes into the
    #    global history register so the dynamic side keeps seeing them.
    shifted = run_combined(trace, factory(), hints_acc,
                           shift_policy=ShiftPolicy.SHIFT)
    gain = (base.misp_per_ki - shifted.misp_per_ki) / base.misp_per_ki
    print(f"{PREDICTOR} + static_acc+shift:  MISP/KI = "
          f"{shifted.misp_per_ki:6.2f}  ({gain:+.1%})")


if __name__ == "__main__":
    main()
