#!/usr/bin/env python3
"""Cross-training pitfalls and the Spike profile-database fix.

Profile-guided static prediction is only as good as its training input.
Section 5.1 of the paper shows that when branch behaviour changes from
the ``train`` to the ``ref`` input -- as it does for perl and m88ksim --
naively applying train-derived hints to a ref run *increases*
mispredictions, and that merging profiles across inputs while filtering
branches whose bias moves more than 5% repairs the damage.

This example walks the full deployment flow through the
:class:`repro.SpikeOptimizer` model: instrument runs, accumulate the
profile database, and compare four hint policies on the ref input.

Run:  python examples/cross_training.py [program]
"""

import sys

from repro import (
    ProgramProfile,
    SpikeOptimizer,
    build_workload,
    get_spec,
    make_predictor,
    run_combined,
    select_static_95,
    simulate,
)
from repro.utils.tables import render_table

GSHARE_BYTES = 16 * 1024
TRACE_LENGTH = 120_000


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "m88ksim"
    spec = get_spec(program)
    train_trace = build_workload(spec, "train", root_seed=42,
                                 site_scale=0.125).execute(TRACE_LENGTH, 1)
    ref_trace = build_workload(spec, "ref", root_seed=42,
                               site_scale=0.125).execute(TRACE_LENGTH, 1)

    # Instrumentation runs populate the Spike profile database.
    spike = SpikeOptimizer()
    spike.instrument_run(train_trace)
    spike.instrument_run(ref_trace)

    predictor = lambda: make_predictor("gshare", GSHARE_BYTES)

    results = {}
    results["no static"] = simulate(ref_trace, predictor())
    results["self-trained"] = run_combined(
        ref_trace, predictor(),
        select_static_95(ProgramProfile.from_trace(ref_trace)),
    )
    results["naive cross-trained"] = run_combined(
        ref_trace, predictor(),
        select_static_95(ProgramProfile.from_trace(train_trace)),
    )
    results["merged + 5% filter"] = run_combined(
        ref_trace, predictor(),
        spike.select_hints(program, scheme="static_95", stable_only=True),
    )

    base = results["no static"].misp_per_ki
    rows = []
    for label, result in results.items():
        gain = (base - result.misp_per_ki) / base if base else 0.0
        rows.append([
            label,
            round(result.misp_per_ki, 2),
            f"{gain:+.1%}",
            result.static_branches,
            f"{result.static_accuracy:.1%}" if result.static_branches else "-",
        ])
    print(render_table(
        ["hint policy", "MISP/KI", "vs no static", "static execs",
         "static accuracy"],
        rows,
        title=f"{program}: gshare {GSHARE_BYTES // 1024}KB + static_95 "
              "(Figure 13 flow)",
    ))
    print()
    print("Reading: for programs whose hot branches reverse behaviour "
          "between inputs\n(perl, m88ksim), the naive row degrades sharply; "
          "the filtered-merge row --\nthe paper's proposed Spike database "
          "flow -- recovers nearly all of it.")


if __name__ == "__main__":
    main()
