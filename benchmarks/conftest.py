"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper on
realistic-size traces (``REPRO_TRACE_LENGTH``, default 200000 branches),
prints the rendered report, saves it under ``benchmarks/results/``, and
asserts the paper's *shape* claims (who wins, where the crossovers are),
not absolute numbers.

The experiment context is session-scoped: traces, profiles, and accuracy
measurements are shared across benchmarks, like the paper's phase-one
database feeding every phase-two measurement.

Cell-based experiments additionally honor ``REPRO_JOBS`` (fan simulation
cells out over worker processes) and ``REPRO_CACHE_DIR`` (reuse
persisted results across benchmark sessions); both are bit-identical to
a serial fresh run, so they accelerate the harness without perturbing
the regenerated tables and figures.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentContext

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """Shared experiment context for the whole benchmark session."""
    return ExperimentContext()


@pytest.fixture(scope="session")
def save_report():
    """Persist a rendered report under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(report) -> str:
        path = os.path.join(RESULTS_DIR, f"{report.experiment_id}.txt")
        text = report.render()
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(text)
        print()
        print(text)
        return path

    return _save
