"""Benchmark: regenerate paper Table 5 (train vs ref branch behaviour)."""

from repro.experiments import table5
from repro.workloads.spec95 import PROGRAM_ORDER


def test_table5(benchmark, ctx, save_report):
    report = benchmark.pedantic(table5.run, args=(ctx,), rounds=1, iterations=1)
    save_report(report)

    drifts = {program: report.data[program] for program in PROGRAM_ORDER}

    # Shape 1: "except in case of perl, the train input executes almost
    # all the branches the ref input does" -- perl has the lowest static
    # coverage, everyone else is high.
    coverages = {p: d.coverage_static for p, d in drifts.items()}
    assert min(coverages, key=coverages.get) == "perl"
    for program, coverage in coverages.items():
        if program != "perl":
            assert coverage > 0.75, (program, coverage)

    # Shape 2: every program has a non-trivial majority-direction-change
    # tail ("a non-trivial number of branches showing complete reversal").
    for program, drift in drifts.items():
        assert drift.majority_change_static > 0.0, program

    # Shape 3: most common branches change bias by < 5% -- the fact that
    # makes the Section 5.1 filter retain most profile data.
    for program, drift in drifts.items():
        assert drift.small_change_static > 0.5, (
            program, drift.small_change_static,
        )
        assert drift.small_change_static > drift.large_change_static

    # Shape 4: perl and m88ksim carry *hot* behaviour changes -- their
    # dynamic (execution-weighted) majority-change rate exceeds gcc's,
    # which is what breaks naive cross-training for exactly those two
    # programs in Figure 13.
    for program in ("perl", "m88ksim"):
        assert (drifts[program].majority_change_dynamic
                > drifts["gcc"].majority_change_dynamic), program
