"""Benchmark: regenerate paper Figures 7-12 (five dynamic predictors
under no-static / Static_95 / Static_Acc, per program)."""

import pytest

from repro.experiments import figures_schemes
from repro.workloads.spec95 import PROGRAM_ORDER


@pytest.mark.parametrize("program", PROGRAM_ORDER)
def test_schemes_panel(benchmark, ctx, save_report, program):
    report = benchmark.pedantic(
        figures_schemes.run_program, args=(ctx, program), rounds=1, iterations=1
    )
    save_report(report)
    misp = report.data["misp"]

    # Shape 1: the bimodal predictor "does not benefit at all" from
    # Static_95 -- change within a 12% noise band either way.
    base = misp["bimodal"]["none"]
    change = abs(misp["bimodal"]["static_95"] - base) / base
    assert change < 0.12, (program, change)

    # Shape 2: ghist improves with Static_95 where aliasing dominates
    # (go, gcc, perl) and never materially degrades elsewhere at this
    # panel size.  Exceptions mirror the paper's own: ijpeg is flat, and
    # compress/m88ksim lose some history correlation when their
    # (dominant) biased branches stop shifting into ghist -- the
    # correlation-loss effect of the paper's contribution #1, which
    # Static_Acc recovers (checked for compress).
    if program in ("go", "gcc", "perl"):
        assert misp["ghist"]["static_95"] < misp["ghist"]["none"], program
    else:
        assert misp["ghist"]["static_95"] <= misp["ghist"]["none"] * 1.06, program
    if program == "compress":
        assert misp["ghist"]["static_acc"] < misp["ghist"]["none"], program

    # Shape 3: 2bcgskew is the best dynamic predictor without static
    # prediction.
    bases = {name: misp[name]["none"] for name in figures_schemes.PREDICTORS}
    assert min(bases, key=bases.get) == "2bcgskew", program


def test_program_level_shapes(benchmark, ctx, save_report):
    """Cross-program claims of Section 5 (Figures 7-12 discussion)."""

    def collect():
        return {
            program: figures_schemes.run_program(ctx, program).data["misp"]
            for program in PROGRAM_ORDER
        }

    per_program = benchmark.pedantic(collect, rounds=1, iterations=1)

    def gain(program, predictor, scheme):
        base = per_program[program][predictor]["none"]
        return (base - per_program[program][predictor][scheme]) / base

    # "For m88ksim statically predicting highly biased branches
    # (static_95) is better than ... (static_Acc) for all dynamic
    # predictors (except, of course, bimodal)" -- we require it for the
    # history-based predictors where the effect is architectural.
    m88_95 = sum(gain("m88ksim", p, "static_95")
                 for p in ("ghist", "gshare"))
    m88_acc = sum(gain("m88ksim", p, "static_acc")
                  for p in ("ghist", "gshare"))
    # And conversely go/gcc (few highly biased branches) prefer
    # Static_Acc over Static_95 on aggregate.
    for program in ("go", "gcc"):
        total_acc = sum(gain(program, p, "static_acc")
                        for p in ("ghist", "gshare", "2bcgskew"))
        total_95 = sum(gain(program, p, "static_95")
                       for p in ("ghist", "gshare", "2bcgskew"))
        assert total_acc > total_95, program

    # ijpeg shows the smallest static-prediction benefit of all programs
    # for the history predictors (the paper: "hardly any improvement").
    ijpeg_best = max(gain("ijpeg", p, s)
                     for p in ("ghist", "gshare")
                     for s in ("static_95", "static_acc"))
    gcc_best = max(gain("gcc", p, s)
                   for p in ("ghist", "gshare")
                   for s in ("static_95", "static_acc"))
    assert gcc_best > ijpeg_best
