"""Benchmarks: the ablation studies (agree baseline, cutoff sweep,
history-length sweep) plus raw predictor throughput."""

from repro.experiments import ablations
from repro.predictors.sizing import PREDICTOR_NAMES, make_predictor

import pytest


def test_ablation_agree(benchmark, ctx, save_report):
    report = benchmark.pedantic(ablations.run_agree, args=(ctx,), rounds=1,
                                iterations=1)
    save_report(report)
    # The agree mechanism addresses the same destructive aliasing; it
    # should beat plain gshare on the aliasing-limited programs (gcc has
    # the most static branches and the highest density).
    gcc = report.data["gcc"]
    assert gcc["agree"] < gcc["gshare"]
    # And profile-guided static selection should be at least competitive
    # with agree's hardware bias bits somewhere in the suite.
    wins = sum(
        1 for program, row in report.data.items()
        if row["gshare+static_acc"] < row["agree"]
    )
    assert wins >= 2


def test_ablation_cutoff(benchmark, ctx, save_report):
    report = benchmark.pedantic(ablations.run_cutoff_sweep, args=(ctx,),
                                rounds=1, iterations=1)
    save_report(report)
    # Every cutoff should improve gshare for gcc (aliasing-dominated).
    assert all(g > 0 for g in report.data["gcc"].values())


def test_ablation_history(benchmark, ctx, save_report):
    report = benchmark.pedantic(ablations.run_history_sweep, args=(ctx,),
                                rounds=1, iterations=1)
    save_report(report)
    lengths = sorted(report.data)
    # The sweep must not be flat: history length is a real knob.
    values = [report.data[length] for length in lengths]
    assert max(values) > min(values) * 1.02
    # The library's default (8 bits) must be competitive with the sweep's
    # best point, or the default is mis-chosen.  The best length drifts
    # with trace length (shorter traces favour shorter histories), so the
    # band is generous.
    best = min(values)
    assert report.data[8] <= best * 1.20


def test_ablation_selection(benchmark, ctx, save_report):
    report = benchmark.pedantic(ablations.run_selection_shootout, args=(ctx,),
                                rounds=1, iterations=1)
    save_report(report)
    for program, per_scheme in report.data.items():
        # The iterative scheme subsumes static_acc (it IS static_acc run
        # to a fixpoint), so it must not lose to it materially.
        assert (per_scheme["static_iter"]["gain"]
                >= per_scheme["static_acc"]["gain"] - 0.02), program
        # The collision-aware scheme is the hint-frugal option: it covers
        # fewer dynamic executions than static_acc on every program
        # (it only touches branches implicated in destructive aliasing).
        assert (per_scheme["static_collision"]["static_fraction"]
                < per_scheme["static_acc"]["static_fraction"]), program
    # And it still delivers a real improvement where aliasing is the
    # bottleneck (gcc).
    assert report.data["gcc"]["static_collision"]["gain"] > 0.05


def test_pipeline_impact(benchmark, ctx, save_report):
    from repro.experiments import extras

    report = benchmark.pedantic(extras.run_pipeline_impact, args=(ctx,),
                                rounds=1, iterations=1)
    save_report(report)
    # Deeper pipelines amplify the benefit for every program.
    for program, per_depth in report.data.items():
        shallow, deep = per_depth[7], per_depth[20]
        assert deep >= shallow - 1e-9, (program, per_depth)
    # And static hints never slow the front end down materially.
    for program, per_depth in report.data.items():
        assert per_depth[7] > 0.98, (program, per_depth)


def test_classification(benchmark, ctx, save_report):
    from repro.experiments import extras

    report = benchmark.pedantic(extras.run_classification, args=(ctx,),
                                rounds=1, iterations=1)
    save_report(report)
    # The classification's highly-biased share must order the programs
    # like Table 2: go lowest, m88ksim highest.
    shares = {p: d["highly_biased"] for p, d in report.data.items()}
    assert min(shares, key=shares.get) == "go"
    assert max(shares, key=shares.get) == "m88ksim"


@pytest.mark.parametrize("name", PREDICTOR_NAMES)
def test_predictor_throughput(benchmark, ctx, name):
    """Raw predict/update throughput per scheme (microbenchmark)."""
    trace = ctx.trace("gcc", "ref")
    addresses = trace.addresses[:20_000]
    outcomes = trace.outcomes[:20_000]

    def run():
        predictor = make_predictor(name, 8192)
        predict = predictor.predict
        update = predictor.update
        mispredictions = 0
        for i in range(len(addresses)):
            address = addresses[i]
            taken = outcomes[i]
            predicted = predict(address)
            update(address, taken, predicted)
            if predicted != taken:
                mispredictions += 1
        return mispredictions

    mispredictions = benchmark(run)
    assert 0 < mispredictions < len(addresses)
