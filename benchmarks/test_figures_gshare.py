"""Benchmark: regenerate paper Figures 1-6 (gshare size sweep with and
without Static_Acc, plus collision counts)."""

import pytest

from repro.experiments import figures_gshare
from repro.workloads.spec95 import PROGRAM_ORDER


@pytest.mark.parametrize("program", PROGRAM_ORDER)
def test_gshare_sweep(benchmark, ctx, save_report, program):
    report = benchmark.pedantic(
        figures_gshare.run_program, args=(ctx, program), rounds=1, iterations=1
    )
    save_report(report)

    misp_none = report.data["misp_none"]
    misp_static = report.data["misp_static"]
    collisions_none = report.data["collisions_none"]
    collisions_static = report.data["collisions_static"]
    n = len(figures_gshare.SIZES)

    # Shape 1: "static prediction always improves MISP/KI for gshare for
    # all the test programs at all the predictor sizes tested" -- allow a
    # 3% noise band per point but require strict improvement on average.
    for base, static in zip(misp_none, misp_static):
        assert static <= base * 1.03, (program, base, static)
    assert sum(misp_static) < sum(misp_none)

    # Shape 2: the improvement is larger at small sizes than at large
    # sizes (more collisions -> more opportunity).  ijpeg is the paper's
    # own exception -- "increasing predictor size ... benefits ijpeg very
    # little for any dynamic predictor", so its gain is size-flat; allow
    # a small tolerance band there.
    small_gain = (misp_none[0] - misp_static[0]) / misp_none[0]
    large_gain = (misp_none[-1] - misp_static[-1]) / misp_none[-1]
    tolerance = 0.03 if program == "ijpeg" else 0.0
    assert small_gain > large_gain - tolerance, program

    # Shape 3: MISP/KI falls (weakly) as the predictor grows.
    assert misp_none[-1] < misp_none[0]

    # Shape 4: collisions drop with predictor size, and (summed over the
    # sweep) drop with static prediction.  The paper notes ijpeg as the
    # exception where collisions can rise constructively.
    assert collisions_none[-1] < collisions_none[0]
    if program != "ijpeg":
        assert sum(collisions_static) < sum(collisions_none)
