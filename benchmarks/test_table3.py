"""Benchmark: regenerate paper Table 3 (2bcgskew improvements, go & gcc)."""

from repro.experiments import table3


def test_table3(benchmark, ctx, save_report):
    report = benchmark.pedantic(table3.run, args=(ctx,), rounds=1, iterations=1)
    save_report(report)

    go = report.data["go"]
    gcc = report.data["gcc"]

    # Shape 1: gains shrink as 2bcgskew grows (paper: gcc +13-14% at 2KB
    # falling monotonically to +2-4% at 32KB).  Require the small-size
    # gain to beat the large-size gain for both programs and schemes.
    for program in (go, gcc):
        for scheme in ("static_95", "static_acc"):
            gains = program[scheme]
            assert gains[0] > gains[-1], (scheme, gains)

    # Shape 2: gcc keeps a positive improvement at every size (it has the
    # highest CBRs/KI and the most aliasing).
    for scheme in ("static_95", "static_acc"):
        assert all(g > 0 for g in gcc[scheme]), gcc[scheme]

    # Shape 3: gcc's improvements exceed go's at every size under
    # Static_Acc (paper columns: gcc 14.1 -> 4.2 vs go 7.7 -> -1.4).
    for gcc_gain, go_gain in zip(gcc["static_acc"], go["static_acc"]):
        assert gcc_gain > go_gain

    # Shape 4: 2bcgskew does benefit at small sizes for both programs.
    assert go["static_acc"][0] > 0.0
    assert gcc["static_acc"][0] > 0.05
