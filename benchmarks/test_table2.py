"""Benchmark: regenerate paper Table 2 (bias vs prediction accuracy)."""

from repro.experiments import table2


def test_table2(benchmark, ctx, save_report):
    report = benchmark.pedantic(table2.run, args=(ctx,), rounds=1, iterations=1)
    save_report(report)

    accuracy = report.data["accuracy"]
    biased = report.data["biased_fraction"]

    # Shape 1: go is the hardest program for every predictor; m88ksim the
    # easiest (paper rows 75.7-83.1% vs 96.4-98.9%).
    for predictor in table2.PREDICTORS:
        per_program = {p: accuracy[p][predictor] for p in accuracy}
        assert min(per_program, key=per_program.get) == "go"
        assert max(per_program, key=per_program.get) == "m88ksim"

    # Shape 2: the biased-fraction ordering matches the paper's within a
    # tolerance -- go lowest, m88ksim highest.
    assert min(biased, key=biased.get) == "go"
    assert max(biased, key=biased.get) == "m88ksim"

    # Shape 3: accuracy is near-monotone in the biased fraction for every
    # predictor (the paper's headline correlation; compress is its noted
    # exception, so allow a few inversions out of 15 pairs).
    inversions_table = report.table(
        "Monotonicity of accuracy in biased-fraction order"
    )
    for _predictor, inversions in inversions_table.rows:
        assert inversions <= 3

    # Shape 4: 2bcgskew is the most accurate predictor on every program.
    for program, per_predictor in accuracy.items():
        assert max(per_predictor, key=per_predictor.get) == "2bcgskew", program
