"""Benchmark: regenerate paper Table 1 (program characteristics)."""

from repro.experiments import table1
from repro.workloads.spec95 import PROGRAM_ORDER, get_spec


def test_table1(benchmark, ctx, save_report):
    report = benchmark.pedantic(table1.run, args=(ctx,), rounds=1, iterations=1)
    save_report(report)

    rows = report.tables[0].rows
    assert len(rows) == len(PROGRAM_ORDER)
    for row in rows:
        program = row[0]
        spec = get_spec(program)
        # Paper static CBR counts reproduced exactly.
        assert row[1] == spec.static_branches
        # Measured CBRs/KI within 5% of the paper's Table 1 values.
        measured_train, paper_train = row[4], row[5]
        measured_ref, paper_ref = row[7], row[8]
        assert abs(measured_train - paper_train) / paper_train < 0.05
        assert abs(measured_ref - paper_ref) / paper_ref < 0.05
    # gcc has the highest branch density, ijpeg the lowest (paper's
    # aliasing-pressure ordering).
    by_density = {row[0]: row[7] for row in rows}
    assert max(by_density, key=by_density.get) == "gcc"
    assert min(by_density, key=by_density.get) == "ijpeg"
