"""Seed robustness: the core shape claims must not be one-seed flukes.

Reproductions built on synthetic workloads owe the reader evidence that
the headline results survive re-rolling the randomness.  This benchmark
re-derives three load-bearing claims under three different root seeds
(fresh programs, routines, paths, behaviours, and traces each time):

1. static prediction improves a small gshare on gcc (Figures 1-6 core);
2. bimodal + Static_95 stays flat (Figures 7-12 negative result);
3. naive cross-training degrades m88ksim relative to self-training and
   the filtered merge recovers it (Figure 13 core).
"""

import pytest

from repro.core.simulator import run_combined, simulate
from repro.experiments.common import ExperimentContext
from repro.predictors.sizing import make_predictor
from repro.profiling.database import ProfileDatabase
from repro.staticpred.selection import select_static_95

SEEDS = (41, 42, 43)
LENGTH = 80_000


@pytest.mark.parametrize("seed", SEEDS)
def test_core_shapes_survive_reseeding(benchmark, seed):
    ctx = ExperimentContext(trace_length=LENGTH, seed=seed)

    def claims():
        results = {}
        # Claim 1: static_acc improves small gshare on gcc.
        base = ctx.run("gcc", "gshare", 2048, scheme="none")
        static = ctx.run("gcc", "gshare", 2048, scheme="static_acc")
        results["gcc_gain"] = (
            (base.misp_per_ki - static.misp_per_ki) / base.misp_per_ki
        )
        # Claim 2: bimodal + static_95 is flat on gcc.
        bimodal_base = ctx.run("gcc", "bimodal", 8192, scheme="none")
        bimodal_static = ctx.run("gcc", "bimodal", 8192, scheme="static_95")
        results["bimodal_change"] = abs(
            bimodal_static.misp_per_ki - bimodal_base.misp_per_ki
        ) / bimodal_base.misp_per_ki
        # Claim 3: the Figure 13 m88ksim story.
        ref_trace = ctx.trace("m88ksim", "ref")
        self_hints = select_static_95(ctx.profile("m88ksim", "ref"))
        naive_hints = select_static_95(ctx.profile("m88ksim", "train"))
        database = ProfileDatabase()
        database.record(ctx.profile("m88ksim", "train"))
        database.record(ctx.profile("m88ksim", "ref"))
        filtered_hints = select_static_95(database.stable_filtered("m88ksim"))
        results["self"] = run_combined(
            ref_trace, make_predictor("gshare", 16384), self_hints
        ).misp_per_ki
        results["naive"] = run_combined(
            ref_trace, make_predictor("gshare", 16384), naive_hints
        ).misp_per_ki
        results["filtered"] = run_combined(
            ref_trace, make_predictor("gshare", 16384), filtered_hints
        ).misp_per_ki
        return results

    results = benchmark.pedantic(claims, rounds=1, iterations=1)
    assert results["gcc_gain"] > 0.05, (seed, results)
    assert results["bimodal_change"] < 0.12, (seed, results)
    assert results["naive"] > results["self"] * 1.3, (seed, results)
    assert results["filtered"] < results["naive"] * 0.75, (seed, results)
