"""Benchmark: regenerate paper Figure 13 (cross-training effects)."""

from repro.experiments import figure13


def test_figure13(benchmark, ctx, save_report):
    report = benchmark.pedantic(figure13.run, args=(ctx,), rounds=1,
                                iterations=1)
    save_report(report)
    misp = report.data["misp"]

    # Shape 1: self-trained static prediction does not materially hurt
    # (it is the paper's upper-bound setup).  At 16 Kbytes our scaled
    # workloads have *less* aliasing than the paper's full-size ones
    # (8x fewer static branches), so this size behaves like the paper's
    # very large predictors -- where its own Table 4 records static_95
    # degradations (m88ksim -1.8%, gcc -2.4% at 32KB).  The band allows
    # that regime's wobble; the cross-training contrasts below are the
    # figure's real claims.
    for program, bars in misp.items():
        assert bars["self"] <= bars["none"] * 1.15, (program, bars)

    # Shape 2: naive cross-training severely degrades perl and m88ksim
    # (their hot branches reverse between inputs): worse than both the
    # self-trained case and the no-static baseline.
    for program in ("perl", "m88ksim"):
        bars = misp[program]
        assert bars["cross-naive"] > bars["self"] * 1.15, (program, bars)
        assert bars["cross-naive"] > bars["none"], (program, bars)

    # Shape 3: the merged-and-filtered profile rescues them -- much
    # closer to the self-trained result.
    for program in ("perl", "m88ksim"):
        bars = misp[program]
        assert bars["cross-filtered"] < bars["cross-naive"], (program, bars)
        recovered = (bars["cross-naive"] - bars["cross-filtered"]) / (
            bars["cross-naive"] - bars["self"]
        )
        assert recovered > 0.5, (program, recovered)

    # Shape 4: for behaviour-stable programs, naive cross-training stays
    # close to self-training (within 20%).
    for program in ("gcc", "ijpeg"):
        bars = misp[program]
        assert bars["cross-naive"] <= bars["self"] * 1.2, (program, bars)
