"""Benchmark: regenerate paper Table 4 (shifting static outcomes into the
global history register, 2bcgskew at 32/64 KB)."""

from repro.experiments import table4
from repro.workloads.spec95 import PROGRAM_ORDER


def test_table4(benchmark, ctx, save_report):
    report = benchmark.pedantic(table4.run, args=(ctx,), rounds=1, iterations=1)
    save_report(report)
    improvements = report.data["improvements"]

    # Shape 1 (the paper's contribution #1): when Static_Acc degrades
    # the predictor, adding the shift recovers (paper: ijpeg -1.4% ->
    # +5.8%).  The paper's own Table 4 shows Static_95 degradations are
    # NOT always rescued (m88ksim -1.8% -> -2.1%), so the strict check
    # applies to Static_Acc only, plus a majority check across all
    # degradation cells.
    degraded = 0
    shift_helped = 0
    for (program, size), cell in improvements.items():
        if cell["static_acc"] < -0.005:
            assert cell["static_acc+shift"] > cell["static_acc"], (
                program, size, cell,
            )
        for scheme in ("static_95", "static_acc"):
            if cell[scheme] < -0.005:
                degraded += 1
                if cell[scheme + "+shift"] > cell[scheme]:
                    shift_helped += 1
    if degraded:
        assert shift_helped * 2 >= degraded, (shift_helped, degraded)

    # Shape 2: shifting with Static_Acc helps go and gcc even at these
    # large sizes (paper: go +5.8%, gcc +5.0% at 32KB with shift).
    for program in ("go", "gcc"):
        for size in table4.SIZES:
            cell = improvements[(program, size)]
            assert cell["static_acc+shift"] > 0.0, (program, size, cell)

    # Shape 3: shift changes results materially somewhere -- the policy
    # is not a no-op (paper: m88ksim Static_Acc 2.1% -> 8.9% with shift).
    deltas = [
        abs(cell["static_acc+shift"] - cell["static_acc"])
        for cell in improvements.values()
    ]
    assert max(deltas) > 0.02
