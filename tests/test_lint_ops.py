"""Tests for the lint operational layer: baseline, SARIF, cache, --changed.

These are the adoption mechanics around the rule battery — the ratchet
that lets real findings be accepted as debt without going green on new
ones, the SARIF rendering GitHub code scanning ingests, the
content-hash analysis cache, and git-diff-scoped runs — plus their CLI
wiring.
"""

from __future__ import annotations

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import LintError
from repro.lint import (
    AnalysisCache,
    Baseline,
    Finding,
    LintEngine,
    Severity,
    git_changed_paths,
    render_sarif,
    select_rules,
)

CLEAN = "def fine():\n    return 1\n"
DIRTY = "import random\n"  # one DET001 finding


def finding(path="mod.py", line=3, rule="DET001", message="boom") -> Finding:
    return Finding(path=path, line=line, col=0, rule=rule,
                   severity=Severity.ERROR, message=message)


def write(tmp_path: Path, rel: str, source: str) -> Path:
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


# ---------------------------------------------------------------------------
# Baseline ratchet


class TestBaseline:
    def test_round_trip_and_filtering(self, tmp_path):
        accepted = [finding(line=3), finding(path="other.py", rule="BIT001")]
        path = tmp_path / "baseline.json"
        Baseline.from_findings(accepted).save(path)

        loaded = Baseline.load(path)
        assert len(loaded) == 2
        # Same fingerprint at a *different line* is still baselined:
        # line numbers shift whenever unrelated code moves.
        new, baselined = loaded.filter_new([finding(line=99)])
        assert new == [] and baselined == 1

    def test_new_findings_survive_the_filter(self, tmp_path):
        baseline = Baseline.from_findings([finding()])
        fresh = finding(message="a different defect")
        new, baselined = baseline.filter_new([finding(), fresh])
        assert new == [fresh] and baselined == 1

    def test_duplicate_fingerprints_are_counted(self):
        baseline = Baseline.from_findings([finding(line=1)])
        # Two occurrences of a once-baselined fingerprint: the second is new.
        new, baselined = baseline.filter_new([finding(line=1),
                                              finding(line=2)])
        assert baselined == 1
        assert new == [finding(line=2)]

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        new, baselined = baseline.filter_new([finding()])
        assert len(baseline) == 0 and baselined == 0 and len(new) == 1

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"nope\": true}", encoding="utf-8")
        with pytest.raises(LintError):
            Baseline.load(path)

    def test_saved_file_is_sorted_and_versioned(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([finding(path="z.py"),
                                finding(path="a.py")]).save(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert [e["path"] for e in payload["findings"]] == ["a.py", "z.py"]


# ---------------------------------------------------------------------------
# SARIF rendering


class TestSarif:
    def test_document_structure(self):
        document = json.loads(render_sarif([finding()]))
        assert document["version"] == "2.1.0"
        assert document["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = document["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert driver["informationUri"].startswith("https://")
        assert run["columnKind"] == "utf16CodeUnits"
        rule_entries = driver["rules"]
        assert all({"id", "shortDescription", "defaultConfiguration"}
                   <= set(entry) for entry in rule_entries)

    def test_result_links_back_to_its_rule_descriptor(self):
        document = json.loads(render_sarif([finding()]))
        run = document["runs"][0]
        (result,) = run["results"]
        assert result["ruleId"] == "DET001"
        descriptors = run["tool"]["driver"]["rules"]
        assert descriptors[result["ruleIndex"]]["id"] == "DET001"
        assert result["level"] == "error"
        assert result["message"]["text"] == "boom"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "mod.py"
        assert location["region"]["startLine"] == 3
        assert location["region"]["startColumn"] >= 1  # SARIF is 1-based

    def test_only_executed_rules_are_advertised(self):
        document = json.loads(render_sarif([], executed_rules=["DET001",
                                                               "LINT001"]))
        driver = document["runs"][0]["tool"]["driver"]
        assert [entry["id"] for entry in driver["rules"]] == ["DET001",
                                                              "LINT001"]

    def test_warning_severity_maps_to_warning_level(self):
        warning = Finding(path="m.py", line=1, col=0, rule="BIT001",
                          severity=Severity.WARNING, message="mask")
        document = json.loads(render_sarif([warning]))
        assert document["runs"][0]["results"][0]["level"] == "warning"


# ---------------------------------------------------------------------------
# Analysis cache


class TestAnalysisCache:
    def test_fully_warm_run_parses_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "pkg/dirty.py", DIRTY)
        write(tmp_path, "pkg/clean.py", CLEAN)
        cache_path = tmp_path / "cache.json"

        cold = LintEngine(cache=AnalysisCache(cache_path))
        first = cold.run(["pkg"])
        assert cold.stats.parsed == 2 and not cold.stats.full_hit

        warm = LintEngine(cache=AnalysisCache(cache_path))
        second = warm.run(["pkg"])
        assert second == first
        assert warm.stats.full_hit
        assert warm.stats.parsed == 0 and warm.stats.analyzed == 0

    def test_editing_one_file_reuses_the_others(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "pkg/dirty.py", DIRTY)
        write(tmp_path, "pkg/clean.py", CLEAN)
        cache_path = tmp_path / "cache.json"
        LintEngine(cache=AnalysisCache(cache_path)).run(["pkg"])

        write(tmp_path, "pkg/clean.py", CLEAN + "\n# touched\n")
        engine = LintEngine(cache=AnalysisCache(cache_path))
        findings = engine.run(["pkg"])
        assert [f.rule for f in findings] == ["DET001"]
        assert engine.stats.reused == 1   # dirty.py replayed
        assert engine.stats.analyzed == 1  # clean.py re-analyzed
        assert not engine.stats.full_hit

    def test_rule_set_change_invalidates_entries(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "pkg/dirty.py", DIRTY)
        cache_path = tmp_path / "cache.json"
        LintEngine(cache=AnalysisCache(cache_path)).run(["pkg"])

        narrowed = LintEngine(select_rules(["BIT001"]),
                              cache=AnalysisCache(cache_path))
        findings = narrowed.run(["pkg"])
        # A BIT001-only run must not replay the full-battery DET001 hit.
        assert findings == []
        assert narrowed.stats.analyzed == 1 and narrowed.stats.reused == 0

    def test_corrupt_cache_file_is_treated_as_empty(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "pkg/dirty.py", DIRTY)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("not json at all", encoding="utf-8")
        engine = LintEngine(cache=AnalysisCache(cache_path))
        findings = engine.run(["pkg"])
        assert [f.rule for f in findings] == ["DET001"]
        assert engine.stats.analyzed == 1


# ---------------------------------------------------------------------------
# git --changed discovery


def git(*args: str, cwd: Path) -> None:
    subprocess.run(["git", *args], cwd=cwd, check=True,
                   capture_output=True, text=True)


@pytest.fixture
def git_repo(tmp_path: Path) -> Path:
    git("init", "-q", cwd=tmp_path)
    git("config", "user.email", "lint@test", cwd=tmp_path)
    git("config", "user.name", "lint tests", cwd=tmp_path)
    write(tmp_path, "pkg/committed.py", CLEAN)
    write(tmp_path, "pkg/modified.py", CLEAN)
    git("add", "-A", cwd=tmp_path)
    git("commit", "-q", "-m", "seed", cwd=tmp_path)
    return tmp_path


class TestGitChanged:
    def test_modified_and_untracked_files_are_found(self, git_repo):
        write(git_repo, "pkg/modified.py", DIRTY)
        write(git_repo, "pkg/untracked.py", DIRTY)
        write(git_repo, "pkg/notes.txt", "not python")
        changed = git_changed_paths([git_repo / "pkg"], repo_root=git_repo)
        assert [p.name for p in changed] == ["modified.py", "untracked.py"]

    def test_clean_tree_yields_nothing(self, git_repo):
        assert git_changed_paths([git_repo / "pkg"],
                                 repo_root=git_repo) == []

    def test_scope_filtering(self, git_repo):
        write(git_repo, "pkg/modified.py", DIRTY)
        write(git_repo, "elsewhere/stray.py", DIRTY)
        changed = git_changed_paths([git_repo / "pkg"], repo_root=git_repo)
        assert [p.name for p in changed] == ["modified.py"]

    def test_outside_a_repo_raises(self, tmp_path):
        lonely = tmp_path / "no-repo"
        lonely.mkdir()
        with pytest.raises(LintError):
            git_changed_paths([lonely], repo_root=lonely)


# ---------------------------------------------------------------------------
# CLI wiring


class TestLintCli:
    def run_cli(self, *argv: str) -> int:
        return main(["lint", *argv])

    def test_update_then_gate(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "pkg/dirty.py", DIRTY)

        assert self.run_cli("pkg", "--update-baseline") == 0
        capsys.readouterr()
        # Gated run: the accepted finding no longer fails the build...
        assert self.run_cli("pkg", "--baseline") == 0
        out = capsys.readouterr().out
        assert "1 baselined finding(s) not shown" in out

        # ...but a new finding still does.
        write(tmp_path, "pkg/worse.py", "import time\ntime.time()\n")
        assert self.run_cli("pkg", "--baseline") == 1
        out = capsys.readouterr().out
        assert "DET002" in out and "DET001" not in out

    def test_sarif_format_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "pkg/dirty.py", DIRTY)
        assert self.run_cli("pkg", "--format", "sarif") == 1
        document = json.loads(capsys.readouterr().out)
        assert document["runs"][0]["results"][0]["ruleId"] == "DET001"

    def test_json_rules_narrowed_by_select(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "pkg/clean.py", CLEAN)
        assert self.run_cli("pkg", "--select", "BIT001",
                            "--format", "json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"] == ["BIT001", "LINT001"]

    def test_cache_flag_round_trip(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "pkg/dirty.py", DIRTY)
        assert self.run_cli("pkg", "--cache") == 1
        first = capsys.readouterr().out
        assert Path(".repro-lint-cache.json").exists()
        assert self.run_cli("pkg", "--cache") == 1
        assert capsys.readouterr().out == first

    def test_changed_flag_narrows_to_the_diff(self, git_repo, monkeypatch,
                                              capsys):
        monkeypatch.chdir(git_repo)
        write(git_repo, "pkg/committed.py", DIRTY)  # now modified
        assert self.run_cli("pkg", "--changed") == 1
        out = capsys.readouterr().out
        assert "committed.py" in out
        assert "modified.py" not in out  # clean in git => not linted
