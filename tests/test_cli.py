"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def small_env(monkeypatch):
    """Keep CLI-run simulations tiny."""
    monkeypatch.setenv("REPRO_TRACE_LENGTH", "3000")
    monkeypatch.setenv("REPRO_EXPERIMENT_SITE_SCALE", "0.02")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "--program", "gcc", "--predictor", "gshare",
             "--size", "1024", "--scheme", "static_95", "--shift"]
        )
        assert args.program == "gcc"
        assert args.shift is True

    def test_rejects_unknown_predictor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--program", "gcc", "--predictor", "tage",
                 "--size", "1024"]
            )

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "2bcgskew" in out and "table3" in out
        # The lint battery is discoverable alongside the other registries.
        assert "lint rules" in out and "DET001" in out and "REG001" in out

    def test_run(self, capsys):
        status = main(["run", "--program", "compress", "--predictor",
                       "bimodal", "--size", "1024"])
        assert status == 0
        out = capsys.readouterr().out
        assert "MISP/KI" in out

    def test_run_with_scheme_and_collisions(self, capsys):
        status = main(["run", "--program", "compress", "--predictor",
                       "gshare", "--size", "1024", "--scheme", "static_95",
                       "--collisions"])
        assert status == 0
        out = capsys.readouterr().out
        assert "collisions" in out

    def test_run_bad_size_reports_error(self, capsys):
        status = main(["run", "--program", "compress", "--predictor",
                       "gshare", "--size", "1000"])
        assert status == 1
        assert "error" in capsys.readouterr().err

    def test_run_experiments_with_cache(self, tmp_path, capsys):
        argv = ["run", "table3", "--jobs", "2",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "table3" in cold and "hit-rate 0.0%" in cold
        # Warm re-run: identical report, zero simulations.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "hit-rate 100.0%" in warm and "(0 simulated" in warm
        assert (warm.split("cells:")[0].strip()
                == cold.split("cells:")[0].strip())

    def test_run_experiments_no_cache(self, capsys):
        assert main(["run", "ablation-history", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "ablation-history" in out
        assert "0 cache hits" in out

    def test_run_without_ids_or_configuration_errors(self, capsys):
        assert main(["run"]) == 1
        err = capsys.readouterr().err
        assert "error" in err and "--program" in err

    def test_run_unknown_experiment_errors(self, capsys):
        assert main(["run", "table9", "--no-cache"]) == 1
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_experiment(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "gcc" in out

    def test_trace_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "out.trace")
        status = main(["trace", "--program", "compress", "--length", "500",
                       "--out", path])
        assert status == 0
        from repro.workloads.trace import BranchTrace

        assert len(BranchTrace.load(path)) == 500

    def test_profile_output(self, tmp_path):
        path = str(tmp_path / "p.json")
        assert main(["profile", "--program", "compress", "--out", path]) == 0
        from repro.profiling.profile import ProgramProfile

        profile = ProgramProfile.load(path)
        assert len(profile) > 0

    def test_classify(self, capsys):
        assert main(["classify", "--program", "compress"]) == 0
        out = capsys.readouterr().out
        assert "mostly-taken" in out
        assert "highly biased" in out

    def test_classify_with_predictor(self, capsys):
        assert main(["classify", "--program", "compress", "--predictor",
                     "bimodal", "--size", "1024"]) == 0
        out = capsys.readouterr().out
        assert "accuracy: bimodal" in out

    def test_interference(self, capsys):
        assert main(["interference", "--program", "compress", "--predictor",
                     "gshare", "--size", "512", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "collisions" in out


@pytest.fixture()
def cli_suite():
    """A tiny registered suite so traces commands stay fast."""
    from repro.traces import TraceSpec, TraceSuite, register_suite

    suite = TraceSuite("cli-tiny", (
        TraceSpec(name="cli-compress-ref", program="compress",
                  input_name="ref", length=1000, seed=7, site_scale=0.02),
    ))
    register_suite(suite, replace=True)
    return suite


class TestTracesCommand:
    def test_generate_then_verify(self, tmp_path, capsys, cli_suite):
        store = str(tmp_path / "store")
        assert main(["traces", "generate", "--suite", "cli-tiny",
                     "--dir", store]) == 0
        out = capsys.readouterr().out
        assert "cli-compress-ref: wrote 1000 branches" in out
        assert main(["traces", "verify", "--suite", "cli-tiny",
                     "--dir", store]) == 0
        out = capsys.readouterr().out
        assert "cli-compress-ref: ok" in out

    def test_generate_is_idempotent(self, tmp_path, capsys, cli_suite):
        store = str(tmp_path / "store")
        main(["traces", "generate", "--suite", "cli-tiny", "--dir", store])
        capsys.readouterr()
        assert main(["traces", "generate", "--suite", "cli-tiny",
                     "--dir", store]) == 0
        assert "up to date" in capsys.readouterr().out

    def test_verify_fails_on_missing_artifacts(self, tmp_path, capsys,
                                               cli_suite):
        assert main(["traces", "verify", "--suite", "cli-tiny",
                     "--dir", str(tmp_path / "empty")]) == 1
        captured = capsys.readouterr()
        assert "not generated" in captured.out
        assert "failed verification" in captured.err

    def test_verify_detects_tampering(self, tmp_path, capsys, cli_suite):
        store = str(tmp_path / "store")
        main(["traces", "generate", "--suite", "cli-tiny", "--dir", store])
        capsys.readouterr()
        from repro.traces import TraceStore

        artifact = TraceStore(store).artifact_path(
            cli_suite.get("cli-compress-ref")
        )
        with open(artifact, "r+b") as stream:
            stream.truncate(64)
        assert main(["traces", "verify", "--suite", "cli-tiny",
                     "--dir", store]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_info_shows_digests(self, tmp_path, capsys, cli_suite):
        store = str(tmp_path / "store")
        main(["traces", "generate", "--suite", "cli-tiny", "--dir", store])
        capsys.readouterr()
        assert main(["traces", "info", "--suite", "cli-tiny",
                     "--dir", store]) == 0
        out = capsys.readouterr().out
        assert "content_digest:" in out and "spec_digest:" in out

    def test_list_shows_suites_and_status(self, tmp_path, capsys, cli_suite):
        assert main(["traces", "list", "--dir",
                     str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "quick:" in out and "default:" in out and "cli-tiny:" in out
        assert "[missing]" in out

    def test_quick_flag_selects_quick_suite(self, tmp_path, capsys):
        # --quick on verify targets the (ungenerated) quick suite.
        assert main(["traces", "verify", "--quick",
                     "--dir", str(tmp_path / "empty")]) == 1
        assert "quick-gcc-ref" in capsys.readouterr().out

    def test_unknown_suite_is_clean_error(self, tmp_path, capsys):
        assert main(["traces", "generate", "--suite", "nope",
                     "--dir", str(tmp_path)]) == 1
        assert "unknown trace suite" in capsys.readouterr().err

    def test_list_mentions_trace_suites(self, capsys):
        assert main(["list"]) == 0
        assert "trace suites:" in capsys.readouterr().out


class TestLintCommand:
    def test_default_self_lint_is_clean_against_baseline(self, capsys):
        # src/repro carries deliberate, baselined PERF debt (the
        # vectorization worklist); the ratchet is "no NEW findings".
        assert main(["lint", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "clean: no lint findings" in out
        assert "baselined finding(s) not shown" in out

    def test_hot_report_prints_ranked_worklist(self, capsys):
        assert main(["lint", "--select", "PERF", "--hot-report"]) == 0
        first = capsys.readouterr().out
        assert "hot region:" in first
        assert "est. ops/branch" in first
        # The ranking is deterministic: a second run renders identically.
        assert main(["lint", "--select", "PERF", "--hot-report"]) == 0
        assert capsys.readouterr().out == first

    def test_changed_degrades_to_full_scan_without_git(
            self, tmp_path, capsys, monkeypatch):
        import repro.lint as lint_pkg
        from repro.errors import LintError

        def no_git(paths):
            raise LintError(
                "--changed needs a git checkout: git status failed (boom)")

        monkeypatch.setattr(lint_pkg, "git_changed_paths", no_git)
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n",
                       encoding="utf-8")
        assert main(["lint", "--changed", str(bad)]) == 1
        captured = capsys.readouterr()
        assert "falling back to a full scan" in captured.err
        assert "DET001" in captured.out

    def test_findings_mean_nonzero_exit(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n",
                       encoding="utf-8")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "finding(s)" in out

    def test_json_format(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("t = __import__\nimport time\ny = time.time()\n",
                       encoding="utf-8")
        assert main(["lint", "--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "DET002"

    def test_select_restricts_rules(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\ny = 5 % 4096\n", encoding="utf-8")
        assert main(["lint", "--select", "BIT", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "BIT001" in out and "DET001" not in out


class TestCleanErrors:
    """Every failure mode exits 1 with one ``error:`` line, no traceback."""

    def test_bad_experiment_parameters(self, capsys):
        assert main(["experiment", "table1", "--length", "-5"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_trace_unwritable_output_path(self, capsys):
        assert main(["trace", "--program", "compress", "--length", "100",
                     "--out", "/nonexistent-dir/never/x.trace"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_profile_unwritable_output_path(self, capsys):
        assert main(["profile", "--program", "compress",
                     "--out", "/nonexistent-dir/never/p.json"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_lint_unknown_selector(self, capsys):
        assert main(["lint", "--select", "NOPE999"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "known rules" in err

    def test_lint_missing_path(self, capsys):
        assert main(["lint", "/nonexistent/lint/target"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err
