"""Tests for the combined predictor, simulator, metrics, and sweeps."""

import math

import pytest

from repro.arch.isa import HintBits, ShiftPolicy
from repro.core.combined import CombinedPredictor
from repro.core.metrics import SimulationResult, improvement
from repro.core.simulator import run_combined, run_selection_phase, simulate
from repro.core.sweep import run_configuration, size_sweep
from repro.errors import SelectionError
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.ghist import GhistPredictor
from repro.predictors.gshare import GsharePredictor
from repro.staticpred.hints import HintAssignment
from repro.workloads.trace import BranchTrace


def make_trace(records, program="demo"):
    trace = BranchTrace(program_name=program, input_name="ref")
    for address, taken in records:
        trace.site_indices.append(0)
        trace.addresses.append(address)
        trace.outcomes.append(taken)
        trace.gaps.append(10)
    return trace


def hints_for(pairs, scheme="static_95", program="demo"):
    hints = HintAssignment(program, scheme)
    for address, direction in pairs:
        hints.set(address, HintBits.static(direction))
    return hints


class TestCombinedPredictor:
    def test_static_branch_bypasses_dynamic(self):
        dynamic = BimodalPredictor(64)
        combined = CombinedPredictor(dynamic, hints_for([(0x1000, True)]))
        before = list(dynamic.table.values)
        for _ in range(10):
            predicted = combined.predict(0x1000)
            assert predicted is True
            combined.update(0x1000, False, predicted)
        # Dynamic predictor untouched: no lookups, no training.
        assert dynamic.table.values == before
        assert combined.static_lookups == 10
        assert combined.static_mispredictions == 10

    def test_dynamic_branch_flows_through(self):
        dynamic = BimodalPredictor(64)
        combined = CombinedPredictor(dynamic, hints_for([(0x1000, True)]))
        predicted = combined.predict(0x2000)
        combined.update(0x2000, True, predicted)
        index = (0x2000 >> 2) & 63
        assert dynamic.table.values[index] == 2  # trained toward taken

    def test_no_shift_policy_keeps_history(self):
        dynamic = GhistPredictor(64)
        combined = CombinedPredictor(
            dynamic, hints_for([(0x1000, True)]),
            shift_policy=ShiftPolicy.NO_SHIFT,
        )
        predicted = combined.predict(0x1000)
        combined.update(0x1000, True, predicted)
        assert dynamic.history.value == 0

    def test_shift_policy_updates_history(self):
        dynamic = GhistPredictor(64)
        combined = CombinedPredictor(
            dynamic, hints_for([(0x1000, True)]),
            shift_policy=ShiftPolicy.SHIFT,
        )
        predicted = combined.predict(0x1000)
        combined.update(0x1000, True, predicted)
        assert dynamic.history.value == 1

    def test_per_branch_policy_respects_hint_bit(self):
        dynamic = GhistPredictor(64)
        hints = HintAssignment("demo", "s")
        hints.set(0x1000, HintBits.static(True, shift_history=True))
        hints.set(0x2000, HintBits.static(True, shift_history=False))
        combined = CombinedPredictor(dynamic, hints,
                                     shift_policy=ShiftPolicy.PER_BRANCH)
        combined.predict(0x1000)
        combined.update(0x1000, True, True)
        assert dynamic.history.value == 1
        combined.predict(0x2000)
        combined.update(0x2000, True, True)
        assert dynamic.history.value == 1  # unchanged

    def test_accessed_empty_for_static(self):
        dynamic = BimodalPredictor(64)
        combined = CombinedPredictor(dynamic, hints_for([(0x1000, True)]))
        combined.predict(0x1000)
        assert combined.accessed() == []
        combined.predict(0x2000)
        assert combined.accessed() == dynamic.accessed()

    def test_update_ignores_stale_predict_state(self):
        # update() must resolve static-vs-dynamic from the updated
        # address, not from whichever branch predict() saw last:
        # interleaved predicts (wrong-path speculation, reordered
        # commits) otherwise misroute the update.
        dynamic = BimodalPredictor(64)
        combined = CombinedPredictor(dynamic, hints_for([(0x1000, True)]))
        before = list(dynamic.table.values)
        combined.predict(0x2000)     # dynamic branch predicted last...
        combined.update(0x1000, False, True)   # ...static branch updated
        # The static branch's update must not train the dynamic table.
        assert dynamic.table.values == before
        assert combined.static_mispredictions == 1
        combined.predict(0x1000)     # static branch predicted last...
        combined.update(0x2000, True, True)    # ...dynamic branch updated
        index = (0x2000 >> 2) & 63
        assert dynamic.table.values[index] != before[index]

    def test_update_without_predict_routes_by_hints(self):
        dynamic = BimodalPredictor(64)
        combined = CombinedPredictor(dynamic, hints_for([(0x1000, True)]))
        combined.update(0x1000, False, True)
        assert combined.static_mispredictions == 1
        combined.update(0x1000, True, True)
        assert combined.static_mispredictions == 1

    def test_size_is_dynamic_only(self):
        dynamic = BimodalPredictor(64)
        combined = CombinedPredictor(dynamic, hints_for([(0x1000, True)]))
        assert combined.size_bytes == dynamic.size_bytes

    def test_reset(self):
        dynamic = BimodalPredictor(64)
        combined = CombinedPredictor(dynamic, hints_for([(0x1000, True)]))
        combined.predict(0x1000)
        combined.update(0x1000, False, True)
        combined.reset()
        assert combined.static_lookups == 0
        assert combined.static_mispredictions == 0


class TestSimulate:
    def test_counts_exactly(self):
        # Deterministic check of the misprediction count: bimodal on an
        # all-taken branch starting weakly-not-taken mispredicts once.
        trace = make_trace([(0x1000, True)] * 10)
        result = simulate(trace, BimodalPredictor(64))
        assert result.mispredictions == 1
        assert result.branches == 10
        assert result.instructions == 100
        assert result.misp_per_ki == pytest.approx(10.0)
        assert result.accuracy == pytest.approx(0.9)

    def test_collision_tracking_attached(self):
        trace = make_trace([(0x1000, True), (0x1000 + 256 * 4, True)] * 20)
        result = simulate(trace, BimodalPredictor(256), track_collisions=True)
        assert result.collisions is not None
        assert result.collisions.collisions > 0

    def test_no_collision_tracking_by_default(self):
        trace = make_trace([(0x1000, True)] * 5)
        result = simulate(trace, BimodalPredictor(64))
        assert result.collisions is None

    def test_static_stats_populated(self):
        trace = make_trace([(0x1000, True), (0x2000, False)] * 10)
        combined = CombinedPredictor(
            BimodalPredictor(64), hints_for([(0x1000, True)])
        )
        result = simulate(trace, combined, scheme="static_95")
        assert result.static_branches == 10
        assert result.static_fraction == pytest.approx(0.5)
        assert result.static_mispredictions == 0
        assert result.static_accuracy == 1.0


class TestRunSelectionPhase:
    def test_none_scheme_empty(self):
        trace = make_trace([(0x1000, True)] * 10)
        hints = run_selection_phase(trace, "none")
        assert hints.static_count() == 0

    def test_static_95_selects(self):
        trace = make_trace([(0x1000, True)] * 50 + [(0x2000, True)] * 25
                           + [(0x2000, False)] * 25)
        hints = run_selection_phase(trace, "static_95")
        assert hints.static_addresses() == [0x1000]

    def test_static_acc_needs_factory(self):
        trace = make_trace([(0x1000, True)] * 10)
        with pytest.raises(SelectionError):
            run_selection_phase(trace, "static_acc")

    def test_static_acc_selects_hard_branches(self):
        # Alternating branch: bimodal accuracy ~0, bias 0.5 -> bias > acc
        # so it gets selected; the all-taken branch has acc ~ bias and
        # does not (bias .99 < acc 0.98? close -- use counts that decide).
        records = [(0x1000, i % 2 == 0) for i in range(100)]
        trace = make_trace(records)
        hints = run_selection_phase(
            trace, "static_acc", predictor_factory=lambda: BimodalPredictor(64)
        )
        assert 0x1000 in hints

    def test_static_fac_subset_of_acc(self):
        records = [(0x1000, i % 2 == 0) for i in range(100)]
        records += [(0x2000, True)] * 60 + [(0x2000, False)] * 40
        trace = make_trace(records)
        factory = lambda: BimodalPredictor(64)
        acc = run_selection_phase(trace, "static_acc", predictor_factory=factory)
        fac = run_selection_phase(trace, "static_fac", predictor_factory=factory,
                                  factor=1.5)
        assert set(fac.static_addresses()) <= set(acc.static_addresses())

    def test_unknown_scheme(self):
        trace = make_trace([(0x1000, True)])
        with pytest.raises(SelectionError):
            run_selection_phase(trace, "static_magic")

    def test_profile_override(self):
        from repro.profiling.profile import BranchProfile, ProgramProfile

        trace = make_trace([(0x1000, False)] * 20)
        override = ProgramProfile("demo", "ext", {
            0x2000: BranchProfile(100, 100),
        })
        hints = run_selection_phase(trace, "static_95", profile=override)
        assert hints.static_addresses() == [0x2000]


class TestRunCombined:
    def test_scheme_label_includes_shift(self):
        trace = make_trace([(0x1000, True)] * 10)
        hints = hints_for([(0x1000, True)])
        result = run_combined(trace, GhistPredictor(64), hints,
                              shift_policy=ShiftPolicy.SHIFT)
        assert result.scheme.endswith("+shift")

    def test_static_hints_help_on_hostile_branch(self):
        # A branch that alternates defeats bimodal; a static majority
        # hint caps its damage at ~50%.
        records = [(0x1000, i % 3 != 0) for i in range(300)]
        trace = make_trace(records)
        base = simulate(trace, BimodalPredictor(64))
        hints = hints_for([(0x1000, True)])
        combined = run_combined(trace, BimodalPredictor(64), hints)
        assert combined.mispredictions <= base.mispredictions


class TestMetrics:
    def test_misp_per_ki(self):
        result = SimulationResult(
            program_name="p", input_name="ref", predictor_name="x",
            scheme="none", size_bytes=1024, branches=100,
            instructions=10_000, mispredictions=25,
        )
        assert result.misp_per_ki == pytest.approx(2.5)
        assert result.cbrs_per_ki == pytest.approx(10.0)
        assert result.accuracy == pytest.approx(0.75)
        assert result.dynamic_branches == 100

    def test_improvement_sign(self):
        base = SimulationResult("p", "ref", "x", "none", 1024, 100, 10_000, 40)
        better = SimulationResult("p", "ref", "x", "s", 1024, 100, 10_000, 30)
        worse = SimulationResult("p", "ref", "x", "s", 1024, 100, 10_000, 50)
        assert improvement(base, better) == pytest.approx(0.25)
        assert improvement(base, worse) == pytest.approx(-0.25)

    def test_improvement_zero_base(self):
        # A 0-MISP baseline cannot be improved upon: degradation must
        # surface as -inf (a signed sentinel), never a neutral 0.0.
        base = SimulationResult("p", "ref", "x", "none", 1024, 100, 10_000, 0)
        other = SimulationResult("p", "ref", "x", "s", 1024, 100, 10_000, 5)
        assert improvement(base, other) == -math.inf
        same = SimulationResult("p", "ref", "x", "s", 1024, 100, 10_000, 0)
        assert improvement(base, same) == 0.0

    def test_accuracy_of_empty_run_is_perfect(self):
        # Zero branches means zero mispredictions: vacuous success, not
        # 0% accuracy (which call sites read as "predictor is broken").
        empty = SimulationResult("p", "ref", "x", "none", 1024, 0, 0, 0)
        assert empty.accuracy == 1.0
        assert empty.static_accuracy == 1.0

    def test_static_accuracy_with_no_static_branches(self):
        result = SimulationResult("p", "ref", "x", "static_95", 1024,
                                  100, 10_000, 10)
        assert result.static_branches == 0
        assert result.static_accuracy == 1.0

    def test_describe_mentions_key_fields(self):
        result = SimulationResult("gcc", "ref", "gshare", "static_95",
                                  8192, 100, 10_000, 10)
        text = result.describe()
        assert "gcc" in text and "gshare" in text and "MISP/KI" in text


class TestSweep:
    def test_run_configuration_none(self, gcc_trace):
        result = run_configuration(gcc_trace, gcc_trace, "gshare", 1024, "none")
        assert result.scheme == "none"
        assert result.branches == len(gcc_trace)

    def test_run_configuration_static(self, gcc_trace):
        result = run_configuration(
            gcc_trace, gcc_trace, "gshare", 1024, "static_95"
        )
        assert result.static_branches > 0

    def test_size_sweep_shape(self, gcc_trace):
        results = size_sweep(
            gcc_trace, gcc_trace, "bimodal", sizes=(256, 1024),
            schemes=("none", "static_95"),
        )
        assert set(results) == {"none", "static_95"}
        assert len(results["none"]) == 2
        assert results["none"][0].size_bytes == 256
        assert results["none"][1].size_bytes == 1024

    def test_bigger_predictor_not_much_worse(self, gcc_trace):
        results = size_sweep(gcc_trace, gcc_trace, "gshare",
                             sizes=(512, 8192))
        small, large = results["none"]
        assert large.mispredictions <= small.mispredictions * 1.05
