"""Unit and property tests for repro.utils.bits."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bits import (
    bit_mask,
    fold_bits,
    is_power_of_two,
    log2_exact,
    mix64,
    reverse_bits,
    rotate_left,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        for exponent in range(0, 40):
            assert is_power_of_two(1 << exponent)

    def test_non_powers(self):
        for value in (0, -1, -4, 3, 5, 6, 7, 9, 100, 1023):
            assert not is_power_of_two(value)


class TestLog2Exact:
    def test_round_trip(self):
        for exponent in range(0, 30):
            assert log2_exact(1 << exponent) == exponent

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_exact(12)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            log2_exact(0)


class TestBitMask:
    def test_values(self):
        assert bit_mask(0) == 0
        assert bit_mask(1) == 1
        assert bit_mask(8) == 0xFF
        assert bit_mask(16) == 0xFFFF

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bit_mask(-1)

    @given(st.integers(min_value=0, max_value=64))
    def test_mask_width(self, width):
        assert bit_mask(width).bit_length() == width


class TestFoldBits:
    def test_short_value_unchanged(self):
        assert fold_bits(0b101, 4) == 0b101

    def test_folds_two_chunks(self):
        assert fold_bits(0b101100, 3) == 0b101 ^ 0b100

    def test_folds_three_chunks(self):
        assert fold_bits(0b111000111, 3) == 0b111 ^ 0b000 ^ 0b111

    def test_zero(self):
        assert fold_bits(0, 5) == 0

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            fold_bits(3, 0)

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=1, max_value=20))
    def test_result_in_range(self, value, width):
        assert 0 <= fold_bits(value, width) < (1 << width)

    @given(st.integers(min_value=0, max_value=2**20 - 1),
           st.integers(min_value=1, max_value=20))
    def test_xor_linearity(self, value, width):
        # fold(a ^ b) == fold(a) ^ fold(b): folding is GF(2)-linear.
        other = 0b1011011 & ((1 << width) - 1)
        assert fold_bits(value ^ other, width) == (
            fold_bits(value, width) ^ fold_bits(other, width)
        )


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_spreads_nearby_inputs(self):
        outputs = {mix64(i) for i in range(1000)}
        assert len(outputs) == 1000

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_range(self, value):
        assert 0 <= mix64(value) < 2**64

    def test_truncates_to_64_bits(self):
        assert mix64(2**64 + 5) == mix64(5)


class TestReverseBits:
    def test_simple(self):
        assert reverse_bits(0b110, 3) == 0b011

    def test_palindrome(self):
        assert reverse_bits(0b101, 3) == 0b101

    @given(st.integers(min_value=0, max_value=2**16 - 1),
           st.integers(min_value=1, max_value=16))
    def test_involution(self, value, width):
        value &= (1 << width) - 1
        assert reverse_bits(reverse_bits(value, width), width) == value


class TestRotateLeft:
    def test_simple(self):
        assert rotate_left(0b001, 1, 3) == 0b010

    def test_wraps(self):
        assert rotate_left(0b100, 1, 3) == 0b001

    def test_full_rotation_identity(self):
        assert rotate_left(0b1011, 4, 4) == 0b1011

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            rotate_left(1, 1, 0)

    @given(st.integers(min_value=0, max_value=2**12 - 1),
           st.integers(min_value=0, max_value=24),
           st.integers(min_value=1, max_value=12))
    def test_preserves_popcount(self, value, amount, width):
        value &= (1 << width) - 1
        rotated = rotate_left(value, amount, width)
        assert bin(rotated).count("1") == bin(value).count("1")
