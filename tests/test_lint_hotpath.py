"""Tests for hot-region inference and the PERF rule family.

The hot region is what keeps PERF rules quiet on cold code: a scalar
loop only fires when the function is provably reachable from a
simulation entry point, the kernels dispatch table, a profiling pass,
or an ``@hot_path`` annotation.  These fixtures pin each discovery
mode, the loop-scale classifier, and each PERF001-PERF004 shape.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import run_lint
from repro.lint.hotpath import hot_region, load_project, render_hot_report
from repro.lint.rules.perf import (
    HotListAppendRule,
    NumpyAntiPatternRule,
    TraceScaleLoopRule,
    UnregisteredKernelRule,
)


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "tree"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


# ---------------------------------------------------------------------------
# Hot-region inference


class TestHotRegionInference:
    def test_kernels_table_indirect_dispatch_roots_the_region(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/kernels/__init__.py": """
                from pkg.kernels import dynamic

                _KERNELS = {
                    "bimodal": dynamic.simulate_bimodal,
                }
            """,
            "pkg/kernels/dynamic.py": """
                def _tally(outcomes):
                    total = 0
                    for value in outcomes:
                        total += value
                    return total

                def simulate_bimodal(trace, predictor):
                    addresses, outcomes = trace.arrays()
                    return _tally(outcomes)
            """,
        })
        region = hot_region(load_project([root]))
        assert "pkg.kernels.dynamic.simulate_bimodal" in region
        # The helper is pulled in through the call edge, not by name.
        assert "pkg.kernels.dynamic._tally" in region
        reason = region.functions[
            "pkg.kernels.dynamic.simulate_bimodal"].reason
        assert "_KERNELS" in reason

    def test_hot_path_decorator_roots_function_and_callees(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/encode.py": """
                from pkg.util import hot_path

                def _helper(values):
                    return sum(values)

                @hot_path
                def encode(values):
                    return _helper(values)

                def cold(values):
                    return max(values)
            """,
        })
        region = hot_region(load_project([root]))
        assert "pkg.encode.encode" in region
        assert "pkg.encode._helper" in region
        assert "pkg.encode.cold" not in region
        assert region.functions["pkg.encode.encode"].reason == "@hot_path"

    def test_cold_caller_of_hot_entry_stays_cold(self, tmp_path):
        # Reachability flows from roots downward; a report formatter
        # that *calls* simulate() is not itself on the per-branch path.
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core/__init__.py": "",
            "pkg/core/simulator.py": """
                def simulate(trace):
                    total = 0
                    for address in trace.addresses:
                        total += address
                    return total
            """,
            "pkg/report.py": """
                from pkg.core.simulator import simulate

                def summarize(trace):
                    return simulate(trace)
            """,
        })
        region = hot_region(load_project([root]))
        assert "pkg.core.simulator.simulate" in region
        assert "pkg.report.summarize" not in region

    def test_profiling_pass_names_root_only_under_profiling_dir(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/profiling/__init__.py": "",
            "pkg/profiling/accuracy.py": """
                def measure_accuracy(trace, predictor):
                    return 0
            """,
            "pkg/report.py": """
                def measure_column_width(rows):
                    return max(len(r) for r in rows)
            """,
        })
        region = hot_region(load_project([root]))
        assert "pkg.profiling.accuracy.measure_accuracy" in region
        assert "pkg.report.measure_column_width" not in region

    def test_loop_scale_classification(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core/__init__.py": "",
            "pkg/core/simulator.py": """
                def simulate(trace, n_branches):
                    total = 0
                    for address in trace.addresses:
                        total += address
                    for i in range(1 << 10):
                        total += i
                    count = 0
                    while count < n_branches:
                        count += 1
                        total += count
                    return total
            """,
        })
        region = hot_region(load_project([root]))
        fn = region.functions["pkg.core.simulator.simulate"]
        scales = {loop.line: loop.scale for loop in fn.loops}
        assert scales[4] == "trace"      # for ... in trace.addresses
        assert scales[6] == "bounded"    # range(1 << 10): table-sized
        assert scales[9] == "trace"      # while count < n_branches
        assert len(fn.trace_loops()) == 2

    def test_hot_report_is_deterministic(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/core/__init__.py": "",
            "pkg/core/simulator.py": """
                def _inner(trace):
                    total = 0
                    for address in trace.addresses:
                        total += address
                    return total

                def simulate(trace):
                    return _inner(trace)
            """,
        }
        root = write_tree(tmp_path, files)
        first = render_hot_report(hot_region(load_project([root])))
        second = render_hot_report(hot_region(load_project([root])))
        assert first == second
        assert "hot region:" in first
        assert "_inner" in first


# ---------------------------------------------------------------------------
# PERF001: trace-scale scalar loops


class TestPerf001:
    def test_trace_loop_flagged_with_array_sibling_hint(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core/__init__.py": "",
            "pkg/core/simulator.py": """
                def measure(trace):
                    total = 0
                    for address in trace.addresses:
                        total += address
                    return total

                def measure_array(trace):
                    return 0

                def simulate(trace):
                    return measure(trace)
            """,
        })
        findings = run_lint([root], [TraceScaleLoopRule()])
        assert [f.rule for f in findings] == ["PERF001"]
        assert "trace column 'trace.addresses'" in findings[0].message
        assert "measure_array" in findings[0].message

    def test_bounded_and_cold_loops_not_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core/__init__.py": "",
            "pkg/core/simulator.py": """
                def simulate(trace):
                    total = 0
                    for i in range(1 << 12):
                        total += i
                    return total

                def formatter(rows):
                    lines = []
                    for row in rows:
                        lines.append(str(row))
                    return lines
            """,
        })
        assert run_lint([root], [TraceScaleLoopRule()]) == []


# ---------------------------------------------------------------------------
# PERF002: append accumulation


class TestPerf002:
    def test_direct_and_aliased_append_flagged_scratch_list_not(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core/__init__.py": "",
            "pkg/core/simulator.py": """
                def simulate(trace, n_branches):
                    outcomes = []
                    push = outcomes.append
                    gaps = []
                    count = 0
                    while count < n_branches:
                        scratch = []
                        scratch.append(count)
                        gaps.append(count)
                        push(count)
                        count += 1
                    return outcomes, gaps
            """,
        })
        findings = run_lint([root], [HotListAppendRule()])
        assert [f.rule for f in findings] == ["PERF002", "PERF002"]
        named = {m.split("'")[1] for m in (f.message for f in findings)}
        assert named == {"outcomes", "gaps"}

    def test_append_outside_trace_loop_not_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core/__init__.py": "",
            "pkg/core/simulator.py": """
                def simulate(trace):
                    rows = []
                    for size in (512, 1024, 2048):
                        rows.append(size)
                    return rows
            """,
        })
        assert run_lint([root], [HotListAppendRule()]) == []


# ---------------------------------------------------------------------------
# PERF003: numpy anti-patterns


class TestPerf003:
    def test_all_three_shapes_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core/__init__.py": "",
            "pkg/core/simulator.py": """
                import math

                import numpy as np

                def simulate(trace, n_branches):
                    totals = np.zeros(4, dtype=np.int32)
                    count = 0
                    while count < n_branches:
                        totals = np.append(totals, count)
                        value = math.log(count + 1)
                        count += 1
                    scaled = totals / 2
                    return scaled, value
            """,
        })
        findings = run_lint([root], [NumpyAntiPatternRule()])
        assert [f.rule for f in findings] == ["PERF003"] * 3
        text = "\n".join(f.message for f in findings)
        assert "np.append" in text
        assert "math.log" in text
        assert "int32" in text and "float" in text

    def test_clean_vectorized_code_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core/__init__.py": "",
            "pkg/core/simulator.py": """
                import numpy as np

                def simulate(trace):
                    addresses, outcomes = trace.arrays()
                    taken = np.bincount(addresses[outcomes])
                    return int(taken.sum())
            """,
        })
        assert run_lint([root], [NumpyAntiPatternRule()]) == []


# ---------------------------------------------------------------------------
# PERF004: unregistered kernels


class TestPerf004:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/kernels/dynamic.py": """
            def simulate_bimodal(trace, predictor):
                return 0

            def simulate_orphan(trace, predictor):
                return 0
        """,
    }

    def test_orphan_kernel_flagged(self, tmp_path):
        files = dict(self.FILES)
        files["pkg/kernels/__init__.py"] = """
            from pkg.kernels import dynamic

            _KERNELS = {"bimodal": dynamic.simulate_bimodal}
        """
        findings = run_lint([write_tree(tmp_path, files)],
                            [UnregisteredKernelRule()])
        assert [f.rule for f in findings] == ["PERF004"]
        assert "simulate_orphan" in findings[0].message
        assert "_KERNELS" in findings[0].message

    def test_registered_kernels_pass(self, tmp_path):
        files = dict(self.FILES)
        files["pkg/kernels/__init__.py"] = """
            from pkg.kernels import dynamic

            _KERNELS = {
                "bimodal": dynamic.simulate_bimodal,
                "orphan": dynamic.simulate_orphan,
            }
        """
        assert run_lint([write_tree(tmp_path, files)],
                        [UnregisteredKernelRule()]) == []
