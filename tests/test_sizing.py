"""Tests for byte-budget decomposition and the predictor factory."""

import pytest

from repro.errors import SizingError
from repro.predictors.sizing import (
    PREDICTOR_NAMES,
    counters_for_budget,
    make_predictor,
)


class TestCountersForBudget:
    def test_four_counters_per_byte(self):
        assert counters_for_budget(1024) == 4096

    def test_rejects_zero(self):
        with pytest.raises(SizingError):
            counters_for_budget(0)


class TestMakePredictor:
    @pytest.mark.parametrize("name", PREDICTOR_NAMES)
    def test_all_schemes_buildable(self, name):
        predictor = make_predictor(name, 4096)
        assert predictor.size_bytes > 0

    @pytest.mark.parametrize("name", PREDICTOR_NAMES)
    @pytest.mark.parametrize("budget", [1024, 4096, 32768])
    def test_size_within_budget(self, name, budget):
        predictor = make_predictor(name, budget)
        assert predictor.size_bytes <= budget + 1e-9

    @pytest.mark.parametrize("name", ["bimodal", "ghist", "gshare",
                                      "bimode", "2bcgskew"])
    def test_exact_budget_for_counter_only_schemes(self, name):
        # The paper's five schemes spend the whole budget on counters.
        predictor = make_predictor(name, 8192)
        assert predictor.size_bytes == pytest.approx(8192)

    def test_bimodal_entries(self):
        assert make_predictor("bimodal", 2048).table.entries == 8192

    def test_gshare_entries(self):
        assert make_predictor("gshare", 16 * 1024).table.entries == 65536

    def test_bimode_decomposition(self):
        predictor = make_predictor("bimode", 2048)
        counters = 2048 * 4
        assert predictor.direction_banks[0].entries == counters // 4
        assert predictor.direction_banks[1].entries == counters // 4
        assert predictor.choice.entries == counters // 2

    def test_2bcgskew_equal_banks(self):
        predictor = make_predictor("2bcgskew", 8192)
        assert [b.entries for b in predictor.banks] == [8192] * 4

    def test_agree_within_budget(self):
        predictor = make_predictor("agree", 1024)
        # 2-bit counters + 1-bit bias entries must fit in 8192 bits.
        assert predictor.size_bytes <= 1024

    def test_kwargs_forwarded(self):
        predictor = make_predictor("gshare", 1024, history_length=5)
        assert predictor.history.length == 5

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SizingError):
            make_predictor("tage", 1024)

    def test_rejects_non_power_of_two_budget(self):
        with pytest.raises(SizingError):
            make_predictor("gshare", 1000)

    def test_rejects_tiny_hybrid_budget(self):
        with pytest.raises(SizingError):
            make_predictor("2bcgskew", 2)
