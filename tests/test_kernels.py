"""Differential tests for the fast simulation kernels.

The contract of :mod:`repro.kernels` is bit-identity with the
reference ``predict``/``update`` loop: same misprediction count, same
final counter table, same history register, same ``_last_index``.
These tests enforce it differentially — every assertion runs the same
randomized trace through both paths and compares the complete
observable state, across the three kernel-backed predictor families,
cold and warm starts, and the degenerate trace lengths.
"""

from __future__ import annotations

import pytest

from repro.core.simulator import simulate
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentContext
from repro.kernels import (
    KERNEL_MODES,
    has_fast_kernel,
    numpy_available,
    try_fast_predictions,
    try_fast_simulate,
    validate_kernel_mode,
)
from repro.profiling.accuracy import _measure_accuracy_scalar, measure_accuracy
from repro.profiling.collision_profile import (
    _fast_collision_records,
    _measure_collision_involvement_scalar,
    measure_collision_involvement,
)
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.ghist import GhistPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.sizing import make_predictor
from repro.utils.rng import derive_seed, rng_from_seed
from repro.workloads.trace import BranchTrace

numpy = pytest.importorskip("numpy")


def random_trace(seed: int, length: int, sites: int = 37) -> BranchTrace:
    """A word-aligned random trace over a small, aliasing-prone window."""
    rng = rng_from_seed(seed)
    trace = BranchTrace(program_name="diff", input_name="ref")
    for _ in range(length):
        site = rng.randrange(sites)
        trace.site_indices.append(site)
        trace.addresses.append(0x4000 + site * 4)
        trace.outcomes.append(rng.random() < 0.6)
        trace.gaps.append(3)
    return trace


def warm_up(predictor, seed: int, length: int = 200) -> None:
    """Drive a predictor into a non-initial state via the reference loop."""
    simulate(random_trace(seed, length), predictor, kernel="reference")


def observable_state(predictor) -> dict:
    """Everything the bit-identity contract covers, as plain data."""
    state = {
        "table": list(predictor.table.values),
        "last_index": predictor._last_index,
    }
    history = getattr(predictor, "history", None)
    if history is not None:
        state["history"] = history.value
    return state


def assert_bit_identical(factory, trace, warm_seed=None):
    """Run ``trace`` through both paths; compare counts and final state."""
    reference = factory()
    fast = factory()
    if warm_seed is not None:
        warm_up(reference, warm_seed)
        warm_up(fast, warm_seed)
    result_ref = simulate(trace, reference, kernel="reference")
    mispredictions = try_fast_simulate(trace, fast, require=True)
    assert mispredictions is not None, "fast kernel unexpectedly missing"
    assert mispredictions == result_ref.mispredictions
    assert observable_state(fast) == observable_state(reference)


FAMILIES = [
    pytest.param(lambda: BimodalPredictor(256), id="bimodal-256x2"),
    pytest.param(lambda: BimodalPredictor(64, counter_bits=1),
                 id="bimodal-64x1"),
    pytest.param(lambda: BimodalPredictor(16, counter_bits=5),
                 id="bimodal-16x5"),
    pytest.param(lambda: BimodalPredictor(32, counter_bits=12),
                 id="bimodal-32x12"),
    pytest.param(lambda: GsharePredictor(256), id="gshare-256"),
    pytest.param(lambda: GsharePredictor(256, history_length=16),
                 id="gshare-256-folded"),
    pytest.param(lambda: GsharePredictor(16, history_length=1),
                 id="gshare-16-h1"),
    pytest.param(lambda: GhistPredictor(128), id="ghist-128"),
    pytest.param(lambda: GhistPredictor(64, history_length=12),
                 id="ghist-64-folded"),
]

LENGTHS = [0, 1, 2, 3, 17, 500, 4096]


class TestBitIdentity:
    @pytest.mark.parametrize("factory", FAMILIES)
    @pytest.mark.parametrize("length", LENGTHS)
    def test_cold_start(self, factory, length):
        seed = derive_seed(1234, "kernels", length)
        assert_bit_identical(factory, random_trace(seed, length))

    @pytest.mark.parametrize("factory", FAMILIES)
    def test_warm_start(self, factory):
        seed = derive_seed(1234, "kernels", "warm")
        trace = random_trace(seed, 600)
        assert_bit_identical(factory, trace, warm_seed=seed + 1)

    def test_repeated_kernel_runs_chain_state(self):
        """Back-to-back fast runs match back-to-back reference runs."""
        seeds = [derive_seed(99, "chain", i) for i in range(3)]
        reference = GsharePredictor(128, history_length=9)
        fast = GsharePredictor(128, history_length=9)
        for seed in seeds:
            trace = random_trace(seed, 300)
            result = simulate(trace, reference, kernel="reference")
            assert try_fast_simulate(trace, fast, require=True) \
                == result.mispredictions
        assert observable_state(fast) == observable_state(reference)

    def test_simulate_fast_equals_reference_result(self, gcc_trace):
        for name in ("bimodal", "gshare", "ghist"):
            fast = simulate(gcc_trace, make_predictor(name, 2048),
                            kernel="fast")
            reference = simulate(gcc_trace, make_predictor(name, 2048),
                                 kernel="reference")
            assert fast == reference


class TestAccuracyBitIdentity:
    """measure_accuracy's vectorized path against the reference loop."""

    @pytest.mark.parametrize("factory", FAMILIES)
    @pytest.mark.parametrize("length", LENGTHS)
    def test_accuracy_profiles_match(self, factory, length):
        seed = derive_seed(4321, "accuracy", length)
        trace = random_trace(seed, length)
        fast_predictor, ref_predictor = factory(), factory()
        fast = measure_accuracy(trace, fast_predictor)
        reference = _measure_accuracy_scalar(trace, ref_predictor)
        # Identical per-branch counts AND first-occurrence insertion
        # order (to_json serializes the mapping order), plus the same
        # trained predictor state.
        assert fast.to_json() == reference.to_json()
        assert list(fast.branches) == list(reference.branches)
        assert observable_state(fast_predictor) \
            == observable_state(ref_predictor)

    @pytest.mark.parametrize("factory", FAMILIES)
    def test_predictions_agree_with_simulate_counts(self, factory):
        seed = derive_seed(4321, "accuracy", "counts")
        trace = random_trace(seed, 700)
        predictor = factory()
        predictions = try_fast_predictions(trace, predictor, require=True)
        assert predictions is not None
        _, outcomes = trace.arrays()
        mispredicted = int(numpy.count_nonzero(predictions != outcomes))
        result = simulate(trace, factory(), kernel="reference")
        assert mispredicted == result.mispredictions

    def test_kernel_less_predictor_falls_back_to_the_loop(self):
        predictor = make_predictor("2bcgskew", 4096)
        assert try_fast_predictions(random_trace(7, 50), predictor) is None
        trace = random_trace(8, 400)
        fast = measure_accuracy(trace, make_predictor("2bcgskew", 4096))
        reference = _measure_accuracy_scalar(
            trace, make_predictor("2bcgskew", 4096)
        )
        assert fast.to_json() == reference.to_json()


class TestDispatch:
    def test_kernel_modes_validate(self):
        for mode in KERNEL_MODES:
            assert validate_kernel_mode(mode) == mode
        with pytest.raises(ConfigurationError):
            validate_kernel_mode("vectorized")

    def test_unknown_mode_rejected_by_simulate(self):
        with pytest.raises(ConfigurationError):
            simulate(random_trace(5, 10), BimodalPredictor(64),
                     kernel="turbo")

    def test_unsupported_predictor_falls_back(self):
        trace = random_trace(7, 400)
        predictor = make_predictor("2bcgskew", 2048)
        assert not has_fast_kernel(predictor)
        assert try_fast_simulate(trace, predictor) is None
        # kernel="fast" still runs (the knob requires numpy, not a
        # kernel for every family) and matches the reference loop.
        fast = simulate(trace, make_predictor("2bcgskew", 2048),
                        kernel="fast")
        reference = simulate(trace, make_predictor("2bcgskew", 2048),
                             kernel="reference")
        assert fast == reference

    def test_limits_fall_back_to_reference(self):
        trace = random_trace(11, 50)
        wide = BimodalPredictor(16, counter_bits=17)  # beyond MAX_COUNTER_BITS
        assert try_fast_simulate(trace, wide) is None
        result = simulate(trace, wide, kernel="auto")
        assert result.branches == 50

    def test_collision_tracking_uses_reference_loop(self):
        """track_collisions observes every lookup, so auto must not
        shortcut — and both paths must report identical mispredictions."""
        trace = random_trace(13, 1200)
        plain = simulate(trace, GsharePredictor(128), kernel="auto")
        tracked = simulate(trace, GsharePredictor(128), kernel="auto",
                           track_collisions=True)
        assert tracked.mispredictions == plain.mispredictions
        assert tracked.collisions is not None
        assert plain.collisions is None


class TestWithoutNumpy:
    def test_auto_falls_back(self, monkeypatch):
        monkeypatch.setattr("repro.kernels.numpy_available", lambda: False)
        trace = random_trace(17, 300)
        result = simulate(trace, BimodalPredictor(64), kernel="auto")
        reference = simulate(trace, BimodalPredictor(64),
                             kernel="reference")
        assert result == reference

    def test_fast_raises(self, monkeypatch):
        monkeypatch.setattr("repro.kernels.numpy_available", lambda: False)
        with pytest.raises(ConfigurationError, match="numpy"):
            simulate(random_trace(19, 10), BimodalPredictor(64),
                     kernel="fast")

    def test_numpy_available_probe(self):
        assert numpy_available() is True


class TestExperimentContext:
    def test_cells_identical_under_fast_and_reference(self):
        """The figure-1 style flow is kernel-invariant end to end."""
        results = {}
        for kernel in ("fast", "reference"):
            ctx = ExperimentContext(trace_length=4000, site_scale=0.02,
                                    seed=3, kernel=kernel)
            results[kernel] = [
                ctx.run("gcc", "gshare", 1024),
                ctx.run("gcc", "bimodal", 1024, scheme="static_95"),
            ]
        assert results["fast"] == results["reference"]

    def test_kernel_knob_pickles(self):
        import pickle

        ctx = ExperimentContext(trace_length=1000, site_scale=0.02,
                                seed=3, kernel="reference")
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone.kernel == "reference"
        assert (clone.trace_length, clone.site_scale, clone.seed) \
            == (ctx.trace_length, ctx.site_scale, ctx.seed)

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentContext(trace_length=1000, kernel="warp")


class TestCollisionVectorization:
    """The vectorized collision-involvement path is bit-identical to the
    scalar reference loop — same per-branch charges AND the same dict
    insertion order (selection schemes iterate profiles in order)."""

    FAMILIES = [
        lambda: BimodalPredictor(64),
        lambda: GsharePredictor(64, history_length=5),
        lambda: GhistPredictor(64, history_length=6),
    ]

    @staticmethod
    def as_plain(profile):
        return [
            (addr, rec.executions, rec.destructive, rec.constructive)
            for addr, rec in profile.branches.items()
        ]

    @pytest.mark.parametrize("factory", FAMILIES)
    @pytest.mark.parametrize("length", [0, 1, 2, 500, 3000])
    def test_fast_matches_scalar(self, factory, length):
        trace = random_trace(derive_seed(99, "collisions", length), length)
        fast = measure_collision_involvement(trace, factory())
        scalar = _measure_collision_involvement_scalar(trace, factory())
        assert self.as_plain(fast) == self.as_plain(scalar)
        assert (fast.program_name, fast.input_name, fast.predictor_name) \
            == (scalar.program_name, scalar.input_name, scalar.predictor_name)

    @pytest.mark.parametrize("factory", FAMILIES)
    def test_fast_path_is_taken(self, factory):
        trace = random_trace(derive_seed(99, "collisions", "taken"), 400)
        records = _fast_collision_records(trace, factory())
        assert records is not None
        scalar = _measure_collision_involvement_scalar(trace, factory())
        assert list(records) == list(scalar.branches)

    def test_kernel_less_predictor_falls_back(self):
        trace = random_trace(derive_seed(99, "collisions", "fallback"), 300)
        predictor = make_predictor("2bcgskew", 2048)
        assert _fast_collision_records(trace, predictor) is None
        profile = measure_collision_involvement(trace, predictor)
        scalar = _measure_collision_involvement_scalar(
            trace, make_predictor("2bcgskew", 2048))
        assert self.as_plain(profile) == self.as_plain(scalar)

    def test_out_of_limits_predictor_falls_back(self):
        # Counter widths past the kernels' int32 headroom guard must
        # fall back to the scalar loop, not crash or diverge.
        trace = random_trace(derive_seed(99, "collisions", "large"), 100)
        wide = lambda: BimodalPredictor(64, counter_bits=17)  # noqa: E731
        assert _fast_collision_records(trace, wide()) is None
        profile = measure_collision_involvement(trace, wide())
        scalar = _measure_collision_involvement_scalar(trace, wide())
        assert self.as_plain(profile) == self.as_plain(scalar)

    def test_gcc_trace_end_to_end(self, gcc_trace):
        fast = measure_collision_involvement(gcc_trace,
                                             GsharePredictor(256))
        scalar = _measure_collision_involvement_scalar(gcc_trace,
                                                       GsharePredictor(256))
        assert self.as_plain(fast) == self.as_plain(scalar)
        assert fast.total_destructive == scalar.total_destructive
