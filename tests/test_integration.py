"""End-to-end integration tests over realistic (but small) workloads.

These exercise the full paper pipeline -- workload generation, profiling,
selection, combined simulation -- and assert the *mechanisms* hold at
small scale.  Quantitative shape checks against the paper's numbers run
in the benchmark harness on full-size traces.
"""

import pytest

from repro.arch.isa import ShiftPolicy
from repro.core.simulator import run_combined, run_selection_phase, simulate
from repro.predictors.sizing import make_predictor
from repro.profiling.profile import ProgramProfile
from repro.staticpred.selection import select_static_95
from repro.workloads.generator import build_workload
from repro.workloads.spec95 import get_spec


@pytest.fixture(scope="module")
def gcc_medium():
    workload = build_workload(get_spec("gcc"), "ref", root_seed=3,
                              site_scale=0.05)
    return workload.execute(60_000, run_seed=1)


class TestStaticPredictionMechanism:
    def test_static_acc_improves_small_gshare(self, gcc_medium):
        base = simulate(gcc_medium, make_predictor("gshare", 1024))
        hints = run_selection_phase(
            gcc_medium, "static_acc",
            predictor_factory=lambda: make_predictor("gshare", 1024),
        )
        combined = run_combined(gcc_medium, make_predictor("gshare", 1024),
                                hints)
        assert combined.mispredictions < base.mispredictions

    def test_static_95_barely_moves_bimodal(self, gcc_medium):
        # The paper's negative result: bimodal and Static_95 target the
        # same branches, so the combination changes little.
        base = simulate(gcc_medium, make_predictor("bimodal", 8192))
        hints = run_selection_phase(gcc_medium, "static_95")
        combined = run_combined(gcc_medium, make_predictor("bimodal", 8192),
                                hints)
        relative_change = abs(
            combined.mispredictions - base.mispredictions
        ) / base.mispredictions
        assert relative_change < 0.15

    def test_static_95_helps_ghist(self, gcc_medium):
        base = simulate(gcc_medium, make_predictor("ghist", 1024))
        hints = run_selection_phase(gcc_medium, "static_95")
        combined = run_combined(gcc_medium, make_predictor("ghist", 1024),
                                hints)
        assert combined.mispredictions < base.mispredictions

    def test_static_fraction_reasonable(self, gcc_medium):
        hints = run_selection_phase(gcc_medium, "static_95")
        combined = run_combined(gcc_medium, make_predictor("gshare", 1024),
                                hints)
        # gcc is ~half highly-biased dynamically.
        assert 0.25 < combined.static_fraction < 0.8

    def test_collisions_drop_with_static(self, gcc_medium):
        base = simulate(gcc_medium, make_predictor("gshare", 1024),
                        track_collisions=True)
        hints = run_selection_phase(gcc_medium, "static_95")
        combined = run_combined(gcc_medium, make_predictor("gshare", 1024),
                                hints, track_collisions=True)
        assert combined.collisions.lookups < base.collisions.lookups
        assert combined.collisions.collisions < base.collisions.collisions


class TestDeterminism:
    def test_full_pipeline_deterministic(self):
        def pipeline():
            workload = build_workload(get_spec("perl"), "ref", root_seed=11,
                                      site_scale=0.03)
            trace = workload.execute(10_000, run_seed=2)
            hints = run_selection_phase(trace, "static_95")
            result = run_combined(trace, make_predictor("gshare", 2048),
                                  hints, shift_policy=ShiftPolicy.SHIFT)
            return result.mispredictions, result.static_branches

        assert pipeline() == pipeline()


class TestCrossTraining:
    def test_cross_trained_hints_weaker_than_self_trained(self):
        # m88ksim's hot branches reverse between inputs, so train-profiled
        # hints must do worse on ref than ref-profiled hints.
        train_workload = build_workload(get_spec("m88ksim"), "train",
                                        root_seed=5, site_scale=0.1)
        ref_workload = build_workload(get_spec("m88ksim"), "ref",
                                      root_seed=5, site_scale=0.1)
        train_trace = train_workload.execute(40_000, run_seed=1)
        ref_trace = ref_workload.execute(40_000, run_seed=1)

        self_hints = select_static_95(ProgramProfile.from_trace(ref_trace))
        naive_hints = select_static_95(ProgramProfile.from_trace(train_trace))

        self_result = run_combined(
            ref_trace, make_predictor("gshare", 4096), self_hints
        )
        naive_result = run_combined(
            ref_trace, make_predictor("gshare", 4096), naive_hints
        )
        assert naive_result.mispredictions > self_result.mispredictions

    def test_wrong_direction_hints_hurt(self, gcc_medium):
        # Adversarial check: invert every selected direction and confirm
        # the combined predictor degrades badly -- hint bits really drive
        # predictions.
        from repro.arch.isa import HintBits

        hints = run_selection_phase(gcc_medium, "static_95")
        inverted = run_selection_phase(gcc_medium, "none")
        for address in hints.static_addresses():
            direction = hints.get(address).direction
            inverted.set(address, HintBits.static(not direction))
        good = run_combined(gcc_medium, make_predictor("gshare", 4096), hints)
        bad = run_combined(gcc_medium, make_predictor("gshare", 4096), inverted)
        assert bad.mispredictions > good.mispredictions * 2
