"""Tests for the selection-scheme extensions: collision-aware selection
(the paper's flagged future work) and iterative Lindsay selection."""

import pytest

from repro.core.simulator import run_combined, run_selection_phase, simulate
from repro.errors import SelectionError
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.sizing import make_predictor
from repro.profiling.collision_profile import (
    CollisionInvolvement,
    CollisionProfile,
    measure_collision_involvement,
)
from repro.profiling.profile import BranchProfile, ProgramProfile
from repro.staticpred.iterative import select_static_iterative
from repro.staticpred.selection import select_static_collision
from repro.workloads.trace import BranchTrace


def make_trace(records, program="demo"):
    trace = BranchTrace(program_name=program, input_name="ref")
    for address, taken in records:
        trace.site_indices.append(0)
        trace.addresses.append(address)
        trace.outcomes.append(taken)
        trace.gaps.append(2)
    return trace


class TestCollisionInvolvement:
    def test_rates(self):
        record = CollisionInvolvement(executions=10, destructive=3,
                                      constructive=1)
        assert record.destructive_rate == pytest.approx(0.3)
        assert record.constructive_rate == pytest.approx(0.1)

    def test_empty(self):
        record = CollisionInvolvement()
        assert record.destructive_rate == 0.0


class TestMeasureCollisionInvolvement:
    def test_no_aliasing_no_involvement(self):
        trace = make_trace([(0x1000, True), (0x1004, True)] * 50)
        profile = measure_collision_involvement(trace, BimodalPredictor(1024))
        assert profile.total_destructive == 0

    def test_destructive_pair_both_charged(self):
        # Two opposite-direction branches sharing a bimodal counter: the
        # canonical destructive-aliasing pair.  Both parties accumulate
        # destructive charges.
        colliding = 0x1000 + 4 * 4
        trace = make_trace([(0x1000, True), (colliding, False)] * 100)
        profile = measure_collision_involvement(trace, BimodalPredictor(4))
        a = profile.get(0x1000)
        b = profile.get(colliding)
        assert a is not None and b is not None
        assert a.destructive > 10
        assert b.destructive > 10
        assert profile.total_destructive > 0

    def test_constructive_pair_not_charged_destructive(self):
        # Same-direction aliasing branches: collisions happen but are
        # constructive.
        colliding = 0x1000 + 4 * 4
        trace = make_trace([(0x1000, True), (colliding, True)] * 100)
        profile = measure_collision_involvement(trace, BimodalPredictor(4))
        a = profile.get(0x1000)
        assert a.constructive > 10
        assert a.destructive <= 2  # warm-up only

    def test_executions_counted(self):
        trace = make_trace([(0x1000, True)] * 7)
        profile = measure_collision_involvement(trace, BimodalPredictor(64))
        assert profile.get(0x1000).executions == 7


class TestSelectStaticCollision:
    def _profiles(self):
        bias = ProgramProfile("demo", "ref", {
            0x1000: BranchProfile(100, 98),   # biased + colliding -> select
            0x1004: BranchProfile(100, 97),   # biased, no collisions
            0x1008: BranchProfile(100, 55),   # colliding but unbiased
        })
        collisions = CollisionProfile("demo", "ref", "gshare", {
            0x1000: CollisionInvolvement(100, destructive=20),
            0x1004: CollisionInvolvement(100, destructive=0),
            0x1008: CollisionInvolvement(100, destructive=30),
        })
        return bias, collisions

    def test_selects_biased_and_colliding_only(self):
        bias, collisions = self._profiles()
        hints = select_static_collision(bias, collisions)
        assert hints.static_addresses() == [0x1000]

    def test_thresholds(self):
        bias, collisions = self._profiles()
        loose = select_static_collision(bias, collisions,
                                        min_destructive_rate=0.0)
        assert set(loose.static_addresses()) == {0x1000, 0x1004}

    def test_rejects_mismatched_programs(self):
        bias, _ = self._profiles()
        other = CollisionProfile("other", "ref", "gshare", {})
        with pytest.raises(SelectionError):
            select_static_collision(bias, other)

    def test_rejects_bad_bias(self):
        bias, collisions = self._profiles()
        with pytest.raises(SelectionError):
            select_static_collision(bias, collisions, min_bias=1.0)

    def test_via_run_selection_phase(self, gcc_trace):
        hints = run_selection_phase(
            gcc_trace, "static_collision",
            predictor_factory=lambda: GsharePredictor(1024),
        )
        assert hints.scheme.startswith("static_collision")

    def test_requires_factory(self, gcc_trace):
        with pytest.raises(SelectionError):
            run_selection_phase(gcc_trace, "static_collision")


class TestSelectStaticIterative:
    def test_round_one_superset_of_nothing(self, gcc_trace):
        hints = select_static_iterative(
            gcc_trace, lambda: GsharePredictor(512), max_rounds=1
        )
        assert hints.static_count() > 0
        assert hints.scheme.endswith("r1)")

    def test_converges_and_is_monotone(self, gcc_trace):
        one = select_static_iterative(
            gcc_trace, lambda: GsharePredictor(512), max_rounds=1
        )
        many = select_static_iterative(
            gcc_trace, lambda: GsharePredictor(512), max_rounds=4
        )
        assert set(one.static_addresses()) <= set(many.static_addresses())

    def test_fixpoint_stops_early(self):
        # One perfectly predictable branch: round one selects nothing new
        # after the bias fails to beat accuracy, so the loop stops at r1
        # or r2 regardless of max_rounds.
        trace = make_trace([(0x1000, True)] * 200)
        hints = select_static_iterative(
            trace, lambda: BimodalPredictor(64), max_rounds=8
        )
        rounds = int(hints.scheme.rsplit("r", 1)[1].rstrip(")"))
        assert rounds <= 3

    def test_not_worse_than_static_acc(self, gcc_trace):
        factory = lambda: GsharePredictor(512)
        acc_hints = run_selection_phase(gcc_trace, "static_acc",
                                        predictor_factory=factory)
        iter_hints = select_static_iterative(gcc_trace, factory)
        acc_result = run_combined(gcc_trace, factory(), acc_hints)
        iter_result = run_combined(gcc_trace, factory(), iter_hints)
        base = simulate(gcc_trace, factory())
        # Both improve on the base; iterative is at least in acc's league.
        assert acc_result.mispredictions < base.mispredictions
        assert iter_result.mispredictions < base.mispredictions
        assert iter_result.mispredictions <= acc_result.mispredictions * 1.05

    def test_rejects_zero_rounds(self, gcc_trace):
        with pytest.raises(SelectionError):
            select_static_iterative(gcc_trace, lambda: BimodalPredictor(64),
                                    max_rounds=0)

    def test_via_context(self, tiny_ctx):
        result = tiny_ctx.run("compress", "gshare", 1024, scheme="static_iter")
        assert result.scheme.startswith("static_iter")


class TestSchemesListed:
    def test_new_schemes_registered(self):
        from repro.staticpred.selection import SELECTION_SCHEMES

        assert "static_collision" in SELECTION_SCHEMES
        assert "static_iter" in SELECTION_SCHEMES

    def test_cli_accepts_new_schemes(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--program", "gcc", "--predictor", "gshare",
             "--size", "1024", "--scheme", "static_collision"]
        )
        assert args.scheme == "static_collision"
