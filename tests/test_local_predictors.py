"""Tests for the PAg local-history and 21264 tournament predictors."""

import pytest

from repro.errors import ConfigurationError
from repro.predictors.local import LocalHistoryPredictor, TournamentPredictor
from repro.predictors.sizing import make_predictor


def run_stream(predictor, stream):
    correct = 0
    for address, taken in stream:
        predicted = predictor.predict(address)
        predictor.update(address, taken, predicted)
        if predicted == taken:
            correct += 1
    return correct / len(stream)


class TestLocalHistoryPredictor:
    def test_learns_per_branch_pattern(self):
        # An alternating branch is invisible to bimodal but trivial for a
        # local-history predictor.
        predictor = LocalHistoryPredictor(256)
        stream = [(0x1000, i % 2 == 0) for i in range(600)]
        assert run_stream(predictor, stream) > 0.9

    def test_learns_interleaved_patterns(self):
        # Two branches with different local patterns interleaved: global
        # history predictors see a merged stream, local history keeps
        # them separate.
        predictor = LocalHistoryPredictor(1024)
        stream = []
        for i in range(400):
            stream.append((0x1000, i % 2 == 0))        # alternate
            stream.append((0x1004, i % 3 != 0))        # 2-of-3 taken
        assert run_stream(predictor, stream) > 0.85

    def test_histories_are_per_branch(self):
        predictor = LocalHistoryPredictor(256, history_entries=64)
        predictor.predict(0x1000)
        predictor.update(0x1000, True, True)
        index_a = (0x1000 >> 2) & 63
        index_b = (0x1004 >> 2) & 63
        assert predictor.histories[index_a] == 1
        assert predictor.histories[index_b] == 0

    def test_size_accounts_for_history_file(self):
        predictor = LocalHistoryPredictor(256, history_entries=128)
        counter_bytes = 256 * 2 / 8
        history_bytes = 128 * 8 / 8  # 8-bit registers
        assert predictor.size_bytes == pytest.approx(counter_bytes + history_bytes)

    def test_rejects_long_history(self):
        with pytest.raises(ConfigurationError):
            LocalHistoryPredictor(256, history_length=12)

    def test_reset(self):
        predictor = LocalHistoryPredictor(256)
        predictor.predict(0x1000)
        predictor.update(0x1000, True, True)
        predictor.reset()
        assert all(h == 0 for h in predictor.histories)


class TestTournamentPredictor:
    def _make(self):
        return TournamentPredictor(
            local_pattern_entries=256,
            global_entries=256,
            chooser_entries=256,
            local_history_entries=128,
        )

    def test_learns_biased(self):
        assert run_stream(self._make(), [(0x1000, True)] * 400) > 0.9

    def test_learns_local_pattern(self):
        stream = [(0x1000, i % 2 == 0) for i in range(800)]
        assert run_stream(self._make(), stream) > 0.85

    def test_chooser_trains_only_on_disagreement(self):
        predictor = self._make()
        predictor.predict(0x1000)
        chooser_index = predictor._last_chooser_index
        before = predictor.chooser.values[chooser_index]
        # Force agreement by construction: fresh tables both predict
        # not-taken (weakly-not-taken init), so sides agree.
        predicted = predictor.predict(0x1000)
        assert predictor._last_local_pred == predictor._last_global_pred
        predictor.update(0x1000, False, predicted)
        assert predictor.chooser.values[chooser_index] == before

    def test_accessed_three_tables(self):
        predictor = self._make()
        predictor.predict(0x1000)
        tables = {table_id for table_id, _ in predictor.accessed()}
        assert tables == {0, 1, 2}

    def test_reset_clears_everything(self):
        predictor = self._make()
        run_stream(predictor, [(0x1000, True)] * 50)
        predictor.reset()
        fresh = self._make()
        assert predictor.predict(0x1000) == fresh.predict(0x1000)
        assert predictor.history.value == 0


class TestFactoryIntegration:
    @pytest.mark.parametrize("name", ["local", "tournament"])
    @pytest.mark.parametrize("budget", [1024, 8192, 65536])
    def test_within_budget(self, name, budget):
        predictor = make_predictor(name, budget)
        assert 0 < predictor.size_bytes <= budget

    def test_local_minimum_budget(self):
        with pytest.raises(Exception):
            make_predictor("local", 2)

    def test_tournament_runs_on_real_trace(self, gcc_trace):
        from repro.core.simulator import simulate

        result = simulate(gcc_trace, make_predictor("tournament", 4096))
        assert 0.5 < result.accuracy < 1.0
