"""Tests for the pinned trace suite subsystem (:mod:`repro.traces`)."""

import json

import pytest

from repro.errors import ExperimentError, TraceSuiteError
from repro.experiments.common import ExperimentContext
from repro.traces import (
    TraceSpec,
    TraceStore,
    TraceSuite,
    get_suite,
    register_suite,
    suite_names,
)

TINY = dict(length=3000, seed=7, site_scale=0.02)


def tiny_spec(name="tiny-gcc-ref", program="gcc", input_name="ref",
              fmt="npz", **overrides):
    return TraceSpec(name=name, program=program, input_name=input_name,
                     fmt=fmt, **{**TINY, **overrides})


def tiny_suite(*specs):
    return TraceSuite("tiny", specs or (tiny_spec(),))


class TestTraceSpec:
    def test_rejects_bad_format(self):
        with pytest.raises(TraceSuiteError, match="unsupported format"):
            tiny_spec(fmt="csv")

    def test_rejects_nonpositive_length(self):
        with pytest.raises(TraceSuiteError, match="positive"):
            tiny_spec(length=0)

    def test_rejects_empty_name(self):
        with pytest.raises(TraceSuiteError, match="non-empty"):
            tiny_spec(name="")

    def test_spec_digest_sensitive_to_recipe(self):
        base = tiny_spec()
        assert base.spec_digest() == tiny_spec().spec_digest()
        assert tiny_spec(length=3001).spec_digest() != base.spec_digest()
        assert tiny_spec(seed=8).spec_digest() != base.spec_digest()
        assert tiny_spec(input_name="train").spec_digest() != base.spec_digest()
        assert tiny_spec(fmt="memmap").spec_digest() != base.spec_digest()

    def test_pinned_digest_excluded_from_spec_digest(self):
        assert tiny_spec().spec_digest() == \
            tiny_spec(pinned_digest="0" * 64).spec_digest()

    def test_build_trace_matches_context_generation(self):
        # The replay-equals-regeneration contract hinges on this.
        ctx = ExperimentContext(trace_length=TINY["length"],
                                site_scale=TINY["site_scale"],
                                seed=TINY["seed"])
        generated = ctx.trace("gcc", "ref")
        built = tiny_spec().build_trace()
        assert built.content_digest() == generated.content_digest()


class TestRegistry:
    def test_builtin_suites_registered(self):
        assert "quick" in suite_names() and "default" in suite_names()

    def test_quick_suite_is_fully_pinned(self):
        for spec in get_suite("quick"):
            assert spec.pinned_digest, f"{spec.name} is unpinned"
            assert len(spec.pinned_digest) == 64

    def test_quick_suite_covers_all_programs_and_inputs(self):
        pairs = {(s.program, s.input_name) for s in get_suite("quick")}
        from repro.workloads.spec95 import PROGRAM_ORDER

        assert pairs == {(p, i) for p in PROGRAM_ORDER
                         for i in ("train", "ref")}

    def test_unknown_suite_raises(self):
        with pytest.raises(TraceSuiteError, match="unknown trace suite"):
            get_suite("nonexistent")

    def test_suite_instance_passes_through(self):
        suite = tiny_suite()
        assert get_suite(suite) is suite

    def test_duplicate_spec_names_rejected(self):
        with pytest.raises(TraceSuiteError, match="duplicate"):
            TraceSuite("dup", (tiny_spec(), tiny_spec()))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(TraceSuiteError, match="already registered"):
            register_suite(get_suite("quick"))

    def test_lookup_matches_exact_knobs_only(self):
        suite = tiny_suite()
        assert suite.lookup("gcc", "ref", TINY["length"], TINY["seed"],
                            TINY["site_scale"]) is not None
        assert suite.lookup("gcc", "ref", 9999, TINY["seed"],
                            TINY["site_scale"]) is None
        assert suite.lookup("gcc", "train", TINY["length"], TINY["seed"],
                            TINY["site_scale"]) is None

    def test_get_unknown_spec_raises(self):
        with pytest.raises(TraceSuiteError, match="no spec named"):
            tiny_suite().get("missing")


class TestTraceStore:
    def test_generate_load_roundtrip(self, tmp_path):
        store = TraceStore(str(tmp_path))
        spec = tiny_spec()
        manifest = store.generate(spec)
        assert manifest["branches"] == TINY["length"]
        trace = store.load(spec)
        assert trace.content_digest() == manifest["content_digest"]

    def test_generate_is_idempotent(self, tmp_path):
        store = TraceStore(str(tmp_path))
        spec = tiny_spec()
        first = store.generate(spec)
        artifact = store.artifact_path(spec)
        stamp = (tmp_path / artifact.split("/")[-1]).stat().st_mtime_ns
        second = store.generate(spec)
        assert second == first
        assert (tmp_path / artifact.split("/")[-1]).stat().st_mtime_ns == stamp

    def test_memmap_spec_roundtrip(self, tmp_path):
        store = TraceStore(str(tmp_path))
        npz = tiny_spec()
        memmap = tiny_spec(name="tiny-gcc-ref-mm", fmt="memmap")
        digest_npz = store.generate(npz)["content_digest"]
        digest_memmap = store.generate(memmap)["content_digest"]
        # The content digest is format-independent by construction.
        assert digest_npz == digest_memmap
        assert store.load(memmap).outcomes == store.load(npz).outcomes

    def test_load_before_generate_raises(self, tmp_path):
        store = TraceStore(str(tmp_path))
        with pytest.raises(TraceSuiteError, match="repro traces generate"):
            store.load(tiny_spec())

    def test_ensure_generates_then_loads(self, tmp_path):
        store = TraceStore(str(tmp_path))
        spec = tiny_spec()
        trace = store.ensure(spec)
        assert len(trace) == TINY["length"]
        assert store.exists(spec)

    def test_pinned_digest_mismatch_fails_generation(self, tmp_path):
        store = TraceStore(str(tmp_path))
        spec = tiny_spec(pinned_digest="0" * 64)
        with pytest.raises(TraceSuiteError, match="pins"):
            store.generate(spec)
        assert not store.exists(spec)

    def test_correct_pinned_digest_accepted(self, tmp_path):
        digest = tiny_spec().build_trace().content_digest()
        store = TraceStore(str(tmp_path))
        spec = tiny_spec(pinned_digest=digest)
        store.generate(spec)
        assert store.load(spec).content_digest() == digest

    def test_tampered_artifact_fails_load_and_verify(self, tmp_path):
        store = TraceStore(str(tmp_path))
        spec = tiny_spec()
        store.generate(spec)
        artifact = store.artifact_path(spec)
        other = tiny_spec(name="other", input_name="train")
        other.build_trace().save_npz(artifact)
        with pytest.raises(TraceSuiteError, match="digests to"):
            store.load(spec)
        problems = store.verify(spec)
        assert problems and "digests to" in problems[0]

    def test_verify_reports_missing_artifact(self, tmp_path):
        store = TraceStore(str(tmp_path))
        problems = store.verify(tiny_spec())
        assert problems == [f"not generated (expected "
                            f"{store.artifact_path(tiny_spec())})"]

    def test_manifest_for_different_recipe_rejected(self, tmp_path):
        store = TraceStore(str(tmp_path))
        spec = tiny_spec()
        store.generate(spec)
        # Corrupt the manifest's spec digest.
        path = store.manifest_path(spec)
        manifest = json.loads(open(path).read())
        manifest["spec_digest"] = "f" * 64
        with open(path, "w") as stream:
            json.dump(manifest, stream)
        with pytest.raises(TraceSuiteError, match="different recipe"):
            store.manifest(spec)

    def test_digest_readable_without_loading(self, tmp_path):
        store = TraceStore(str(tmp_path))
        spec = tiny_spec()
        manifest = store.generate(spec)
        assert store.content_digest(spec) == manifest["content_digest"]

    def test_env_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "envstore"))
        assert TraceStore().root == str(tmp_path / "envstore")


class TestReplayIntegration:
    def make_ctx(self, tmp_path, suite=None, **overrides):
        return ExperimentContext(
            trace_length=TINY["length"], site_scale=TINY["site_scale"],
            seed=TINY["seed"], trace_suite=suite,
            trace_dir=str(tmp_path / "store"), **overrides,
        )

    def test_replay_trace_is_bit_identical_to_regeneration(self, tmp_path):
        suite = tiny_suite()
        TraceStore(str(tmp_path / "store")).generate(suite.get("tiny-gcc-ref"))
        replayed = self.make_ctx(tmp_path, suite).trace("gcc", "ref")
        regenerated = self.make_ctx(tmp_path).trace("gcc", "ref")
        assert replayed.site_indices == regenerated.site_indices
        assert replayed.addresses == regenerated.addresses
        assert replayed.outcomes == regenerated.outcomes
        assert replayed.gaps == regenerated.gaps

    def test_unpinned_knobs_raise_instead_of_regenerating(self, tmp_path):
        ctx = self.make_ctx(tmp_path, tiny_suite())
        with pytest.raises(ExperimentError, match="pins no trace"):
            ctx.trace("gcc", "train")

    def test_ungenerated_artifact_raises_with_pointer(self, tmp_path):
        ctx = self.make_ctx(tmp_path, tiny_suite())
        with pytest.raises(TraceSuiteError, match="repro traces generate"):
            ctx.trace("gcc", "ref")

    def test_trace_digest_none_when_regenerating(self, tmp_path):
        assert self.make_ctx(tmp_path).trace_digest("gcc", "ref") is None

    def test_trace_digest_matches_manifest(self, tmp_path):
        suite = tiny_suite()
        store = TraceStore(str(tmp_path / "store"))
        manifest = store.generate(suite.get("tiny-gcc-ref"))
        ctx = self.make_ctx(tmp_path, suite)
        assert ctx.trace_digest("gcc", "ref") == manifest["content_digest"]

    def test_cell_keys_fold_digest_only_in_replay_mode(self, tmp_path):
        from repro.runner.cells import Cell

        suite = tiny_suite()
        TraceStore(str(tmp_path / "store")).generate(suite.get("tiny-gcc-ref"))
        cell = Cell.make("gcc", "gshare", 1024, scheme="static_95")
        plain = cell.key_fields(self.make_ctx(tmp_path))
        replay = cell.key_fields(self.make_ctx(tmp_path, suite))
        assert "trace_digest" not in plain
        assert len(replay["trace_digest"]) == 64
        assert replay["profile_trace_digest"] == replay["trace_digest"]
        assert "profile_trace_digest" in \
            cell.hint_key_fields(self.make_ctx(tmp_path, suite))
        # Everything else is unchanged, so regeneration-mode cache keys
        # are stable across this feature.
        assert plain == {k: v for k, v in replay.items()
                         if k not in ("trace_digest", "profile_trace_digest")}

    def test_replay_results_bit_identical_for_experiment_cells(self, tmp_path):
        from repro.experiments.registry import get_cells
        from repro.runner.cells import execute_cell

        suite = tiny_suite(
            tiny_spec(name="tiny-go-ref", program="go"),
            tiny_spec(name="tiny-go-train", program="go", input_name="train"),
        )
        store = TraceStore(str(tmp_path / "store"))
        for spec in suite:
            store.generate(spec)
        ctx_gen = self.make_ctx(tmp_path)
        ctx_rep = self.make_ctx(tmp_path, suite)
        cells = get_cells("figure1")(ctx_gen)[:4]
        for cell in cells:
            assert execute_cell(ctx_gen, cell).to_dict() == \
                execute_cell(ctx_rep, cell).to_dict()

    def test_replay_context_pickles_with_suite_name(self, tmp_path):
        import pickle

        ctx = ExperimentContext(trace_length=TINY["length"],
                                site_scale=TINY["site_scale"],
                                seed=TINY["seed"], trace_suite="quick",
                                trace_dir=str(tmp_path))
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone.trace_suite == "quick"
        assert clone.trace_dir == str(tmp_path)

    def test_env_knob_enables_replay(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SUITE", "quick")
        assert ExperimentContext(trace_length=10).trace_suite == "quick"
