"""Tests for the calibrated SPECINT95 workload specifications."""

import math

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.workloads.spec95 import (
    DriftSpec,
    PROGRAM_ORDER,
    SPEC95_PROGRAMS,
    WorkloadSpec,
    get_spec,
)


class TestSpecsWellFormed:
    def test_all_six_programs(self):
        assert set(SPEC95_PROGRAMS) == {"go", "gcc", "perl", "m88ksim",
                                        "compress", "ijpeg"}
        assert tuple(PROGRAM_ORDER) == ("go", "gcc", "perl", "m88ksim",
                                        "compress", "ijpeg")

    @pytest.mark.parametrize("name", PROGRAM_ORDER)
    def test_mix_sums_to_one(self, name):
        spec = get_spec(name)
        assert math.isclose(sum(f for _, f in spec.mix), 1.0, abs_tol=1e-9)

    @pytest.mark.parametrize("name", PROGRAM_ORDER)
    def test_paper_static_counts(self, name):
        paper = {"go": 7777, "gcc": 38852, "perl": 9569,
                 "m88ksim": 5365, "compress": 2238, "ijpeg": 5290}
        assert get_spec(name).static_branches == paper[name]

    @pytest.mark.parametrize("name", PROGRAM_ORDER)
    def test_paper_cbrs_per_ki(self, name):
        paper_ref = {"go": 117, "gcc": 156, "perl": 122,
                     "m88ksim": 115, "compress": 123, "ijpeg": 61}
        assert get_spec(name).cbrs_per_ki["ref"] == paper_ref[name]

    def test_highly_biased_ordering_matches_paper(self):
        # Paper Table 2 order: go << compress/ijpeg/gcc < perl < m88ksim.
        fractions = {
            name: get_spec(name).paper_highly_biased for name in PROGRAM_ORDER
        }
        assert fractions["go"] < fractions["compress"]
        assert fractions["perl"] > fractions["gcc"]
        assert fractions["m88ksim"] == max(fractions.values())

    def test_get_spec_unknown(self):
        with pytest.raises(WorkloadError):
            get_spec("vortex")


class TestSiteCount:
    def test_explicit_scale(self):
        assert get_spec("gcc").site_count(0.5) == 38852 // 2

    def test_scale_floor(self):
        assert get_spec("compress").site_count(0.0001) == 16

    def test_rejects_negative_scale(self):
        with pytest.raises(ConfigurationError):
            get_spec("gcc").site_count(-1.0)

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SITE_SCALE", "0.5")
        assert get_spec("gcc").site_count() == 38852 // 2

    def test_env_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SITE_SCALE", "banana")
        with pytest.raises(WorkloadError):
            get_spec("gcc").site_count()


class TestDriftSpec:
    def test_rejects_oversum(self):
        with pytest.raises(ConfigurationError):
            DriftSpec(reverse_fraction=0.5, shift_fraction=0.4,
                      jitter_fraction=0.3)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            DriftSpec(reverse_fraction=-0.1)

    def test_perl_and_m88ksim_have_hot_drift(self):
        # The Figure 13 failure mode requires hot-branch drift on exactly
        # these two programs.
        assert get_spec("perl").drift.hot_drift
        assert get_spec("m88ksim").drift.hot_drift
        assert not get_spec("gcc").drift.hot_drift

    def test_perl_lowest_train_coverage(self):
        coverages = {name: get_spec(name).train_coverage for name in PROGRAM_ORDER}
        assert min(coverages, key=coverages.get) == "perl"


class TestWorkloadSpecValidation:
    def _base_kwargs(self):
        spec = get_spec("compress")
        return dict(
            name="x",
            static_branches=100,
            static_instructions=1000,
            cbrs_per_ki={"train": 100.0, "ref": 100.0},
            mix=spec.mix,
        )

    def test_rejects_missing_input(self):
        kwargs = self._base_kwargs()
        kwargs["cbrs_per_ki"] = {"train": 100.0}
        with pytest.raises(ConfigurationError):
            WorkloadSpec(**kwargs)

    def test_rejects_silly_density(self):
        kwargs = self._base_kwargs()
        kwargs["cbrs_per_ki"] = {"train": 100.0, "ref": 2000.0}
        with pytest.raises(ConfigurationError):
            WorkloadSpec(**kwargs)

    def test_rejects_zero_branches(self):
        kwargs = self._base_kwargs()
        kwargs["static_branches"] = 0
        with pytest.raises(ConfigurationError):
            WorkloadSpec(**kwargs)

    def test_rejects_bad_coverage(self):
        kwargs = self._base_kwargs()
        kwargs["train_coverage"] = 0.0
        with pytest.raises(ConfigurationError):
            WorkloadSpec(**kwargs)

    def test_highly_biased_mix_fraction(self):
        spec = get_spec("m88ksim")
        fraction = spec.highly_biased_mix_fraction()
        assert 0.7 < fraction < 1.0
