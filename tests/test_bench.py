"""Tests for the benchmark subsystem (timing, snapshots, CLI gate)."""

from __future__ import annotations

import json

import pytest

from repro.bench.cases import (
    collision_cases,
    kernel_cases,
    profiling_cases,
    replay_cases,
    run_suite,
)
from repro.bench.snapshot import (
    FORMAT_HEADER,
    BenchFormatError,
    BenchResult,
    BenchSnapshot,
    Comparison,
    compare,
    parse_threshold,
    snapshot_filename,
)
from repro.bench.timing import TimingStats, measure
from repro.cli import main


def result(case: str, median_s: float, branches: int = 1000) -> BenchResult:
    return BenchResult(case=case, branches=branches, median_s=median_s,
                       iqr_s=0.0)


def snapshot(results, name="kernels") -> BenchSnapshot:
    return BenchSnapshot(name=name, trace_length=1000, repeats=3,
                         warmup=1, results=tuple(results))


@pytest.fixture(autouse=True)
def isolated_trace_store(tmp_path, monkeypatch):
    """Keep replay-case trace artifacts out of the working tree."""
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "trace-store"))


class TestTiming:
    def test_median_and_iqr(self):
        stats = TimingStats(samples=(4.0, 1.0, 2.0, 8.0, 3.0))
        assert stats.median_s == 3.0
        assert stats.iqr_s == 2.0  # q3=4.0, q1=2.0

    def test_single_sample(self):
        stats = TimingStats(samples=(0.5,))
        assert stats.median_s == 0.5
        assert stats.iqr_s == 0.0

    def test_measure_counts_calls(self):
        calls = []
        stats = measure(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert len(stats.samples) == 3
        assert all(sample >= 0.0 for sample in stats.samples)


class TestThreshold:
    def test_spellings(self):
        assert parse_threshold("2x") == pytest.approx(2.0)
        assert parse_threshold("20%") == pytest.approx(1.25)
        assert parse_threshold("0.2") == pytest.approx(1.25)
        assert parse_threshold("1.5") == pytest.approx(1.5)
        assert parse_threshold("0%") == pytest.approx(1.0)

    def test_rejections(self):
        for bad in ("fast", "-5%", "150%", "0.5x", ""):
            with pytest.raises(BenchFormatError):
                parse_threshold(bad)


class TestSnapshot:
    def test_roundtrip(self, tmp_path):
        original = snapshot([result("gshare/fast", 0.25)])
        path = tmp_path / snapshot_filename("kernels")
        original.save(str(path))
        loaded = BenchSnapshot.load(str(path))
        assert loaded == original

    def test_json_shape(self):
        payload = json.loads(snapshot([result("a/ref", 0.5)]).to_json())
        assert payload["format"] == FORMAT_HEADER
        entry = payload["results"][0]
        assert entry["branches_per_s"] == pytest.approx(2000.0)

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other v9"}', encoding="ascii")
        with pytest.raises(BenchFormatError):
            BenchSnapshot.load(str(path))
        path.write_text("[1, 2]", encoding="ascii")
        with pytest.raises(BenchFormatError):
            BenchSnapshot.load(str(path))
        with pytest.raises(BenchFormatError):
            BenchSnapshot.load(str(tmp_path / "missing.json"))


class TestCompare:
    def test_regression_detected(self):
        old = snapshot([result("a", 0.1), result("b", 0.1)])
        new = snapshot([result("a", 0.1), result("b", 0.5)])
        comparisons = compare(old, new, parse_threshold("2x"))
        verdicts = {c.case: c.regressed for c in comparisons}
        assert verdicts == {"a": False, "b": True}

    def test_threshold_boundary(self):
        old = snapshot([result("a", 0.1)])
        exactly_2x = snapshot([result("a", 0.2)])
        assert not any(
            c.regressed for c in compare(old, exactly_2x, 2.0)
        )

    def test_disjoint_cases_skipped(self):
        old = snapshot([result("a", 0.1)])
        new = snapshot([result("b", 0.1)])
        assert compare(old, new, 2.0) == []

    def test_render_mentions_verdict(self):
        comparison = Comparison(case="a", old_branches_per_s=1000.0,
                                new_branches_per_s=100.0, threshold=2.0)
        assert "REGRESSION" in comparison.render()


class TestSuite:
    def test_kernel_cases_pair_reference_and_fast(self):
        names = [case.name for case in kernel_cases(include_fast=True)]
        assert "gshare/reference" in names
        assert "gshare/fast" in names
        without = [case.name for case in kernel_cases(include_fast=False)]
        assert all(name.endswith("/reference") for name in without)

    def test_profiling_cases_pair_scalar_and_vectorized(self):
        names = [case.name for case in profiling_cases(include_fast=True)]
        assert names == ["profile/reference", "profile/fast"]
        without = [case.name for case in profiling_cases(include_fast=False)]
        assert without == ["profile/reference"]

    def test_collision_cases_pair_scalar_and_vectorized(self):
        names = [case.name for case in collision_cases(include_fast=True)]
        assert names == ["collision/reference", "collision/fast"]
        without = [case.name for case in collision_cases(include_fast=False)]
        assert without == ["collision/reference"]

    def test_replay_cases_pure_simulation(self):
        names = [case.name for case in replay_cases()]
        assert names == ["replay/gshare"]
        assert all(not case.end_to_end for case in replay_cases())

    def test_run_suite_smoke(self):
        snap = run_suite(quick=True, trace_length=2000, repeats=1)
        cases = {entry.case for entry in snap.results}
        assert "bimodal/reference" in cases
        assert "profile/reference" in cases
        assert "replay/gshare" in cases
        assert "service/roundtrip" in cases
        assert all(entry.median_s > 0.0 for entry in snap.results)
        # Service cases time one request (branches=1, so branches/s
        # reads as requests/s); everything else counts the trace.
        assert all(entry.branches == 2000 for entry in snap.results
                   if not entry.case.startswith("service/"))
        assert all(entry.branches == 1 for entry in snap.results
                   if entry.case.startswith("service/"))

    def test_replay_case_reuses_pinned_artifact(self, tmp_path, monkeypatch):
        # Two suite runs at the same knobs must generate the artifact
        # once and replay it the second time.
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "store"))
        run_suite(quick=True, trace_length=1500, repeats=1)
        store = tmp_path / "store"
        manifests = sorted(p.name for p in store.glob("*.json"))
        assert len(manifests) == 1 and manifests[0].startswith("bench-gcc-ref")
        stamp = {p.name: p.stat().st_mtime_ns for p in store.iterdir()}
        run_suite(quick=True, trace_length=1500, repeats=1)
        assert {p.name: p.stat().st_mtime_ns
                for p in store.iterdir()} == stamp


class TestCli:
    def test_bench_writes_snapshot(self, tmp_path, capsys):
        out = tmp_path / "BENCH_kernels.json"
        status = main(["bench", "--quick", "--length", "2000",
                       "--repeats", "1", "--out", str(out)])
        assert status == 0
        assert "branches/s" in capsys.readouterr().out
        snap = BenchSnapshot.load(str(out))
        assert snap.trace_length == 2000

    def test_bench_compare_gate(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        current = tmp_path / "current.json"
        snapshot([result("a", 0.1)]).save(str(baseline))
        snapshot([result("a", 0.11)]).save(str(current))
        assert main(["bench", "--compare", str(baseline), str(current),
                     "--max-regression", "2x"]) == 0
        assert "no regression" in capsys.readouterr().out
        snapshot([result("a", 0.5)]).save(str(current))
        assert main(["bench", "--compare", str(baseline), str(current),
                     "--max-regression", "2x"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out

    def test_bench_bad_threshold_is_clean_error(self, capsys):
        assert main(["bench", "--compare", "x.json", "--max-regression",
                     "soon"]) == 1
        assert "error:" in capsys.readouterr().err
