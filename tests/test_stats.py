"""Tests for trace characterization (Tables 1 and 2 machinery)."""

import pytest

from repro.workloads.stats import (
    SiteStats,
    bias_histogram,
    characterize,
    dynamic_highly_biased_fraction,
)
from repro.workloads.trace import BranchTrace


def make_trace(records):
    trace = BranchTrace(program_name="demo", input_name="ref")
    for site, taken, gap in records:
        trace.site_indices.append(site)
        trace.addresses.append(0x1000 + site * 4)
        trace.outcomes.append(taken)
        trace.gaps.append(gap)
    return trace


class TestSiteStats:
    def test_bias_of_balanced(self):
        stats = SiteStats(executions=10, taken=5)
        assert stats.bias == pytest.approx(0.5)

    def test_bias_of_skewed(self):
        stats = SiteStats(executions=10, taken=9)
        assert stats.bias == pytest.approx(0.9)
        assert stats.majority_taken

    def test_majority_not_taken(self):
        stats = SiteStats(executions=10, taken=2)
        assert not stats.majority_taken

    def test_tie_counts_as_taken(self):
        assert SiteStats(executions=4, taken=2).majority_taken

    def test_empty(self):
        stats = SiteStats()
        assert stats.taken_rate == 0.0
        assert stats.bias == 1.0  # never executed: vacuously "all not taken"


class TestCharacterize:
    def test_counts(self):
        trace = make_trace([(0, True, 2), (0, True, 2), (0, False, 2),
                            (1, False, 4)])
        ch = characterize(trace)
        assert ch.branch_count == 4
        assert ch.instruction_count == 10
        assert ch.static_sites_executed == 2
        assert ch.site_stats[0].executions == 3
        assert ch.site_stats[0].taken == 2
        assert ch.taken_rate == pytest.approx(0.5)
        assert ch.cbrs_per_ki == pytest.approx(400.0)

    def test_highly_biased_fraction_weighted(self):
        # Site 0: 100% taken over 8 executions (bias 1.0 > 0.95).
        # Site 1: 50% taken over 2 executions.
        records = [(0, True, 1)] * 8 + [(1, True, 1), (1, False, 1)]
        trace = make_trace(records)
        assert dynamic_highly_biased_fraction(trace) == pytest.approx(0.8)

    def test_static_fraction(self):
        records = [(0, True, 1)] * 8 + [(1, True, 1), (1, False, 1)]
        ch = characterize(make_trace(records))
        assert ch.static_highly_biased_fraction() == pytest.approx(0.5)

    def test_empty_trace(self):
        ch = characterize(make_trace([]))
        assert ch.dynamic_highly_biased_fraction() == 0.0
        assert ch.static_highly_biased_fraction() == 0.0


class TestBiasHistogram:
    def test_buckets(self):
        # One site all-taken (bias 1.0 -> last bin), one site 50/50
        # (bias 0.5 -> first bin).
        records = [(0, True, 1)] * 4 + [(1, True, 1), (1, False, 1)]
        histogram = bias_histogram(make_trace(records), bins=5)
        assert histogram[-1] == 4
        assert histogram[0] == 2
        assert sum(histogram) == 6

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            bias_histogram(make_trace([(0, True, 1)]), bins=0)

    def test_real_workload_histogram_total(self, gcc_trace):
        histogram = bias_histogram(gcc_trace)
        assert sum(histogram) == len(gcc_trace)
