"""Tests for hint assignments and the static selection schemes."""

import pytest

from repro.arch.isa import HintBits
from repro.arch.program import Program
from repro.errors import ProfileError, SelectionError
from repro.profiling.accuracy import AccuracyProfile, BranchAccuracy
from repro.profiling.profile import BranchProfile, ProgramProfile
from repro.staticpred.hints import HintAssignment
from repro.staticpred.selection import (
    select_static_95,
    select_static_acc,
    select_static_fac,
)


def profile_of(branches):
    return ProgramProfile("demo", "ref", branches)


def accuracy_of(branches, predictor="gshare"):
    return AccuracyProfile("demo", "ref", predictor, branches)


class TestHintAssignment:
    def test_set_get(self):
        hints = HintAssignment("demo", "static_95")
        hints.set(0x1000, HintBits.static(True))
        assert hints.get(0x1000).direction is True
        assert hints.get(0x2000) is None
        assert 0x1000 in hints
        assert len(hints) == 1

    def test_static_count_and_addresses(self):
        hints = HintAssignment("demo", "s")
        hints.set(0x1000, HintBits.static(True))
        hints.set(0x2000, HintBits.dynamic())
        assert hints.static_count() == 1
        assert hints.static_addresses() == [0x1000]

    def test_lookup_table_only_static(self):
        hints = HintAssignment("demo", "s")
        hints.set(0x1000, HintBits.static(False))
        hints.set(0x2000, HintBits.dynamic())
        assert hints.lookup_table() == {0x1000: False}

    def test_apply_to_program(self):
        program = Program.synthesize("demo", 10, seed=1)
        hints = HintAssignment("demo", "s")
        hints.set(program.sites[3].address, HintBits.static(True))
        hints.set(0xDEAD_BEE0, HintBits.static(True))  # not in program
        rewritten = hints.apply_to(program)
        assert rewritten == 1
        assert program.sites[3].hints.use_static

    def test_json_roundtrip(self):
        hints = HintAssignment("demo", "static_acc(gshare)")
        hints.set(0x1000, HintBits.static(True, shift_history=True))
        loaded = HintAssignment.from_json(hints.to_json())
        assert loaded.scheme == "static_acc(gshare)"
        assert loaded.get(0x1000).shift_history

    def test_file_roundtrip(self, tmp_path):
        hints = HintAssignment("demo", "s")
        hints.set(0x1000, HintBits.static(False))
        path = str(tmp_path / "hints.json")
        hints.save(path)
        assert HintAssignment.load(path).get(0x1000).direction is False

    def test_rejects_malformed_json(self):
        with pytest.raises(ProfileError):
            HintAssignment.from_json("[1, 2]")


class TestSelectStatic95:
    def test_selects_above_cutoff(self):
        profile = profile_of({
            0x1000: BranchProfile(100, 98),   # bias 0.98 -> selected
            0x1004: BranchProfile(100, 7),    # bias 0.93 -> not selected
            0x1008: BranchProfile(100, 1),    # bias 0.99 -> selected, not-taken
        })
        hints = select_static_95(profile)
        assert hints.static_count() == 2
        assert hints.get(0x1000).direction is True
        assert hints.get(0x1008).direction is False
        assert hints.get(0x1004) is None

    def test_cutoff_exclusive(self):
        profile = profile_of({0x1000: BranchProfile(100, 95)})
        assert select_static_95(profile, cutoff=0.95).static_count() == 0

    def test_min_executions(self):
        profile = profile_of({0x1000: BranchProfile(4, 4)})
        assert select_static_95(profile).static_count() == 0
        assert select_static_95(profile, min_executions=2).static_count() == 1

    def test_lower_cutoff_selects_superset(self):
        profile = profile_of({
            addr: BranchProfile(100, taken)
            for addr, taken in ((0x1000, 98), (0x1004, 93), (0x1008, 91))
        })
        strict = set(select_static_95(profile, cutoff=0.95).static_addresses())
        loose = set(select_static_95(profile, cutoff=0.90).static_addresses())
        assert strict <= loose
        assert len(loose) > len(strict)

    def test_scheme_name_includes_cutoff(self):
        profile = profile_of({})
        assert select_static_95(profile, cutoff=0.99).scheme == "static_99"

    def test_rejects_bad_cutoff(self):
        with pytest.raises(SelectionError):
            select_static_95(profile_of({}), cutoff=1.0)

    def test_shift_history_flag(self):
        profile = profile_of({0x1000: BranchProfile(100, 99)})
        hints = select_static_95(profile, shift_history=True)
        assert hints.get(0x1000).shift_history


class TestSelectStaticAcc:
    def test_selects_bias_above_accuracy(self):
        profile = profile_of({
            0x1000: BranchProfile(100, 90),   # bias .9
            0x1004: BranchProfile(100, 90),   # bias .9
        })
        accuracy = accuracy_of({
            0x1000: BranchAccuracy(100, 80),  # acc .8 < bias -> select
            0x1004: BranchAccuracy(100, 95),  # acc .95 > bias -> keep dynamic
        })
        hints = select_static_acc(profile, accuracy)
        assert hints.static_addresses() == [0x1000]

    def test_skips_unmeasured_branches(self):
        profile = profile_of({0x1000: BranchProfile(100, 99)})
        hints = select_static_acc(profile, accuracy_of({}))
        assert hints.static_count() == 0

    def test_rejects_program_mismatch(self):
        profile = profile_of({})
        accuracy = AccuracyProfile("other", "ref", "gshare", {})
        with pytest.raises(SelectionError):
            select_static_acc(profile, accuracy)

    def test_scheme_names_predictor(self):
        hints = select_static_acc(profile_of({}), accuracy_of({}, "2bcgskew"))
        assert "2bcgskew" in hints.scheme


class TestSelectStaticFac:
    def test_factor_narrows_selection(self):
        profile = profile_of({
            0x1000: BranchProfile(100, 90),
            0x1004: BranchProfile(100, 99),
        })
        accuracy = accuracy_of({
            0x1000: BranchAccuracy(100, 88),  # bias/acc = 1.02
            0x1004: BranchAccuracy(100, 80),  # bias/acc = 1.24
        })
        acc_hints = select_static_acc(profile, accuracy)
        fac_hints = select_static_fac(profile, accuracy, factor=1.10)
        assert set(fac_hints.static_addresses()) < set(acc_hints.static_addresses())
        assert fac_hints.static_addresses() == [0x1004]

    def test_factor_one_equals_acc(self):
        profile = profile_of({0x1000: BranchProfile(100, 90)})
        accuracy = accuracy_of({0x1000: BranchAccuracy(100, 80)})
        acc = select_static_acc(profile, accuracy)
        fac = select_static_fac(profile, accuracy, factor=1.0)
        assert acc.static_addresses() == fac.static_addresses()

    def test_rejects_small_factor(self):
        with pytest.raises(SelectionError):
            select_static_fac(profile_of({}), accuracy_of({}), factor=0.9)
