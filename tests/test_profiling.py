"""Tests for bias profiles, accuracy profiles, the database, and drift."""

import pytest

from repro.errors import ProfileError
from repro.predictors.bimodal import BimodalPredictor
from repro.profiling.accuracy import BranchAccuracy, measure_accuracy
from repro.profiling.database import ProfileDatabase
from repro.profiling.drift import analyze_drift
from repro.profiling.profile import BranchProfile, ProgramProfile
from repro.workloads.trace import BranchTrace


def make_trace(records, program="demo", input_name="ref"):
    trace = BranchTrace(program_name=program, input_name=input_name)
    for address, taken in records:
        trace.site_indices.append(0)
        trace.addresses.append(address)
        trace.outcomes.append(taken)
        trace.gaps.append(1)
    return trace


class TestBranchProfile:
    def test_counts_and_bias(self):
        profile = BranchProfile(executions=10, taken=9)
        assert profile.taken_rate == pytest.approx(0.9)
        assert profile.bias == pytest.approx(0.9)
        assert profile.majority_taken

    def test_not_taken_bias(self):
        profile = BranchProfile(executions=10, taken=1)
        assert profile.bias == pytest.approx(0.9)
        assert not profile.majority_taken

    def test_record(self):
        profile = BranchProfile()
        profile.record(True)
        profile.record(False)
        assert profile.executions == 2
        assert profile.taken == 1

    def test_merged_with(self):
        merged = BranchProfile(10, 8).merged_with(BranchProfile(5, 1))
        assert merged.executions == 15
        assert merged.taken == 9

    def test_rejects_inconsistent(self):
        with pytest.raises(ProfileError):
            BranchProfile(executions=2, taken=5)


class TestProgramProfile:
    def test_from_trace(self):
        trace = make_trace([(0x1000, True), (0x1000, True), (0x1000, False),
                            (0x1004, False)])
        profile = ProgramProfile.from_trace(trace)
        assert len(profile) == 2
        assert profile[0x1000].executions == 3
        assert profile[0x1000].taken == 2
        assert profile[0x1004].majority_taken is False
        assert profile.total_executions == 4

    def test_from_trace_matches_scalar_reference_bit_for_bit(self):
        # The vectorized tally must be indistinguishable from the scalar
        # loop it replaced, including dict insertion order (which
        # to_json serializes) — same contract as the fast kernels.
        from repro.utils import derive_rng

        rng = derive_rng(1234, "profiling", "differential")
        addresses = [0x1000 + 4 * rng.randrange(64) for _ in range(5000)]
        records = [(addr, rng.random() < 0.7) for addr in addresses]
        trace = make_trace(records)

        fast = ProgramProfile.from_trace(trace)
        scalar = ProgramProfile._from_trace_scalar(trace)
        assert list(fast.branches) == list(scalar.branches)
        assert {a: (p.executions, p.taken) for a, p in fast.items()} == \
            {a: (p.executions, p.taken) for a, p in scalar.items()}
        assert fast.to_json() == scalar.to_json()

    def test_from_trace_empty_trace(self):
        profile = ProgramProfile.from_trace(make_trace([]))
        assert len(profile) == 0
        assert profile.to_json() == \
            ProgramProfile._from_trace_scalar(make_trace([])).to_json()

    def test_merge_accumulates(self):
        a = ProgramProfile.from_trace(make_trace([(0x1000, True)] * 3))
        b = ProgramProfile.from_trace(
            make_trace([(0x1000, False)] * 2 + [(0x1004, True)],
                       input_name="train")
        )
        merged = a.merge(b)
        assert merged[0x1000].executions == 5
        assert merged[0x1000].taken == 3
        assert 0x1004 in merged
        assert "+" in merged.input_name

    def test_merge_rejects_other_program(self):
        a = ProgramProfile("p1", "ref")
        b = ProgramProfile("p2", "ref")
        with pytest.raises(ProfileError):
            a.merge(b)

    def test_filtered(self):
        profile = ProgramProfile.from_trace(
            make_trace([(0x1000, True)] * 5 + [(0x1004, True)])
        )
        hot = profile.filtered(lambda a, p: p.executions >= 5)
        assert 0x1000 in hot and 0x1004 not in hot

    def test_json_roundtrip(self):
        profile = ProgramProfile.from_trace(
            make_trace([(0x1000, True), (0x1004, False)])
        )
        loaded = ProgramProfile.from_json(profile.to_json())
        assert loaded.program_name == profile.program_name
        assert loaded[0x1000].executions == 1
        assert loaded[0x1004].taken == 0

    def test_file_roundtrip(self, tmp_path):
        profile = ProgramProfile.from_trace(make_trace([(0x1000, True)]))
        path = str(tmp_path / "p.json")
        profile.save(path)
        assert ProgramProfile.load(path)[0x1000].taken == 1

    def test_rejects_malformed_json(self):
        with pytest.raises(ProfileError):
            ProgramProfile.from_json("{}")


class TestMeasureAccuracy:
    def test_per_branch_counts(self):
        trace = make_trace([(0x1000, True)] * 10)
        accuracy = measure_accuracy(trace, BimodalPredictor(64))
        record = accuracy.get(0x1000)
        assert record.executions == 10
        # Weakly-not-taken start: 1 miss, then correct.
        assert record.correct == 9

    def test_overall_matches_weighted(self):
        trace = make_trace([(0x1000, True)] * 10 + [(0x1004, False)] * 10)
        accuracy = measure_accuracy(trace, BimodalPredictor(64))
        total = sum(r.executions for r in accuracy.branches.values())
        correct = sum(r.correct for r in accuracy.branches.values())
        assert accuracy.overall_accuracy == pytest.approx(correct / total)

    def test_unseen_branch_accuracy_zero(self):
        trace = make_trace([(0x1000, True)])
        accuracy = measure_accuracy(trace, BimodalPredictor(64))
        assert accuracy.accuracy_of(0x9999 * 4) == 0.0

    def test_json_roundtrip(self):
        trace = make_trace([(0x1000, True)] * 4)
        accuracy = measure_accuracy(trace, BimodalPredictor(64))
        from repro.profiling.accuracy import AccuracyProfile

        loaded = AccuracyProfile.from_json(accuracy.to_json())
        assert loaded.predictor_name == "bimodal"
        assert loaded.get(0x1000).executions == 4

    def test_inconsistent_record_rejected(self):
        with pytest.raises(ProfileError):
            BranchAccuracy(executions=1, correct=2)


class TestProfileDatabase:
    def _database(self):
        database = ProfileDatabase()
        database.record(ProgramProfile.from_trace(
            make_trace([(0x1000, True)] * 10 + [(0x1004, True)] * 10,
                       input_name="train")
        ))
        # In ref, 0x1000 keeps its bias; 0x1004 reverses.
        database.record(ProgramProfile.from_trace(
            make_trace([(0x1000, True)] * 10 + [(0x1004, False)] * 10,
                       input_name="ref")
        ))
        return database

    def test_programs_and_inputs(self):
        database = self._database()
        assert database.programs() == ["demo"]
        assert database.inputs("demo") == ["ref", "train"]

    def test_get_missing_raises(self):
        database = self._database()
        with pytest.raises(ProfileError):
            database.get("demo", "test")
        with pytest.raises(ProfileError):
            database.get("nosuch", "ref")

    def test_record_same_input_accumulates(self):
        database = self._database()
        database.record(ProgramProfile.from_trace(
            make_trace([(0x1000, True)] * 5, input_name="ref")
        ))
        assert database.get("demo", "ref")[0x1000].executions == 15

    def test_merged(self):
        merged = self._database().merged("demo")
        assert merged[0x1000].executions == 20
        assert merged[0x1004].executions == 20
        assert merged[0x1004].taken == 10

    def test_stable_filtered_drops_reversing_branch(self):
        stable = self._database().stable_filtered("demo")
        assert 0x1000 in stable
        assert 0x1004 not in stable

    def test_stable_filtered_threshold(self):
        # With a huge threshold nothing is dropped.
        stable = self._database().stable_filtered(
            "demo", max_taken_rate_change=1.0
        )
        assert 0x1004 in stable

    def test_save_load_roundtrip(self, tmp_path):
        database = self._database()
        database.save(str(tmp_path / "db"))
        loaded = ProfileDatabase.load(str(tmp_path / "db"))
        assert loaded.get("demo", "ref")[0x1004].taken == 0

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ProfileError):
            ProfileDatabase.load(str(tmp_path / "nope"))


class TestAnalyzeDrift:
    def test_synthetic_drift_stats(self):
        train = ProgramProfile("demo", "train", {
            0x1000: BranchProfile(100, 95),   # stays
            0x1004: BranchProfile(100, 90),   # reverses
            0x1008: BranchProfile(100, 50),   # only in train
        })
        ref = ProgramProfile("demo", "ref", {
            0x1000: BranchProfile(200, 192),  # bias change ~1% -> small
            0x1004: BranchProfile(100, 10),   # majority change, change 0.8
            0x100C: BranchProfile(50, 25),    # only in ref
        })
        drift = analyze_drift(train, ref)
        assert drift.ref_branches == 3
        assert drift.common_branches == 2
        assert drift.coverage_static == pytest.approx(2 / 3)
        assert drift.coverage_dynamic == pytest.approx(300 / 350)
        assert drift.majority_change_static == pytest.approx(1 / 2)
        assert drift.small_change_static == pytest.approx(1 / 2)
        assert drift.large_change_static == pytest.approx(1 / 2)
        assert drift.majority_change_dynamic == pytest.approx(100 / 300)

    def test_empty_ref(self):
        drift = analyze_drift(ProgramProfile("d", "train"),
                              ProgramProfile("d", "ref"))
        assert drift.coverage_static == 0.0
        assert drift.common_branches == 0

    def test_real_workload_drift(self, m88ksim_traces):
        train, ref = m88ksim_traces
        drift = analyze_drift(
            ProgramProfile.from_trace(train), ProgramProfile.from_trace(ref)
        )
        assert 0.0 < drift.coverage_static <= 1.0
        assert drift.small_change_static > drift.large_change_static
