"""Tests for saturating counter tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.predictors.counters import CounterTable


class TestConstruction:
    def test_defaults_weakly_not_taken(self):
        table = CounterTable(8)
        assert table.values == [1] * 8
        assert table.threshold == 2
        assert table.max_value == 3

    def test_custom_initial(self):
        table = CounterTable(4, initial=3)
        assert table.values == [3, 3, 3, 3]

    def test_size_accounting(self):
        table = CounterTable(4096, bits=2)
        assert table.size_bits == 8192
        assert table.size_bytes == 1024.0

    def test_three_bit_counters(self):
        table = CounterTable(4, bits=3)
        assert table.max_value == 7
        assert table.threshold == 4

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            CounterTable(12)

    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigurationError):
            CounterTable(4, bits=0)

    def test_rejects_out_of_range_initial(self):
        with pytest.raises(ConfigurationError):
            CounterTable(4, initial=9)


class TestUpdate:
    def test_increments_on_taken(self):
        table = CounterTable(4)
        table.update(0, True)
        assert table.values[0] == 2

    def test_decrements_on_not_taken(self):
        table = CounterTable(4)
        table.update(0, False)
        assert table.values[0] == 0

    def test_saturates_high(self):
        table = CounterTable(4)
        for _ in range(10):
            table.update(0, True)
        assert table.values[0] == 3

    def test_saturates_low(self):
        table = CounterTable(4)
        for _ in range(10):
            table.update(0, False)
        assert table.values[0] == 0

    def test_predict_threshold(self):
        table = CounterTable(4)
        assert not table.predict(0)  # 1 < 2
        table.update(0, True)
        assert table.predict(0)  # 2 >= 2

    def test_hysteresis(self):
        # A saturated counter survives one opposite outcome.
        table = CounterTable(4)
        table.update(0, True)
        table.update(0, True)  # value 3
        table.update(0, False)  # value 2
        assert table.predict(0)

    def test_reset(self):
        table = CounterTable(4)
        table.update(0, True)
        table.reset()
        assert table.values == [1] * 4

    def test_reset_custom(self):
        table = CounterTable(4)
        table.reset(2)
        assert table.values == [2] * 4

    def test_reset_rejects_bad_value(self):
        with pytest.raises(ConfigurationError):
            CounterTable(4).reset(5)


class TestInvariants:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=15),
                              st.booleans()), max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_counters_stay_in_range(self, updates):
        table = CounterTable(16)
        for index, taken in updates:
            table.update(index, taken)
        table.check_invariants()

    @given(st.integers(min_value=1, max_value=4))
    def test_check_invariants_catches_corruption(self, bits):
        table = CounterTable(4, bits=bits)
        table.values[2] = table.max_value + 1
        with pytest.raises(AssertionError):
            table.check_invariants()
