"""Hypothesis property tests over the core invariants.

These complement the per-module property tests with cross-cutting
invariants: predictors never corrupt their counters on arbitrary branch
streams, the combined predictor's static side is exactly the profile
majority, and simulation accounting always balances.
"""

from hypothesis import given, settings, strategies as st

from repro.arch.isa import HintBits, ShiftPolicy
from repro.core.combined import CombinedPredictor
from repro.core.simulator import simulate
from repro.predictors.sizing import make_predictor
from repro.profiling.profile import ProgramProfile
from repro.staticpred.hints import HintAssignment
from repro.staticpred.selection import select_static_95
from repro.workloads.trace import BranchTrace

# Streams of (address, taken): addresses word-aligned within a small
# window so aliasing actually happens.
streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255).map(lambda i: 0x1000 + i * 4),
        st.booleans(),
    ),
    min_size=1,
    max_size=400,
)

predictor_names = st.sampled_from(
    ["bimodal", "ghist", "gshare", "bimode", "2bcgskew", "agree"]
)


def trace_from(pairs):
    trace = BranchTrace(program_name="prop", input_name="ref")
    for address, taken in pairs:
        trace.site_indices.append((address - 0x1000) // 4)
        trace.addresses.append(address)
        trace.outcomes.append(taken)
        trace.gaps.append(3)
    return trace


@given(predictor_names, streams)
@settings(max_examples=60, deadline=None)
def test_counters_never_corrupt(name, pairs):
    predictor = make_predictor(name, 256)
    for address, taken in pairs:
        predicted = predictor.predict(address)
        assert isinstance(predicted, bool)
        predictor.update(address, taken, predicted)
    # Every table's counters must still be in range.
    tables = getattr(predictor, "banks", None)
    if tables is None:
        tables = getattr(predictor, "direction_banks", None)
        if tables is not None:
            tables = list(tables) + [predictor.choice]
        else:
            tables = [predictor.table]
    for table in tables:
        table.check_invariants()


@given(predictor_names, streams)
@settings(max_examples=40, deadline=None)
def test_simulation_accounting_balances(name, pairs):
    trace = trace_from(pairs)
    result = simulate(trace, make_predictor(name, 256))
    assert 0 <= result.mispredictions <= result.branches
    assert result.branches == len(pairs)
    assert result.instructions == 3 * len(pairs)
    assert 0.0 <= result.accuracy <= 1.0


@given(streams)
@settings(max_examples=40, deadline=None)
def test_static_hints_predict_profile_majority(pairs):
    trace = trace_from(pairs)
    profile = ProgramProfile.from_trace(trace)
    hints = select_static_95(profile, min_executions=1)
    for address in hints.static_addresses():
        assert hints.get(address).direction == profile[address].majority_taken


@given(streams)
@settings(max_examples=40, deadline=None)
def test_combined_static_counts_match_hint_coverage(pairs):
    trace = trace_from(pairs)
    hints = HintAssignment("prop", "all-static")
    for address in set(trace.addresses):
        hints.set(address, HintBits.static(True))
    combined = CombinedPredictor(make_predictor("gshare", 256), hints)
    result = simulate(trace, combined, scheme="all-static")
    # Every branch was static, and mispredictions equal not-taken count.
    assert result.static_branches == len(pairs)
    assert result.mispredictions == sum(1 for _, taken in pairs if not taken)


@given(streams, st.sampled_from(list(ShiftPolicy)))
@settings(max_examples=40, deadline=None)
def test_combined_dynamic_only_is_identical_to_bare(pairs, policy):
    # With zero static hints, the combined predictor must behave exactly
    # like the bare dynamic predictor under every shift policy.
    trace = trace_from(pairs)
    bare = simulate(trace, make_predictor("gshare", 256))
    combined = CombinedPredictor(
        make_predictor("gshare", 256),
        HintAssignment("prop", "none"),
        shift_policy=policy,
    )
    wrapped = simulate(trace, combined)
    assert wrapped.mispredictions == bare.mispredictions


@given(streams)
@settings(max_examples=30, deadline=None)
def test_profile_merge_is_commutative_in_counts(pairs):
    half = len(pairs) // 2
    a = ProgramProfile.from_trace(trace_from(pairs[:half] or pairs))
    b = ProgramProfile.from_trace(trace_from(pairs[half:] or pairs))
    ab = a.merge(b)
    ba = b.merge(a)
    assert set(ab.branches) == set(ba.branches)
    for address in ab:
        assert ab[address].executions == ba[address].executions
        assert ab[address].taken == ba[address].taken


@given(streams)
@settings(max_examples=30, deadline=None)
def test_pipeline_cycles_decompose(pairs):
    # The front-end model's cycle components always sum to the total and
    # the misprediction count matches a plain simulation of the same
    # predictor configuration.
    from repro.pipeline.frontend import FrontEndSimulator

    trace = trace_from(pairs)
    frontend = FrontEndSimulator(fetch_width=4, redirect_penalty=7,
                                 taken_bubble=1)
    result = frontend.run(trace, make_predictor("gshare", 256))
    reference = simulate(trace, make_predictor("gshare", 256))
    assert result.mispredictions == reference.mispredictions
    assert result.cycles == (result.fetch_cycles
                             + result.taken_bubble_cycles
                             + result.redirect_cycles)
    assert result.redirect_cycles == 7 * result.mispredictions
    # Fetch can never beat the width bound.
    assert result.fetch_cycles * 4 >= result.instructions


@given(streams, st.floats(min_value=0.5, max_value=0.99))
@settings(max_examples=30, deadline=None)
def test_static_95_cutoff_monotone(pairs, cutoff):
    # Raising the cutoff never selects more branches.
    trace = trace_from(pairs)
    profile = ProgramProfile.from_trace(trace)
    loose = select_static_95(profile, cutoff=cutoff, min_executions=1)
    strict = select_static_95(profile, cutoff=min(0.99, cutoff + 0.005),
                              min_executions=1)
    assert set(strict.static_addresses()) <= set(loose.static_addresses())


@given(streams)
@settings(max_examples=30, deadline=None)
def test_classification_partitions_profile(pairs):
    # Every profiled branch lands in exactly one class; execution totals
    # are preserved.
    from repro.analysis.classification import classify_branches

    trace = trace_from(pairs)
    profile = ProgramProfile.from_trace(trace)
    breakdown = classify_branches(profile)
    assert breakdown.total_executions == profile.total_executions
    assert sum(s.static_branches for s in breakdown.classes.values()) == len(profile)
