"""Tests for synthetic workload construction and execution."""

from random import Random

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.workloads.behaviors import (
    BiasedBehavior,
    CorrelatedBehavior,
    LoopBehavior,
    MarkovBiasedBehavior,
    PatternBehavior,
)
from repro.workloads.generator import (
    DriftKind,
    Routine,
    SyntheticWorkload,
    apply_drift,
    build_workload,
)
from repro.workloads.spec95 import get_spec
from repro.workloads.stats import characterize


class TestApplyDrift:
    def test_none_identity(self):
        behavior = BiasedBehavior(0.9)
        assert apply_drift(behavior, DriftKind.NONE, Random(0)) is behavior

    def test_reverse_biased(self):
        behavior = apply_drift(BiasedBehavior(0.9), DriftKind.REVERSE, Random(0))
        assert behavior.p_taken == pytest.approx(0.1)

    def test_reverse_markov_keeps_burst(self):
        original = MarkovBiasedBehavior(0.9, burst_length=7.0)
        drifted = apply_drift(original, DriftKind.REVERSE, Random(0))
        assert isinstance(drifted, MarkovBiasedBehavior)
        assert drifted.p_taken == pytest.approx(0.1)
        assert drifted.burst_length == 7.0

    def test_jitter_small(self):
        for seed in range(20):
            drifted = apply_drift(BiasedBehavior(0.8), DriftKind.JITTER, Random(seed))
            assert abs(drifted.p_taken - 0.8) <= 0.04 + 1e-9

    def test_shift_keeps_majority(self):
        for seed in range(20):
            drifted = apply_drift(BiasedBehavior(0.97), DriftKind.SHIFT, Random(seed))
            assert 0.5 <= drifted.p_taken < 0.97

    def test_reverse_loop_becomes_biased(self):
        drifted = apply_drift(LoopBehavior(10), DriftKind.REVERSE, Random(0))
        assert isinstance(drifted, BiasedBehavior)
        assert drifted.p_taken == pytest.approx(0.1)

    def test_pattern_inverts(self):
        original = PatternBehavior((True, True, False))
        drifted = apply_drift(original, DriftKind.REVERSE, Random(0))
        assert drifted.pattern == (False, False, True)

    def test_correlated_inverts(self):
        original = CorrelatedBehavior(0b11, invert=False)
        drifted = apply_drift(original, DriftKind.SHIFT, Random(0))
        assert drifted.invert is True


class TestBuildWorkload:
    def test_site_count_scaled(self):
        workload = build_workload(get_spec("compress"), "ref",
                                  root_seed=1, site_scale=0.1)
        assert len(workload.program) == int(2238 * 0.1)

    def test_program_identical_across_inputs(self):
        train = build_workload(get_spec("compress"), "train",
                               root_seed=1, site_scale=0.05)
        ref = build_workload(get_spec("compress"), "ref",
                             root_seed=1, site_scale=0.05)
        assert train.program.addresses == ref.program.addresses

    def test_rejects_unknown_input(self):
        with pytest.raises(ConfigurationError):
            build_workload(get_spec("compress"), "test", root_seed=1)

    def test_every_routine_reachable_via_paths(self):
        workload = build_workload(get_spec("compress"), "ref",
                                  root_seed=1, site_scale=0.1)
        in_paths = {r for path in workload.paths for r in path}
        assert in_paths == set(range(len(workload.routines)))

    def test_train_coverage_drops_paths(self):
        # perl's spec has train_coverage=0.70 -- the train workload must
        # have strictly fewer active paths than ref.
        train = build_workload(get_spec("perl"), "train",
                               root_seed=1, site_scale=0.05)
        ref = build_workload(get_spec("perl"), "ref",
                             root_seed=1, site_scale=0.05)
        assert len(train._active_paths) < len(ref._active_paths)


class TestExecute:
    def test_exact_length(self, gcc_workload):
        trace = gcc_workload.execute(1_234, run_seed=0)
        assert len(trace) == 1_234

    def test_deterministic(self, gcc_workload):
        a = gcc_workload.execute(2_000, run_seed=5)
        b = gcc_workload.execute(2_000, run_seed=5)
        assert a.outcomes == b.outcomes
        assert a.addresses == b.addresses
        assert a.gaps == b.gaps

    def test_run_seed_varies_trace(self, gcc_workload):
        a = gcc_workload.execute(2_000, run_seed=5)
        b = gcc_workload.execute(2_000, run_seed=6)
        assert a.outcomes != b.outcomes

    def test_trace_is_valid(self, gcc_workload):
        gcc_workload.execute(3_000, run_seed=1).validate()

    def test_cbrs_per_ki_near_target(self, gcc_workload):
        trace = gcc_workload.execute(30_000, run_seed=2)
        target = get_spec("gcc").cbrs_per_ki["ref"]
        assert abs(trace.cbrs_per_ki() - target) / target < 0.05

    def test_rejects_nonpositive_length(self, gcc_workload):
        with pytest.raises(WorkloadError):
            gcc_workload.execute(0)

    def test_addresses_match_program(self, gcc_workload):
        trace = gcc_workload.execute(1_000, run_seed=3)
        addresses = gcc_workload.program.addresses
        for site, address in zip(trace.site_indices, trace.addresses):
            assert addresses[site] == address

    def test_loop_sites_produce_runs(self):
        # ijpeg is loop-heavy; its trace must contain consecutive repeats
        # of the same site (loop iterations).
        workload = build_workload(get_spec("ijpeg"), "ref",
                                  root_seed=1, site_scale=0.05)
        trace = workload.execute(10_000, run_seed=1)
        repeats = sum(
            1
            for i in range(1, len(trace))
            if trace.site_indices[i] == trace.site_indices[i - 1]
        )
        assert repeats > 50

    def test_drift_changes_ref_behavior(self, m88ksim_traces):
        train, ref = m88ksim_traces
        # m88ksim's spec reverses some hot branches between inputs: there
        # must exist common branches whose majority direction differs.
        from repro.profiling.profile import ProgramProfile

        train_profile = ProgramProfile.from_trace(train)
        ref_profile = ProgramProfile.from_trace(ref)
        flipped = 0
        for address, ref_branch in ref_profile.items():
            train_branch = train_profile.get(address)
            if train_branch is None:
                continue
            if (train_branch.executions >= 5 and ref_branch.executions >= 5
                    and train_branch.majority_taken != ref_branch.majority_taken):
                flipped += 1
        assert flipped > 0


class TestRoutine:
    def test_site_indices_includes_loop_body(self):
        routine = Routine(items=((Routine.PLAIN, 1), (Routine.LOOP, 2, (3, 4))))
        assert routine.site_indices() == [1, 2, 3, 4]


class TestSyntheticWorkloadValidation:
    def test_rejects_mismatched_plans(self, gcc_workload):
        with pytest.raises(ConfigurationError):
            SyntheticWorkload(
                name="x",
                input_name="ref",
                program=gcc_workload.program,
                site_plans=gcc_workload.site_plans[:-1],
                routines=gcc_workload.routines,
                paths=gcc_workload.paths,
                path_weights=[1.0] * len(gcc_workload.paths),
                mean_instructions_per_branch=8.0,
                root_seed=0,
            )

    def test_rejects_no_active_paths(self, gcc_workload):
        with pytest.raises(ConfigurationError):
            SyntheticWorkload(
                name="x",
                input_name="ref",
                program=gcc_workload.program,
                site_plans=gcc_workload.site_plans,
                routines=gcc_workload.routines,
                paths=gcc_workload.paths,
                path_weights=[0.0] * len(gcc_workload.paths),
                mean_instructions_per_branch=8.0,
                root_seed=0,
            )

    def test_rejects_bad_gap_mean(self, gcc_workload):
        with pytest.raises(ConfigurationError):
            SyntheticWorkload(
                name="x",
                input_name="ref",
                program=gcc_workload.program,
                site_plans=gcc_workload.site_plans,
                routines=gcc_workload.routines,
                paths=gcc_workload.paths,
                path_weights=[1.0] * len(gcc_workload.paths),
                mean_instructions_per_branch=0.5,
                root_seed=0,
            )
