"""Tests for the Atom instrumentation and Spike optimizer models."""

import pytest

from repro.errors import SelectionError
from repro.predictors.bimodal import BimodalPredictor
from repro.profiling.profile import ProgramProfile
from repro.tools.atom import AtomTool, PredictorAnalysis, ProfileAnalysis
from repro.tools.spike import SpikeOptimizer
from repro.workloads.trace import BranchTrace


def make_trace(records, program="demo", input_name="ref"):
    trace = BranchTrace(program_name=program, input_name=input_name)
    for address, taken in records:
        trace.site_indices.append(0)
        trace.addresses.append(address)
        trace.outcomes.append(taken)
        trace.gaps.append(1)
    return trace


class TestAtomTool:
    def test_profile_analysis_matches_direct_profile(self, gcc_trace):
        atom = AtomTool()
        analysis = atom.register(ProfileAnalysis())
        atom.run(gcc_trace)
        direct = ProgramProfile.from_trace(gcc_trace)
        assert len(analysis.profile) == len(direct)
        for address, branch in direct.items():
            observed = analysis.profile[address]
            assert observed.executions == branch.executions
            assert observed.taken == branch.taken

    def test_predictor_analysis_matches_simulate(self, gcc_trace):
        from repro.core.simulator import simulate

        atom = AtomTool()
        analysis = atom.register(PredictorAnalysis(BimodalPredictor(1024)))
        atom.run(gcc_trace)
        direct = simulate(gcc_trace, BimodalPredictor(1024))
        assert analysis.mispredictions == direct.mispredictions

    def test_multiple_analyses_one_pass(self):
        trace = make_trace([(0x1000, True)] * 10 + [(0x1004, False)] * 10)
        atom = AtomTool()
        profile = atom.register(ProfileAnalysis())
        predictor = atom.register(PredictorAnalysis(BimodalPredictor(64)))
        atom.run(trace)
        assert profile.profile[0x1000].executions == 10
        assert predictor.accuracy.get(0x1004).executions == 10

    def test_accuracy_profile_names_predictor(self):
        trace = make_trace([(0x1000, True)])
        atom = AtomTool()
        analysis = atom.register(PredictorAnalysis(BimodalPredictor(64)))
        atom.run(trace)
        assert analysis.accuracy.predictor_name == "bimodal"


class TestSpikeOptimizer:
    def _trained_spike(self):
        spike = SpikeOptimizer()
        spike.instrument_run(make_trace(
            [(0x1000, True)] * 40 + [(0x1004, True)] * 40,
            input_name="train",
        ))
        # 0x1004 reverses in ref.
        spike.instrument_run(make_trace(
            [(0x1000, True)] * 40 + [(0x1004, False)] * 40,
            input_name="ref",
        ))
        return spike

    def test_instrument_run_records(self):
        spike = self._trained_spike()
        assert spike.database.inputs("demo") == ["ref", "train"]

    def test_select_hints_merged(self):
        spike = self._trained_spike()
        hints = spike.select_hints("demo", scheme="static_95")
        # 0x1000 stays 100% taken across both -> selected; 0x1004 merges
        # to 50% -> not selected.
        assert hints.static_addresses() == [0x1000]

    def test_stable_only_filters_unstable(self):
        spike = self._trained_spike()
        hints = spike.select_hints("demo", scheme="static_95",
                                   stable_only=True)
        assert 0x1004 not in hints

    def test_optimize_stamps_program(self):
        from repro.arch.program import Program

        spike = SpikeOptimizer()
        program = Program.synthesize("demo", 4, seed=1)
        hot = program.sites[0].address
        spike.instrument_run(make_trace([(hot, True)] * 40,
                                        input_name="train"))
        hints = spike.optimize(program, scheme="static_95")
        assert program.sites[0].hints.use_static
        assert hints.static_count() == 1

    def test_static_acc_requires_extras(self):
        spike = self._trained_spike()
        with pytest.raises(SelectionError):
            spike.select_hints("demo", scheme="static_acc")

    def test_static_acc_with_extras(self):
        spike = self._trained_spike()
        trace = make_trace([(0x1000, True)] * 40)
        hints = spike.select_hints(
            "demo", scheme="static_acc",
            accuracy_trace=trace,
            predictor_factory=lambda: BimodalPredictor(64),
        )
        assert isinstance(hints.static_count(), int)

    def test_unknown_scheme(self):
        spike = self._trained_spike()
        with pytest.raises(SelectionError):
            spike.select_hints("demo", scheme="static_magic")
