"""Tests for the abstract-interpretation width checker (WID001-WID004).

Three layers of coverage:

* property-style tests that the interval domain in
  ``repro.lint.intervals`` *over-approximates* concrete integer
  arithmetic — randomized expression trees are evaluated both
  abstractly and concretely, and the concrete result must always fall
  inside the abstract interval;
* targeted unit tests for the symbolic power-of-two bounds, the
  interval algebra corners the WID rules lean on, and the baseline's
  scope-aware update/prune semantics;
* acceptance fixtures: deliberately broken predictors (unmasked gshare
  index, non-saturating counter, unbounded history shift-in, provable
  power-of-two modulus) must each produce the expected WID finding,
  and a faithfully saturating/masked predictor must produce none.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import repro
from repro.lint import Finding, Severity, run_lint, select_rules
from repro.lint.baseline import Baseline
from repro.lint.intervals import (
    BOOL,
    TOP,
    ZERO,
    Bound,
    Interval,
    Pow2Sym,
    binop,
    bound_le,
    is_exact_pow2,
    iv_max,
    iv_min,
    unop,
)
from repro.lint.report import render_explain
from repro.lint.rules import all_rules
from repro.utils.rng import derive_rng

SRC_REPRO = Path(repro.__file__).parent

WID_RULES = select_rules(["WID"])


def lint_tree(tmp_path: Path, modules: dict[str, str]) -> list[Finding]:
    """Write a fixture tree and lint it with the WID rules only."""
    for rel, source in modules.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([tmp_path], WID_RULES)


def rules_hit(findings: list[Finding]) -> set[str]:
    return {finding.rule for finding in findings}


ANCHOR = {"predictors/base.py": """
    class BranchPredictor:
        pass
"""}


# ---------------------------------------------------------------------------
# Property: abstract evaluation over-approximates concrete evaluation.


_CONCRETE = {
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "%": lambda a, b: a % b,
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}

_OPS = tuple(_CONCRETE)


def _leaf(rng) -> tuple[Interval, int]:
    """A random interval together with a concrete member of it."""
    lo = rng.randint(-40, 40)
    hi = lo + rng.randint(0, 80)
    value = rng.randint(lo, hi)
    shape = rng.random()
    if shape < 0.10:
        return Interval(None, Bound(hi)), value
    if shape < 0.20:
        return Interval(Bound(lo), None), value
    if shape < 0.25:
        return TOP, value
    return Interval.range(lo, hi), value


def _tree(rng, depth: int) -> tuple[Interval, int]:
    """A random expression tree evaluated abstractly and concretely.

    Shift amounts and moduli are kept as small singleton constants so
    the concrete evaluation never raises and never explodes; every
    other operand position recurses freely.
    """
    if depth == 0 or rng.random() < 0.3:
        return _leaf(rng)
    op = _OPS[rng.randrange(len(_OPS))]
    left_iv, left_value = _tree(rng, depth - 1)
    if op in ("<<", ">>"):
        amount = rng.randint(0, 8)
        right_iv, right_value = Interval.const(amount), amount
    elif op == "%":
        modulus = rng.randint(1, 64)
        right_iv, right_value = Interval.const(modulus), modulus
    else:
        right_iv, right_value = _tree(rng, depth - 1)
    return (binop(op, left_iv, right_iv),
            _CONCRETE[op](left_value, right_value))


class TestOverApproximation:
    def test_binop_contains_concrete_result_on_random_trees(self):
        rng = derive_rng(0, "lint", "widths", "binop-soundness")
        for trial in range(600):
            interval, value = _tree(rng, depth=4)
            assert interval.contains(value), (
                f"trial {trial}: concrete {value} escapes abstract "
                f"{interval.render()}"
            )

    def test_unop_contains_concrete_result(self):
        rng = derive_rng(0, "lint", "widths", "unop-soundness")
        concrete = {"+": lambda a: +a, "-": lambda a: -a,
                    "~": lambda a: ~a, "not": lambda a: int(not a)}
        for _ in range(200):
            interval, value = _leaf(rng)
            op = ("+", "-", "~", "not")[rng.randrange(4)]
            assert unop(op, interval).contains(concrete[op](value))

    def test_join_contains_both_sides(self):
        rng = derive_rng(0, "lint", "widths", "join-soundness")
        for _ in range(200):
            a_iv, a_value = _leaf(rng)
            b_iv, b_value = _leaf(rng)
            joined = a_iv.join(b_iv)
            assert joined.contains(a_value)
            assert joined.contains(b_value)

    def test_iv_min_max_contain_concrete_extrema(self):
        rng = derive_rng(0, "lint", "widths", "minmax-soundness")
        for _ in range(200):
            a_iv, a_value = _leaf(rng)
            b_iv, b_value = _leaf(rng)
            assert iv_min(a_iv, b_iv).contains(min(a_value, b_value))
            assert iv_max(a_iv, b_iv).contains(max(a_value, b_value))

    def test_bound_le_implies_concrete_ordering(self):
        """Whenever ``bound_le`` claims a <= b, sampling agrees."""
        rng = derive_rng(0, "lint", "widths", "bound-le-soundness")
        for trial in range(300):
            min_exp = rng.randint(0, 5)
            sym = Pow2Sym(("test-le", trial), "size", min_exp=min_exp)

            def bound() -> Bound:
                off = rng.randint(-10, 10)
                if rng.random() < 0.5:
                    return Bound(off)
                return Bound(off, sym, rng.randint(-min_exp, 3))

            a, b = bound(), bound()
            if not bound_le(a, b):
                continue
            for _ in range(8):
                exponents = {sym.key: min_exp + rng.randint(0, 6)}
                assert a.value(exponents) <= b.value(exponents), (
                    f"trial {trial}: bound_le({a.render()}, {b.render()}) "
                    f"violated at {exponents}"
                )


# ---------------------------------------------------------------------------
# Symbolic power-of-two bounds.


class TestSymbolicBounds:
    def test_masked_index_interval_tracks_the_table_size(self):
        rng = derive_rng(0, "lint", "widths", "masked-index")
        sym = Pow2Sym(("test-size",), "entries", min_exp=0)
        index = Interval(ZERO, Bound(-1, sym, 0))  # [0, entries-1]
        for _ in range(50):
            exponent = rng.randint(0, 12)
            exponents = {sym.key: exponent}
            size = 1 << exponent
            assert index.contains(rng.randint(0, size - 1), exponents)
            assert not index.contains(size, exponents)
            assert not index.contains(-1, exponents)

    def test_require_min_exp_only_grows(self):
        sym = Pow2Sym(("test-grow",), "n", min_exp=1)
        sym.require_min_exp(3)
        assert sym.min_exp == 3
        sym.require_min_exp(2)
        assert sym.min_exp == 3

    def test_is_exact_pow2_constants(self):
        assert is_exact_pow2(Interval.const(2))
        assert is_exact_pow2(Interval.const(64))
        assert not is_exact_pow2(Interval.const(3))
        # A modulus of 1 is degenerate: rewriting ``x % 1`` as ``x & 0``
        # would be "correct" but the finding would be noise, so the
        # constant branch starts at 2.
        assert not is_exact_pow2(Interval.const(1))
        assert not is_exact_pow2(Interval.range(2, 4))
        assert not is_exact_pow2(TOP)

    def test_is_exact_pow2_symbolic(self):
        sym = Pow2Sym(("test-pow2",), "size", min_exp=0)
        exact = Interval(Bound(0, sym, 0), Bound(0, sym, 0))
        assert is_exact_pow2(exact)
        # Effective exponent could be -1: 2**k / 2 is fractional for
        # k == 0, so the proof must be refused.
        halved = Interval(Bound(0, sym, -1), Bound(0, sym, -1))
        assert not is_exact_pow2(halved)
        grown = Pow2Sym(("test-pow2-grown",), "size", min_exp=1)
        halved_grown = Interval(Bound(0, grown, -1), Bound(0, grown, -1))
        assert is_exact_pow2(halved_grown)
        shifted = Interval(Bound(1, sym, 0), Bound(1, sym, 0))
        assert not is_exact_pow2(shifted)  # 2**k + 1 is not a power of two

    def test_mask_rescues_an_unbounded_operand(self):
        masked = binop("&", TOP, Interval.range(0, 255))
        assert masked.contains(0) and masked.contains(255)
        assert not masked.contains(256)
        assert not masked.contains(-1)

    def test_modulo_by_positive_bound_is_bounded(self):
        reduced = binop("%", TOP, Interval.const(8))
        assert reduced.contains(7)
        assert not reduced.contains(8)
        assert binop("%", TOP, Interval.range(-4, 8)) == TOP

    def test_bool_and_shift_in_stay_in_declared_width(self):
        sym = Pow2Sym(("test-hist",), "2**length", min_exp=0)
        mask = Interval(ZERO, Bound(-1, sym, 0))
        value = Interval(ZERO, Bound(-1, sym, 0))
        shifted = binop("|", binop("<<", value, Interval.const(1)), BOOL)
        assert binop("&", shifted, mask).hi == Bound(-1, sym, 0)


# ---------------------------------------------------------------------------
# Acceptance fixtures: each deliberate defect produces its WID finding.


class TestBrokenPredictorFixtures:
    def test_unmasked_gshare_index_is_wid001(self, tmp_path):
        findings = lint_tree(tmp_path, {**ANCHOR, "predictors/broken.py": """
            from repro.predictors.base import BranchPredictor
            from repro.predictors.counters import CounterTable
            from repro.predictors.history import GlobalHistory


            class UnmaskedGshare(BranchPredictor):
                _WIDTHS = {"history": "history_length",
                           "table": "counter_bits"}

                def __init__(self, entries, history_length, counter_bits=2):
                    self.table = CounterTable(entries, bits=counter_bits)
                    self.history = GlobalHistory(history_length)

                def predict(self, address):
                    index = (address >> 2) ^ self.history.value
                    return self.table.predict(index)
        """})
        assert rules_hit(findings) == {"WID001"}
        (finding,) = findings
        assert "index" in finding.message
        assert finding.severity is Severity.ERROR

    def test_non_saturating_counter_update_is_wid002(self, tmp_path):
        findings = lint_tree(tmp_path, {**ANCHOR, "predictors/broken.py": """
            from repro.predictors.base import BranchPredictor
            from repro.predictors.counters import CounterTable
            from repro.utils.bits import is_power_of_two


            class LazyCounter(BranchPredictor):
                _WIDTHS = {"table": "counter_bits"}

                def __init__(self, entries, counter_bits=2):
                    if not is_power_of_two(entries):
                        raise ValueError("entries must be a power of two")
                    self.table = CounterTable(entries, bits=counter_bits)
                    self._index_mask = entries - 1

                def update(self, address, taken):
                    index = address & self._index_mask
                    value = self.table.values[index]
                    self.table.values[index] = (
                        value + 1 if taken else value - 1
                    )
        """})
        assert rules_hit(findings) == {"WID002"}

    def test_unbounded_history_shift_in_is_wid003(self, tmp_path):
        findings = lint_tree(tmp_path, {**ANCHOR, "predictors/broken.py": """
            from repro.predictors.base import BranchPredictor
            from repro.predictors.history import GlobalHistory


            class LeakyHistory(BranchPredictor):
                _WIDTHS = {"history": "history_length"}

                def __init__(self, history_length):
                    self.history = GlobalHistory(history_length)

                def update(self, address, taken):
                    h = self.history
                    h.value = (h.value << 1) | taken
        """})
        assert rules_hit(findings) == {"WID003"}

    def test_all_three_defects_fire_together(self, tmp_path):
        """The original smoke fixture: one class, three distinct defects."""
        findings = lint_tree(tmp_path, {**ANCHOR, "predictors/broken.py": """
            from repro.predictors.base import BranchPredictor
            from repro.predictors.counters import CounterTable
            from repro.predictors.history import GlobalHistory


            class BrokenGshare(BranchPredictor):
                _WIDTHS = {"history": "history_length",
                           "table": "counter_bits"}

                def __init__(self, entries, history_length, counter_bits=2):
                    self.table = CounterTable(entries, bits=counter_bits)
                    self.history = GlobalHistory(history_length)
                    self._last_index = 0

                def predict(self, address):
                    index = (address >> 2) ^ self.history.value
                    self._last_index = index
                    return self.table.predict(index)

                def update(self, address, taken):
                    value = self.table.values[self._last_index]
                    self.table.values[self._last_index] = (
                        value + 1 if taken else value - 1
                    )
                    h = self.history
                    h.value = (h.value << 1) | taken
        """})
        by_rule = {rule: sum(1 for f in findings if f.rule == rule)
                   for rule in rules_hit(findings)}
        # predict's subscript plus the two update subscripts all reach
        # the table through the never-masked index.
        assert by_rule == {"WID001": 3, "WID002": 1, "WID003": 1}

    def test_saturating_masked_predictor_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {**ANCHOR, "predictors/good.py": """
            from repro.predictors.base import BranchPredictor
            from repro.predictors.counters import CounterTable
            from repro.predictors.history import GlobalHistory
            from repro.utils.bits import is_power_of_two


            class CleanGshare(BranchPredictor):
                _WIDTHS = {"history": "history_length",
                           "table": "counter_bits"}

                def __init__(self, entries, history_length, counter_bits=2):
                    if not is_power_of_two(entries):
                        raise ValueError("entries must be a power of two")
                    self.table = CounterTable(entries, bits=counter_bits)
                    self.history = GlobalHistory(history_length)
                    self._index_mask = entries - 1
                    self._max_value = self.table.max_value
                    self._last_index = 0

                def predict(self, address):
                    index = ((address >> 2) ^ self.history.value) \\
                        & self._index_mask
                    self._last_index = index
                    return self.table.predict(index)

                def update(self, address, taken):
                    index = self._last_index
                    values = self.table.values
                    value = values[index]
                    if taken:
                        if value < self._max_value:
                            values[index] = value + 1
                    elif value > 0:
                        values[index] = value - 1
                    history = self.history
                    history.value = (
                        (history.value << 1) | taken
                    ) & history.mask
        """})
        assert findings == []

    def test_undeclared_table_and_stale_entry_are_reported(self, tmp_path):
        findings = lint_tree(tmp_path, {**ANCHOR, "predictors/decl.py": """
            from repro.predictors.base import BranchPredictor
            from repro.predictors.counters import CounterTable


            class Undeclared(BranchPredictor):
                _WIDTHS = {"ghost": "counter_bits"}

                def __init__(self, entries, counter_bits=2):
                    self.table = CounterTable(entries, bits=counter_bits)
        """})
        messages = sorted(f.message for f in findings)
        assert any("does not declare" in m for m in messages)
        assert any("stale" in m for m in messages)
        assert rules_hit(findings) == {"WID002"}


class TestWid004:
    def test_provable_power_of_two_modulus_is_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"sizes.py": """
            def slot_for(entries, value):
                size = 1 << entries
                return value % size
        """})
        assert rules_hit(findings) == {"WID004"}

    def test_bit_mask_derived_modulus_is_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"sizes.py": """
            from repro.utils.bits import bit_mask


            def slot_for(width, value):
                size = bit_mask(width) + 1
                return value % size
        """})
        assert rules_hit(findings) == {"WID004"}

    def test_literal_modulus_is_bit001_territory_not_wid004(self, tmp_path):
        findings = lint_tree(tmp_path, {"sizes.py": """
            def slot_for(value):
                return value % 8  # repro: allow[BIT001]
        """})
        assert findings == []

    def test_non_power_of_two_modulus_is_silent(self, tmp_path):
        findings = lint_tree(tmp_path, {"sizes.py": """
            def slot_for(entries, value):
                denominator = (1 << entries) + 1
                return value % denominator
        """})
        assert findings == []


# ---------------------------------------------------------------------------
# numpy policy: an integer dtype is a width declaration.


class TestNumpyPolicy:
    def test_masked_ndarray_adoption_is_clean(self, tmp_path):
        """The ``import_array`` idiom: mask, then adopt via tolist()."""
        findings = lint_tree(tmp_path, {**ANCHOR, "predictors/arrays.py": """
            import numpy


            class ArrayTable:
                _WIDTHS = {"values": "bits"}

                def __init__(self, entries, bits=2):
                    self.bits = bits
                    self.max_value = (1 << bits) - 1
                    self.values = [0] * entries

                def import_array(self, array):
                    masked = numpy.asarray(array) & self.max_value
                    self.values = masked.tolist()
        """})
        assert findings == []

    def test_unmasked_ndarray_adoption_is_flagged(self, tmp_path):
        """Adopting a raw ndarray skips the saturation proof entirely."""
        findings = lint_tree(tmp_path, {**ANCHOR, "predictors/arrays.py": """
            import numpy


            class LeakyArrayTable:
                _WIDTHS = {"values": "bits"}

                def __init__(self, entries, bits=2):
                    self.bits = bits
                    self.max_value = (1 << bits) - 1
                    self.values = [0] * entries

                def import_array(self, array):
                    self.values = numpy.asarray(array).tolist()
        """})
        assert rules_hit(findings) == {"WID002"}

    def test_integer_dtype_is_a_width_declaration(self, tmp_path):
        """A uint8 cast provably bounds every element in [0, 255]."""
        findings = lint_tree(tmp_path, {**ANCHOR, "predictors/arrays.py": """
            import numpy


            class ByteTable:
                _WIDTHS = {"values": "8"}

                def __init__(self, entries):
                    self.values = [0] * entries

                def import_array(self, array):
                    bytes_ = numpy.asarray(array, dtype=numpy.uint8)
                    self.values = bytes_.tolist()
        """})
        assert findings == []

    def test_astype_narrows_like_a_mask(self, tmp_path):
        findings = lint_tree(tmp_path, {**ANCHOR, "predictors/arrays.py": """
            import numpy


            class CastTable:
                _WIDTHS = {"values": "8"}

                def __init__(self, entries):
                    self.values = [0] * entries

                def import_array(self, array):
                    wide = numpy.asarray(array, dtype=numpy.int64)
                    self.values = wide.astype(numpy.uint8).tolist()
        """})
        assert findings == []

    def test_wide_dtype_does_not_satisfy_narrow_declaration(self, tmp_path):
        """int64 is a width declaration too -- just not a narrow one."""
        findings = lint_tree(tmp_path, {**ANCHOR, "predictors/arrays.py": """
            import numpy


            class WideTable:
                _WIDTHS = {"values": "8"}

                def __init__(self, entries):
                    self.values = [0] * entries

                def import_array(self, array):
                    wide = numpy.asarray(array, dtype=numpy.int64)
                    self.values = wide.tolist()
        """})
        assert rules_hit(findings) == {"WID002"}

    def test_explain_documents_the_dtype_policy(self):
        text = render_explain(select_rules(["WID002"]))
        assert "dtype" in text
        assert "width declaration" in text


# ---------------------------------------------------------------------------
# Self-hosting and explainability.


class TestSelfHostAndExplain:
    def test_src_repro_is_wid_clean(self):
        assert run_lint([SRC_REPRO], WID_RULES) == []

    def test_every_registered_rule_is_explainable(self):
        rules = all_rules()
        assert rules, "rule registry is empty"
        text = render_explain(rules)
        for rule in rules:
            assert rule.rule_id in text
            assert (type(rule).__doc__ or "").strip(), (
                f"{rule.rule_id} has no docstring to explain"
            )
            assert getattr(rule, "example_bad", ""), (
                f"{rule.rule_id} has no bad example"
            )
            assert getattr(rule, "example_good", ""), (
                f"{rule.rule_id} has no good example"
            )
        assert "bad:" in text
        assert "good:" in text


# ---------------------------------------------------------------------------
# Baseline lifecycle: scope-aware update and dead-entry pruning.


def _finding(path: str, rule: str = "WID001", message: str = "m") -> Finding:
    return Finding(path=path, line=1, col=0, rule=rule,
                   severity=Severity.ERROR, message=message)


class TestBaselineLifecycle:
    def test_updated_prunes_fingerprints_that_stopped_firing(self):
        stale = Baseline.from_findings(
            [_finding("a.py"), _finding("a.py", message="gone")]
        )
        refreshed = stale.updated([_finding("a.py")], ["a.py"])
        assert refreshed.counts == {("a.py", "WID001", "m"): 1}

    def test_updated_keeps_out_of_scope_debt(self):
        stale = Baseline.from_findings([_finding("a.py"), _finding("b.py")])
        refreshed = stale.updated([], ["a.py"])
        assert refreshed.counts == {("b.py", "WID001", "m"): 1}

    def test_dead_entries_reports_the_excess_count(self):
        baseline = Baseline({("a.py", "WID001", "m"): 3})
        dead = baseline.dead_entries([_finding("a.py")], ["a.py"])
        assert dead == [("a.py", "WID001", "m", 2)]

    def test_dead_entries_ignores_paths_outside_the_linted_scope(self):
        baseline = Baseline({("b.py", "WID001", "m"): 1})
        assert baseline.dead_entries([], ["a.py"]) == []

    def test_live_baseline_has_no_dead_entries(self):
        findings = [_finding("a.py"), _finding("a.py", message="other")]
        baseline = Baseline.from_findings(findings)
        assert baseline.dead_entries(findings, ["a.py"]) == []
