"""Tests for the front-end pipeline model."""

import pytest

from repro.core.combined import CombinedPredictor
from repro.core.simulator import run_selection_phase, simulate
from repro.errors import ConfigurationError
from repro.pipeline.frontend import FrontEndSimulator
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GsharePredictor
from repro.workloads.trace import BranchTrace


def make_trace(records, program="demo"):
    trace = BranchTrace(program_name=program, input_name="ref")
    for address, taken, gap in records:
        trace.site_indices.append(0)
        trace.addresses.append(address)
        trace.outcomes.append(taken)
        trace.gaps.append(gap)
    return trace


class TestCycleAccounting:
    def test_fetch_cycles_ceiling(self):
        # gaps 4 and 5 at width 4 -> 1 + 2 fetch cycles.
        trace = make_trace([(0x1000, False, 4), (0x1004, False, 5)])
        sim = FrontEndSimulator(fetch_width=4, redirect_penalty=0,
                                taken_bubble=0)
        result = sim.run(trace, BimodalPredictor(16))
        assert result.fetch_cycles == 3

    def test_redirect_penalty_charged_per_misprediction(self):
        # All-taken branch from weakly-not-taken counters: exactly one
        # misprediction for bimodal.
        trace = make_trace([(0x1000, True, 1)] * 10)
        sim = FrontEndSimulator(fetch_width=1, redirect_penalty=9,
                                taken_bubble=0)
        result = sim.run(trace, BimodalPredictor(16))
        assert result.mispredictions == 1
        assert result.redirect_cycles == 9

    def test_taken_bubble_only_on_correct_taken(self):
        trace = make_trace([(0x1000, True, 1)] * 10)
        sim = FrontEndSimulator(fetch_width=1, redirect_penalty=0,
                                taken_bubble=2)
        result = sim.run(trace, BimodalPredictor(16))
        # 1 misprediction, 9 correct-taken -> 18 bubble cycles.
        assert result.taken_bubble_cycles == 18

    def test_totals_and_ipc(self):
        trace = make_trace([(0x1000, True, 4)] * 10)
        sim = FrontEndSimulator(fetch_width=4, redirect_penalty=5,
                                taken_bubble=1)
        result = sim.run(trace, BimodalPredictor(16))
        assert result.instructions == 40
        assert result.cycles == (result.fetch_cycles
                                 + result.taken_bubble_cycles
                                 + result.redirect_cycles)
        assert result.ipc == pytest.approx(40 / result.cycles)
        assert result.cpi == pytest.approx(result.cycles / 40)

    def test_misp_per_ki_matches_simulate(self, gcc_trace):
        sim = FrontEndSimulator()
        pipeline = sim.run(gcc_trace, GsharePredictor(1024))
        reference = simulate(gcc_trace, GsharePredictor(1024))
        assert pipeline.mispredictions == reference.mispredictions
        assert pipeline.misp_per_ki == pytest.approx(reference.misp_per_ki)

    def test_empty_trace(self):
        result = FrontEndSimulator().run(
            BranchTrace(program_name="p", input_name="ref"),
            BimodalPredictor(16),
        )
        assert result.cycles == 0
        assert result.ipc == 0.0


class TestConfiguration:
    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            FrontEndSimulator(fetch_width=0)

    def test_rejects_negative_penalty(self):
        with pytest.raises(ConfigurationError):
            FrontEndSimulator(redirect_penalty=-1)

    def test_rejects_negative_bubble(self):
        with pytest.raises(ConfigurationError):
            FrontEndSimulator(taken_bubble=-1)


class TestSpeedup:
    def test_better_predictor_higher_ipc(self, gcc_trace):
        sim = FrontEndSimulator()
        tiny = sim.run(gcc_trace, GsharePredictor(64))
        large = sim.run(gcc_trace, GsharePredictor(8192))
        assert large.ipc > tiny.ipc

    def test_static_hints_help_ipc(self, gcc_trace):
        sim = FrontEndSimulator()
        factory = lambda: GsharePredictor(1024)
        hints = run_selection_phase(gcc_trace, "static_acc",
                                    predictor_factory=factory)
        speedup = sim.speedup(
            gcc_trace, factory(), CombinedPredictor(factory(), hints)
        )
        assert speedup > 1.0

    def test_deeper_pipeline_amplifies_static_benefit(self, gcc_trace):
        # The paper's motivation: deeper pipelines make mispredictions
        # more costly, so the same MISP/KI improvement buys more IPC.
        factory = lambda: GsharePredictor(1024)
        hints = run_selection_phase(gcc_trace, "static_acc",
                                    predictor_factory=factory)
        shallow = FrontEndSimulator(redirect_penalty=3).speedup(
            gcc_trace, factory(), CombinedPredictor(factory(), hints)
        )
        deep = FrontEndSimulator(redirect_penalty=20).speedup(
            gcc_trace, factory(), CombinedPredictor(factory(), hints)
        )
        assert deep > shallow

    def test_redirect_overhead_fraction(self, gcc_trace):
        result = FrontEndSimulator().run(gcc_trace, GsharePredictor(1024))
        assert 0.0 < result.redirect_overhead < 1.0
