"""Tests for the cross-module analysis layer and the rules built on it.

Covers the symbol-table/call-graph builder (``repro.lint.graph``), the
reaching-definitions walk (``repro.lint.dataflow``), and the four
interprocedural rules: PAR001 (worker purity), PAR002 (pickle safety),
DET003 (seed provenance), and EXP002 (cells/synthesize pairing plus
scheme literals).  Each rule gets at least one seeded violation that
must be caught and one clean idiom that must not be.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.lint import Finding, run_lint
from repro.lint.dataflow import ReachingDefinitions, provenance_atoms
from repro.lint.engine import FileContext, ProjectContext, collect_files
from repro.lint.graph import CallGraph, ModuleTable, module_name_for


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def project_from(tmp_path: Path, files: dict[str, str]) -> ProjectContext:
    write_tree(tmp_path, files)
    contexts = []
    for path in collect_files([tmp_path]):
        source = path.read_text(encoding="utf-8")
        contexts.append(FileContext(path, path.as_posix(), source,
                                    ast.parse(source)))
    return ProjectContext(contexts)


def rules_hit(findings: list[Finding]) -> set[str]:
    return {finding.rule for finding in findings}


def messages_for(findings: list[Finding], rule: str) -> list[str]:
    return [f.message for f in findings if f.rule == rule]


# ---------------------------------------------------------------------------
# The call graph


class TestCallGraph:
    FIXTURE = {
        "pkg/__init__.py": "",
        "pkg/alpha.py": """
            from pkg.beta import helper

            def entry():
                return helper() + local()

            def local():
                return 1
        """,
        "pkg/beta.py": """
            def helper():
                return worker()

            def worker():
                return 2

            def unreachable():
                return 3
        """,
    }

    def test_module_naming_walks_init_files(self, tmp_path):
        project = project_from(tmp_path, self.FIXTURE)
        ctx = project.find("pkg/alpha.py")
        assert module_name_for(ctx) == "pkg.alpha"

    def test_edges_cross_modules_through_from_imports(self, tmp_path):
        graph = CallGraph.build(project_from(tmp_path, self.FIXTURE))
        assert "pkg.beta.helper" in graph.callees("pkg.alpha.entry")
        assert "pkg.alpha.local" in graph.callees("pkg.alpha.entry")
        assert "pkg.beta.worker" in graph.callees("pkg.beta.helper")

    def test_reachability_is_transitive_and_bounded(self, tmp_path):
        graph = CallGraph.build(project_from(tmp_path, self.FIXTURE))
        reachable = {fn.qualname
                     for fn in graph.reachable_from(["pkg.alpha.entry"])}
        assert "pkg.beta.worker" in reachable
        assert "pkg.beta.unreachable" not in reachable

    def test_method_edges_through_self_and_annotations(self, tmp_path):
        graph = CallGraph.build(project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/ctx.py": """
                class Context:
                    def run(self):
                        return self.step()

                    def step(self):
                        return 1
            """,
            "pkg/use.py": """
                from pkg.ctx import Context

                def drive(ctx: Context):
                    return ctx.run()
            """,
        }))
        assert "pkg.ctx.Context.step" in graph.callees("pkg.ctx.Context.run")
        reachable = {fn.qualname
                     for fn in graph.reachable_from(["pkg.use.drive"])}
        assert "pkg.ctx.Context.step" in reachable

    def test_function_reference_passed_as_argument_counts_as_call(
        self, tmp_path
    ):
        # submit(fn, ...) never syntactically calls fn, but the pool
        # will; treating the reference as an edge keeps PAR001 sound.
        graph = CallGraph.build(project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/jobs.py": """
                def task():
                    return 1

                def schedule(pool):
                    return pool.submit(task)
            """,
        }))
        assert "pkg.jobs.task" in graph.callees("pkg.jobs.schedule")

    def test_path_suffix_resolution_for_fixture_trees(self, tmp_path):
        # ``from repro.runner.cells import Cell`` must resolve against a
        # fixture laid out as tmp/runner/cells.py: real source is linted
        # from many roots, so exact dotted matching alone is not enough.
        table = ModuleTable.build(project_from(tmp_path, {
            "runner/cells.py": "def execute_cell(ctx, cell):\n    return 1\n",
            "runner/engine.py": """
                from repro.runner.cells import execute_cell

                def run(cell):
                    return execute_cell(None, cell)
            """,
        }))
        importer = None
        for info in table.modules.values():
            if info.ctx.matches("runner/engine.py"):
                importer = info
        resolved = table.resolve_module("repro.runner.cells", importer)
        assert resolved is not None
        assert resolved.ctx.matches("runner/cells.py")


# ---------------------------------------------------------------------------
# Reaching definitions and provenance


class TestDataflow:
    def fn(self, source: str) -> ast.FunctionDef:
        tree = ast.parse(textwrap.dedent(source))
        return next(n for n in ast.walk(tree)
                    if isinstance(n, ast.FunctionDef))

    def test_parameters_and_assignments_are_definitions(self):
        fn = self.fn("""
            def f(a, b=2):
                c = a + b
                c = c * 2
                return c
        """)
        defs = ReachingDefinitions(fn)
        assert defs.is_local("a") and defs.is_local("c")
        assert not defs.is_local("missing")
        assert [d.line for d in defs.definitions("c", before_line=4)] == [3]

    def test_nested_function_bindings_stay_out_of_scope(self):
        fn = self.fn("""
            def f():
                def g():
                    inner = 1
                    return inner
                return g()
        """)
        assert not ReachingDefinitions(fn).is_local("inner")

    def test_provenance_slices_through_locals_and_calls(self):
        fn = self.fn("""
            def f(ctx):
                import os
                raw = os.environ["SEED"]
                seed = int(raw)
                return seed
        """)
        defs = ReachingDefinitions(fn)
        ret = next(n for n in ast.walk(fn) if isinstance(n, ast.Return))
        atoms = list(provenance_atoms(ret.value, defs, use_line=ret.lineno))
        texts = {atom.text for atom in atoms}
        # The env read survives the int(...) wrapper and the local hop.
        assert any("os.environ" in text for text in texts)

    def test_literal_and_parameter_atoms(self):
        fn = self.fn("""
            def f(ctx):
                seed = ctx.seed if ctx.seed else 7
                return seed
        """)
        defs = ReachingDefinitions(fn)
        ret = next(n for n in ast.walk(fn) if isinstance(n, ast.Return))
        kinds = {atom.kind
                 for atom in provenance_atoms(ret.value, defs,
                                              use_line=ret.lineno)}
        assert "literal" in kinds
        assert "attribute" in kinds


# ---------------------------------------------------------------------------
# PAR001: worker purity


PAR001_BASE = {
    "runner/engine.py": """
        from repro.runner.cells import execute_cell

        _WORKER_GLOBALS = ("_WORKER_CTX",)

        _WORKER_CTX = None

        def _worker_init(ctx):
            global _WORKER_CTX
            _WORKER_CTX = ctx

        def _worker_run(cell):
            return execute_cell(_WORKER_CTX, cell)
    """,
    "runner/cells.py": """
        from repro.runner.stats import bump

        def execute_cell(ctx, cell):
            return bump(cell)
    """,
}


class TestPar001:
    def test_reachable_module_mutation_triggers(self, tmp_path):
        tree = write_tree(tmp_path, dict(PAR001_BASE, **{
            "runner/stats.py": """
                _COUNTER = {}

                def bump(cell):
                    _COUNTER[cell] = _COUNTER.get(cell, 0) + 1
                    return _COUNTER[cell]
            """,
        }))
        messages = messages_for(run_lint([tree]), "PAR001")
        assert len(messages) == 1
        assert "_COUNTER" in messages[0]
        assert "bump" in messages[0]

    def test_reachable_global_statement_triggers(self, tmp_path):
        tree = write_tree(tmp_path, dict(PAR001_BASE, **{
            "runner/stats.py": """
                _LAST = None

                def bump(cell):
                    global _LAST
                    _LAST = cell
                    return 1
            """,
        }))
        messages = messages_for(run_lint([tree]), "PAR001")
        assert len(messages) == 1
        assert "_LAST" in messages[0]

    def test_whitelisted_worker_globals_are_clean(self, tmp_path):
        tree = write_tree(tmp_path, dict(PAR001_BASE, **{
            "runner/stats.py": """
                def bump(cell):
                    return 1
            """,
        }))
        # _worker_init's ``global _WORKER_CTX`` is the declared exception.
        assert "PAR001" not in rules_hit(run_lint([tree]))

    def test_unreachable_global_writer_is_clean(self, tmp_path):
        tree = write_tree(tmp_path, dict(PAR001_BASE, **{
            "runner/stats.py": """
                _CACHE = None

                def bump(cell):
                    return 1

                def parent_only_setup():
                    global _CACHE
                    _CACHE = {}
            """,
        }))
        # Only *worker-reachable* functions are constrained; the parent
        # process may manage module state freely.
        assert "PAR001" not in rules_hit(run_lint([tree]))


# ---------------------------------------------------------------------------
# PAR002: pickle safety


class TestPar002:
    def snippet(self, tmp_path, body: str) -> list[Finding]:
        tree = write_tree(tmp_path, {"runner/cells.py": "class Cell:\n"
                                                        "    pass\n",
                                     "mod.py": body})
        return run_lint([tree])

    def test_lambda_in_cell_field_triggers(self, tmp_path):
        findings = self.snippet(tmp_path, """
            from repro.runner.cells import Cell

            def build():
                return Cell(program="gcc", on_done=lambda r: r)
        """)
        messages = messages_for(findings, "PAR002")
        assert len(messages) == 1
        assert "lambda" in messages[0] and "Cell field" in messages[0]

    def test_nested_function_in_cell_make_triggers(self, tmp_path):
        findings = self.snippet(tmp_path, """
            from repro.runner.cells import Cell

            def build():
                def hook(result):
                    return result
                return Cell.make("gcc", hook)
        """)
        messages = messages_for(findings, "PAR002")
        assert len(messages) == 1
        assert "'hook'" in messages[0]

    def test_local_class_instance_in_container_triggers(self, tmp_path):
        findings = self.snippet(tmp_path, """
            from repro.runner.cells import Cell

            def build():
                class Payload:
                    pass
                return Cell(extras=[Payload()])
        """)
        messages = messages_for(findings, "PAR002")
        assert len(messages) == 1
        assert "Payload" in messages[0]

    def test_pool_submit_lambda_triggers(self, tmp_path):
        findings = self.snippet(tmp_path, """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(cells):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(lambda c: c, cell) for cell in cells]
        """)
        messages = messages_for(findings, "PAR002")
        assert len(messages) == 1
        assert "pool submission" in messages[0]

    def test_pool_initializer_lambda_triggers(self, tmp_path):
        findings = self.snippet(tmp_path, """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out():
                return ProcessPoolExecutor(initializer=lambda: None)
        """)
        messages = messages_for(findings, "PAR002")
        assert len(messages) == 1
        assert "pool initializer" in messages[0]

    def test_non_pool_map_with_lambda_is_clean(self, tmp_path):
        # Regression: hypothesis strategies (and plain iterables) use
        # ``.map(lambda ...)`` heavily; only receivers actually bound to
        # a pool constructor may be flagged.
        findings = self.snippet(tmp_path, """
            def strategies(st):
                return st.integers(min_value=0).map(lambda a: a * 4)
        """)
        assert "PAR002" not in rules_hit(findings)

    def test_module_level_function_is_clean(self, tmp_path):
        findings = self.snippet(tmp_path, """
            from concurrent.futures import ProcessPoolExecutor
            from repro.runner.cells import Cell

            def work(cell):
                return cell

            def fan_out(cells):
                cell = Cell(program="gcc", hook=work)
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, c) for c in cells]
        """)
        assert "PAR002" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# DET003: seed provenance


class TestDet003:
    def lint_one(self, tmp_path, body: str,
                 name: str = "mod.py") -> list[Finding]:
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(body), encoding="utf-8")
        return run_lint([target])

    def test_environment_seed_triggers(self, tmp_path):
        findings = self.lint_one(tmp_path, """
            import os
            from repro.utils.rng import rng_from_seed

            def make():
                return rng_from_seed(int(os.environ["SEED"]))
        """)
        messages = messages_for(findings, "DET003")
        assert len(messages) == 1
        assert "os.environ" in messages[0]

    def test_environment_seed_through_a_local_triggers(self, tmp_path):
        findings = self.lint_one(tmp_path, """
            import os
            from repro.utils.rng import rng_from_seed

            def make():
                raw = os.getenv("SEED", "0")
                seed = int(raw)
                return rng_from_seed(seed)
        """)
        assert len(messages_for(findings, "DET003")) == 1

    def test_clock_seed_triggers(self, tmp_path):
        findings = self.lint_one(tmp_path, """
            import time
            from repro.utils.rng import rng_from_seed

            def make():
                return rng_from_seed(int(time.time()))
        """)
        # DET002 also fires on the clock read; DET003 must fire on the
        # seeding specifically.
        assert len(messages_for(findings, "DET003")) == 1

    def test_context_field_and_literal_seeds_are_clean(self, tmp_path):
        findings = self.lint_one(tmp_path, """
            from repro.utils.rng import rng_from_seed

            def make(ctx, cell):
                a = rng_from_seed(ctx.seed)
                b = rng_from_seed(cell.seed * 31 + 7)
                c = rng_from_seed(42)
                return a, b, c
        """)
        assert "DET003" not in rules_hit(findings)

    def test_rng_module_itself_is_exempt(self, tmp_path):
        findings = self.lint_one(tmp_path, """
            import os

            def rng_from_seed(seed):
                return seed

            def default():
                return rng_from_seed(int(os.environ.get("SEED", "0")))
        """, name="utils/rng.py")
        assert "DET003" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# EXP002: cells/synthesize pairing and scheme literals


EXP_ANCHOR = {"experiments/registry.py": "EXPERIMENT_IDS = ()\n"}

SCHEME_UNIVERSE = {
    "staticpred/selection.py": """
        SELECTION_SCHEMES = ("none", "static_95")
    """,
    "runner/cells.py": """
        STABLE_SCHEME = "static_95_stable"

        class Cell:
            pass
    """,
}


class TestExp002:
    def test_unpaired_cells_triggers(self, tmp_path):
        tree = write_tree(tmp_path, dict(EXP_ANCHOR, **{
            "experiments/figure9.py": """
                def cells(ctx):
                    return []
            """,
        }))
        messages = messages_for(run_lint([tree]), "EXP002")
        assert len(messages) == 1
        assert "synthesize()" in messages[0]

    def test_unpaired_variant_synthesizer_triggers(self, tmp_path):
        tree = write_tree(tmp_path, dict(EXP_ANCHOR, **{
            "experiments/figure9.py": """
                def cells(ctx):
                    return []

                def synthesize(ctx, results):
                    return None

                def synthesize_detail(ctx, results):
                    return None
            """,
        }))
        messages = messages_for(run_lint([tree]), "EXP002")
        assert len(messages) == 1
        assert "cells_detail" in messages[0]

    def test_paired_declarations_are_clean(self, tmp_path):
        tree = write_tree(tmp_path, dict(EXP_ANCHOR, **{
            "experiments/figure9.py": """
                def cells(ctx):
                    return []

                def synthesize(ctx, results):
                    return None

                def cells_detail(ctx):
                    return []

                def synthesize_detail(ctx, results):
                    return None
            """,
        }))
        assert "EXP002" not in rules_hit(run_lint([tree]))

    def test_unknown_scheme_literal_triggers(self, tmp_path):
        tree = write_tree(tmp_path, dict(EXP_ANCHOR, **SCHEME_UNIVERSE, **{
            "experiments/figure9.py": """
                from repro.runner.cells import Cell

                def cells(ctx):
                    return [Cell(scheme="static-95")]

                def synthesize(ctx, results):
                    return None
            """,
        }))
        messages = messages_for(run_lint([tree]), "EXP002")
        assert len(messages) == 1
        assert "'static-95'" in messages[0]

    def test_known_schemes_including_stable_are_clean(self, tmp_path):
        tree = write_tree(tmp_path, dict(EXP_ANCHOR, **SCHEME_UNIVERSE, **{
            "experiments/figure9.py": """
                from repro.runner.cells import Cell

                def cells(ctx):
                    return [Cell(scheme="static_95"),
                            Cell(scheme="static_95_stable")]

                def synthesize(ctx, results):
                    return None
            """,
        }))
        assert "EXP002" not in rules_hit(run_lint([tree]))

    def test_scheme_check_skips_without_a_universe(self, tmp_path):
        # A partial tree (no staticpred/selection.py) cannot know the
        # scheme set; guessing would flag every fixture.
        tree = write_tree(tmp_path, dict(EXP_ANCHOR, **{
            "experiments/figure9.py": """
                from repro.runner.cells import Cell

                def cells(ctx):
                    return [Cell(scheme="anything-goes")]

                def synthesize(ctx, results):
                    return None
            """,
        }))
        assert "EXP002" not in rules_hit(run_lint([tree]))
