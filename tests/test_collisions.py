"""Tests for the tag-based collision instrumentation."""

import pytest

from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.collisions import CollisionCounts, CollisionTracker
from repro.predictors.gskew import TwoBcGskewPredictor


class TestCollisionCounts:
    def test_rates(self):
        counts = CollisionCounts(lookups=100, collisions=10,
                                 constructive=4, destructive=6)
        assert counts.collision_rate == pytest.approx(0.1)
        assert counts.destructive_fraction == pytest.approx(0.6)

    def test_empty_rates(self):
        counts = CollisionCounts()
        assert counts.collision_rate == 0.0
        assert counts.destructive_fraction == 0.0

    def test_merge(self):
        a = CollisionCounts(lookups=10, collisions=2, constructive=1,
                            destructive=1)
        b = CollisionCounts(lookups=5, collisions=1, constructive=0,
                            destructive=1)
        a.merge(b)
        assert a.lookups == 15
        assert a.collisions == 3
        assert a.destructive == 2


class TestCollisionTracker:
    def test_first_use_is_not_collision(self):
        predictor = BimodalPredictor(4)
        tracker = CollisionTracker(predictor)
        predictor.predict(0x1000)
        assert tracker.observe_lookup(0x1000) == 0
        assert tracker.counts.collisions == 0
        assert tracker.counts.lookups == 1

    def test_same_branch_repeat_is_not_collision(self):
        predictor = BimodalPredictor(4)
        tracker = CollisionTracker(predictor)
        for _ in range(5):
            predictor.predict(0x1000)
            tracker.observe_lookup(0x1000)
        assert tracker.counts.collisions == 0

    def test_aliasing_counts_collisions(self):
        predictor = BimodalPredictor(4)
        tracker = CollisionTracker(predictor)
        colliding = 0x1000 + 4 * 4  # same index mod 4 entries
        predictor.predict(0x1000)
        tracker.observe_lookup(0x1000)
        predictor.predict(colliding)
        assert tracker.observe_lookup(colliding) == 1
        # And back again: the tag now holds the other branch.
        predictor.predict(0x1000)
        assert tracker.observe_lookup(0x1000) == 1
        assert tracker.counts.collisions == 2

    def test_non_aliasing_branches_no_collision(self):
        predictor = BimodalPredictor(1024)
        tracker = CollisionTracker(predictor)
        for address in (0x1000, 0x1004, 0x1008):
            predictor.predict(address)
            tracker.observe_lookup(address)
        assert tracker.counts.collisions == 0

    def test_classification(self):
        predictor = BimodalPredictor(4)
        tracker = CollisionTracker(predictor)
        tracker.classify(2, prediction_correct=True)
        tracker.classify(1, prediction_correct=False)
        tracker.classify(0, prediction_correct=False)
        assert tracker.counts.constructive == 2
        assert tracker.counts.destructive == 1

    def test_multi_table_predictor_lookups(self):
        predictor = TwoBcGskewPredictor(bank_entries=64)
        tracker = CollisionTracker(predictor)
        predictor.predict(0x1000)
        tracker.observe_lookup(0x1000)
        # Four banks -> four lookups per branch.
        assert tracker.counts.lookups == 4

    def test_reset(self):
        predictor = BimodalPredictor(4)
        tracker = CollisionTracker(predictor)
        predictor.predict(0x1000)
        tracker.observe_lookup(0x1000)
        tracker.reset()
        assert tracker.counts.lookups == 0
        predictor.predict(0x1000)
        assert tracker.observe_lookup(0x1000) == 0  # tags cleared
