"""Tests for the global history register and index functions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.predictors.history import GlobalHistory
from repro.predictors.indexing import (
    SkewTables,
    fold_history,
    gshare_index,
    pc_index,
    skew_h,
    skew_h_inv,
    skew_tables,
)


class TestGlobalHistory:
    def test_shift_sequence(self):
        history = GlobalHistory(4)
        for taken in (True, False, True, True):
            history.shift(taken)
        assert history.value == 0b1011

    def test_mask_truncates(self):
        history = GlobalHistory(3)
        for _ in range(10):
            history.shift(True)
        assert history.value == 0b111

    def test_zero_length(self):
        history = GlobalHistory(0)
        history.shift(True)
        assert history.value == 0

    def test_bits_order(self):
        history = GlobalHistory(3)
        history.shift(True)
        history.shift(False)
        # Most recent outcome is bit 0.
        assert history.bits() == (False, True, False)

    def test_reset(self):
        history = GlobalHistory(4)
        history.shift(True)
        history.reset()
        assert history.value == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            GlobalHistory(-1)

    def test_rejects_over_64(self):
        with pytest.raises(ConfigurationError):
            GlobalHistory(65)


class TestPcIndex:
    def test_drops_alignment_bits(self):
        assert pc_index(0x1000, 8) == pc_index(0x1000, 8)
        assert pc_index(0x1004, 8) == ((0x1004 >> 2) & 0xFF)

    def test_in_range(self):
        for address in range(0, 4096, 4):
            assert 0 <= pc_index(address, 5) < 32


class TestFoldHistory:
    def test_truncation_when_short(self):
        assert fold_history(0b101101, 4, 8) == 0b1101

    def test_fold_when_long(self):
        value = fold_history(0b11110000, 8, 4)
        assert value == (0b1111 ^ 0b0000)

    @given(st.integers(min_value=0, max_value=2**20 - 1),
           st.integers(min_value=1, max_value=20),
           st.integers(min_value=1, max_value=12))
    def test_in_range(self, history, history_length, width):
        assert 0 <= fold_history(history, history_length, width) < (1 << width)


class TestGshareIndex:
    def test_differs_by_history(self):
        a = gshare_index(0x1000, 0b0000, 4, 8)
        b = gshare_index(0x1000, 0b1111, 4, 8)
        assert a != b

    def test_differs_by_address(self):
        a = gshare_index(0x1000, 0b1010, 4, 8)
        b = gshare_index(0x1004, 0b1010, 4, 8)
        assert a != b

    @given(st.integers(min_value=0, max_value=2**30).map(lambda a: a * 4),
           st.integers(min_value=0, max_value=2**16 - 1))
    def test_in_range(self, address, history):
        assert 0 <= gshare_index(address, history, 12, 12) < 4096


class TestSkewFunctions:
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8, 10, 12])
    def test_h_is_permutation(self, width):
        values = {skew_h(v, width) for v in range(1 << width)}
        assert len(values) == 1 << width

    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8, 10, 12])
    def test_h_inv_inverts(self, width):
        for value in range(1 << width):
            assert skew_h_inv(skew_h(value, width), width) == value
            assert skew_h(skew_h_inv(value, width), width) == value

    def test_h_differs_from_identity(self):
        width = 8
        same = sum(skew_h(v, width) == v for v in range(1 << width))
        assert same < (1 << width) // 4

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            skew_h(1, 0)

    @given(st.integers(min_value=2, max_value=14),
           st.integers(min_value=0, max_value=2**14 - 1),
           st.integers(min_value=0, max_value=2**14 - 1))
    @settings(max_examples=100, deadline=None)
    def test_h_linear_over_gf2(self, width, a, b):
        mask = (1 << width) - 1
        a &= mask
        b &= mask
        assert skew_h(a ^ b, width) == skew_h(a, width) ^ skew_h(b, width)


class TestSkewTables:
    def test_tables_match_functions(self):
        tables = SkewTables(6)
        for value in range(64):
            assert tables.h[value] == skew_h(value, 6)
            assert tables.h_inv[value] == skew_h_inv(value, 6)

    def test_check_bijective_passes(self):
        SkewTables(7).check_bijective()

    def test_cached_instance_shared(self):
        assert skew_tables(9) is skew_tables(9)

    def test_rejects_huge_width(self):
        with pytest.raises(ConfigurationError):
            SkewTables(24)
