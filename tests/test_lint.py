"""Tests for the ``repro.lint`` static-analysis subsystem.

Each rule gets fixture snippets that trigger it and a suppression (or
exemption) path that silences it; the JSON reporter's schema is pinned;
and the whole of ``src/repro`` is asserted lint-clean, so the invariants
the paper's numbers depend on stay machine-checked.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.errors import LintError
from repro.lint import (
    Finding,
    LintEngine,
    Severity,
    SuppressionIndex,
    render_json,
    render_text,
    rule_ids,
    run_lint,
    select_rules,
)
from repro.lint.rules import RULES
from repro.lint.rules.experiments import ExperimentGoldenRule

SRC_REPRO = Path(repro.__file__).parent


def lint_snippet(tmp_path: Path, source: str, name: str = "snippet.py",
                 rules=None) -> list[Finding]:
    """Write one fixture module and lint it."""
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([target], rules)


def rules_hit(findings: list[Finding]) -> set[str]:
    return {finding.rule for finding in findings}


# ---------------------------------------------------------------------------
# DET001: randomness through derive_rng only


class TestDet001:
    def test_module_import_and_calls_trigger(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import random

            def draw():
                return random.random() + random.randint(0, 3)

            random.seed(0)
        """)
        det = [f for f in findings if f.rule == "DET001"]
        assert len(det) == 4  # the import plus three calls
        assert all(f.severity is Severity.ERROR for f in det)

    def test_from_import_and_bare_construction_trigger(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from random import Random, shuffle

            def make():
                return Random(42)
        """)
        messages = [f.message for f in findings if f.rule == "DET001"]
        assert len(messages) == 2
        assert any("shuffle" in m for m in messages)
        assert any("Random(...)" in m for m in messages)

    def test_typing_only_random_import_is_allowed(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from random import Random

            def use(rng: Random) -> float:
                return rng.random()
        """)
        # ``rng.random()`` is a method on an injected stream, not the
        # module; only module-level draws are banned.
        assert "DET001" not in rules_hit(findings)

    def test_rng_module_itself_is_exempt(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import random

            def derive(seed):
                return random.Random(seed)
        """, name="utils/rng.py")
        assert "DET001" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# DET002: no clocks, OS entropy, or set-order nondeterminism


class TestDet002:
    def test_clock_and_entropy_calls_trigger(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import os
            import time
            import datetime

            def stamp():
                return (time.time(), datetime.datetime.now(), os.urandom(8))
        """)
        det = [f for f in findings if f.rule == "DET002"]
        assert len(det) == 3

    def test_smuggled_imports_trigger(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from time import perf_counter
            from os import urandom
            import secrets

            def token():
                return secrets.token_hex(4)
        """)
        det = [f for f in findings if f.rule == "DET002"]
        assert len(det) == 3  # two from-imports plus the secrets call

    def test_set_iteration_triggers(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def emit(addresses):
                for a in set(addresses):
                    print(a)
                return [b for b in {1, 2, 3}]
        """)
        det = [f for f in findings if f.rule == "DET002"]
        assert len(det) == 2

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def emit(addresses):
                for a in sorted(set(addresses)):
                    print(a)
        """)
        assert "DET002" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# PRED001: the BranchPredictor contract


class TestPred001:
    def test_missing_members_trigger(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from repro.predictors.base import BranchPredictor

            class BrokenPredictor(BranchPredictor):
                def predict(self, address):
                    return True
        """)
        messages = [f.message for f in findings if f.rule == "PRED001"]
        assert len(messages) == 3  # no name, no update, no size_bytes
        assert any("'name'" in m for m in messages)
        assert any("'update'" in m for m in messages)
        assert any("'size_bytes'" in m for m in messages)

    def test_wrong_update_signature_triggers(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from repro.predictors.base import BranchPredictor

            class SloppyPredictor(BranchPredictor):
                name = "sloppy"

                def predict(self, address):
                    return True

                def update(self, address, outcome):
                    pass

                @property
                def size_bytes(self):
                    return 0.0
        """)
        messages = [f.message for f in findings if f.rule == "PRED001"]
        assert len(messages) == 1
        assert "update(self, address, outcome)" in messages[0]

    def test_instance_level_name_is_accepted(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from repro.predictors.base import BranchPredictor

            class WrapperPredictor(BranchPredictor):
                def __init__(self, inner):
                    self.name = f"wrapped-{inner.name}"

                def predict(self, address):
                    return True

                def update(self, address, taken, predicted):
                    pass

                @property
                def size_bytes(self):
                    return 0.0
        """)
        assert "PRED001" not in rules_hit(findings)

    def test_unrelated_class_is_ignored(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            class NotAPredictor:
                def update(self, key, value):
                    pass
        """)
        assert "PRED001" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# PRED002: registration tables agree


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


class TestPred002:
    SIZING_MISMATCH = """
        PREDICTOR_NAMES = ("gshare", "phantom")

        _FACTORIES = {
            "gshare": None,
            "hidden": None,
        }
    """

    def test_name_factory_mismatch_triggers(self, tmp_path):
        tree = write_tree(tmp_path, {"predictors/sizing.py": self.SIZING_MISMATCH})
        findings = run_lint([tree])
        messages = [f.message for f in findings if f.rule == "PRED002"]
        assert any("'phantom'" in m and "no _FACTORIES entry" in m
                   for m in messages)
        assert any("'hidden'" in m and "not in" in m for m in messages)

    def test_handwritten_cli_choices_trigger(self, tmp_path):
        tree = write_tree(tmp_path, {
            "predictors/sizing.py": """
                PREDICTOR_NAMES = ("gshare",)
                _FACTORIES = {"gshare": None}
            """,
            "cli.py": """
                def build(sub):
                    run = sub.add_parser("run")
                    run.add_argument("--predictor", choices=["gshare"])
            """,
        })
        findings = run_lint([tree])
        messages = [f.message for f in findings if f.rule == "PRED002"]
        assert any("choices=PREDICTOR_NAMES" in m for m in messages)

    def test_unregistered_name_without_class_triggers(self, tmp_path):
        tree = write_tree(tmp_path, {
            "predictors/sizing.py": """
                PREDICTOR_NAMES = ("gshare", "vapor")
                _FACTORIES = {"gshare": None, "vapor": None}
            """,
            "predictors/gshare.py": """
                from repro.predictors.base import BranchPredictor

                class GsharePredictor(BranchPredictor):
                    name = "gshare"

                    def predict(self, address):
                        return True

                    def update(self, address, taken, predicted):
                        pass

                    @property
                    def size_bytes(self):
                        return 0.0
            """,
        })
        findings = run_lint([tree])
        messages = [f.message for f in findings if f.rule == "PRED002"]
        assert any("'vapor'" in m and "no BranchPredictor subclass" in m
                   for m in messages)

    def test_consistent_tree_is_clean(self, tmp_path):
        tree = write_tree(tmp_path, {
            "predictors/sizing.py": """
                PREDICTOR_NAMES = ("gshare",)
                _FACTORIES = {"gshare": None}
            """,
        })
        assert "PRED002" not in rules_hit(run_lint([tree]))


# ---------------------------------------------------------------------------
# PRED003: predict-time state consumed by update is declared


PRED003_BODY = """
    from repro.predictors.base import BranchPredictor

    class CachingPredictor(BranchPredictor):
        name = "caching"
        {declaration}

        def predict(self, address):
            self._last_index = address & 7
            return True

        def update(self, address, taken, predicted):
            index = self._last_index
            self.table[index] = taken

        @property
        def size_bytes(self):
            return 0.0

        def table_entry_counts(self):
            return []

        def accessed(self):
            return []
"""


class TestPred003:
    def test_undeclared_predict_state_triggers(self, tmp_path):
        findings = lint_snippet(
            tmp_path, PRED003_BODY.format(declaration="")
        )
        messages = [f.message for f in findings if f.rule == "PRED003"]
        assert len(messages) == 1
        assert "'_last_index'" in messages[0]
        assert "_PREDICT_STATE" in messages[0]

    def test_declared_predict_state_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            PRED003_BODY.format(
                declaration='_PREDICT_STATE = ("_last_index",)'
            ),
        )
        assert "PRED003" not in rules_hit(findings)

    def test_stale_declaration_triggers(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            PRED003_BODY.format(
                declaration='_PREDICT_STATE = ("_last_index", "_gone")'
            ),
        )
        messages = [f.message for f in findings if f.rule == "PRED003"]
        assert len(messages) == 1
        assert "'_gone'" in messages[0]
        assert "stale" in messages[0]

    def test_counter_bumps_do_not_trigger(self, tmp_path):
        # predict's `self.lookups += 1` and update's `self.misses += 1`
        # are statistics, not cached lookup context.
        findings = lint_snippet(tmp_path, """
            from repro.predictors.base import BranchPredictor

            class CountingPredictor(BranchPredictor):
                name = "counting"

                def predict(self, address):
                    self.lookups += 1
                    return True

                def update(self, address, taken, predicted):
                    if not taken:
                        self.misses += 1

                @property
                def size_bytes(self):
                    return 0.0

                def table_entry_counts(self):
                    return []

                def accessed(self):
                    return []
        """)
        assert "PRED003" not in rules_hit(findings)

    def test_state_read_only_elsewhere_is_clean(self, tmp_path):
        # predict-assigned state read by accessed() (not update) is the
        # documented collision-tracker protocol, not hidden coupling.
        findings = lint_snippet(tmp_path, """
            from repro.predictors.base import BranchPredictor

            class PeekPredictor(BranchPredictor):
                name = "peek"

                def predict(self, address):
                    self._last_index = address & 7
                    return True

                def update(self, address, taken, predicted):
                    pass

                @property
                def size_bytes(self):
                    return 0.0

                def table_entry_counts(self):
                    return []

                def accessed(self):
                    return [(0, self._last_index)]
        """)
        assert "PRED003" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# REG001: experiment registry vs. golden files


class TestReg001:
    REGISTRY_SOURCE = "EXPERIMENT_IDS = ()\n"

    def run_rule(self, tmp_path, ids, grouped, goldens) -> list[Finding]:
        tree = write_tree(
            tmp_path, {"experiments/registry.py": self.REGISTRY_SOURCE}
        )
        results = tree / "benchmarks" / "results"
        results.mkdir(parents=True)
        for golden in goldens:
            (results / f"{golden}.txt").write_text("golden\n", encoding="utf-8")
        rule = ExperimentGoldenRule(
            experiment_ids=ids, grouped_ids=grouped, results_dir=results
        )
        return LintEngine([rule]).run([tree])

    def test_missing_golden_triggers(self, tmp_path):
        findings = self.run_rule(tmp_path, ids=("table1", "table2"),
                                 grouped=(), goldens=("table1",))
        messages = [f.message for f in findings if f.rule == "REG001"]
        assert len(messages) == 1
        assert "'table2'" in messages[0] and "no golden" in messages[0]

    def test_stale_golden_triggers(self, tmp_path):
        findings = self.run_rule(tmp_path, ids=("table1",), grouped=(),
                                 goldens=("table1", "table9"))
        messages = [f.message for f in findings if f.rule == "REG001"]
        assert len(messages) == 1
        assert "table9.txt" in messages[0]

    def test_grouped_ids_need_no_golden(self, tmp_path):
        findings = self.run_rule(tmp_path, ids=("table1", "summary"),
                                 grouped=("summary",), goldens=("table1",))
        assert "REG001" not in rules_hit(findings)

    def test_unknown_grouped_id_triggers(self, tmp_path):
        findings = self.run_rule(tmp_path, ids=("table1",),
                                 grouped=("mystery",), goldens=("table1",))
        messages = [f.message for f in findings if f.rule == "REG001"]
        assert any("'mystery'" in m for m in messages)

    def test_foreign_registry_is_skipped_by_default_rule(self, tmp_path):
        # The registered REG001 instance imports the real registry; on a
        # fixture tree whose registry.py is not that module it must stay
        # silent rather than compare the wrong id set.
        tree = write_tree(
            tmp_path, {"experiments/registry.py": self.REGISTRY_SOURCE}
        )
        findings = run_lint([tree])
        assert "REG001" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# BIT001: hand-rolled masks


class TestBit001:
    def test_mask_expressions_trigger(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def index(address, width):
                a = address & (2**10 - 1)
                b = address & ((1 << width) - 1)
                c = address % 4096
                d = address % (1 << width)
                return a + b + c + d
        """)
        bit = [f for f in findings if f.rule == "BIT001"]
        assert len(bit) == 4
        assert all(f.severity is Severity.WARNING for f in bit)

    def test_non_power_of_two_modulo_is_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def wrap(position, pattern):
                return (position + 1) % len(pattern) + position % 3
        """)
        assert "BIT001" not in rules_hit(findings)

    def test_bits_module_is_exempt(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def bit_mask(width):
                return (1 << width) - 1

            def fold(value, width):
                return value & ((1 << width) - 1)
        """, name="utils/bits.py")
        assert "BIT001" not in rules_hit(findings)


# ---------------------------------------------------------------------------
# Suppressions


class TestSuppressions:
    def test_trailing_suppression_silences(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import time

            def stamp():
                return time.time()  # repro: allow[DET002] -- wall time is the payload
        """)
        assert "DET002" not in rules_hit(findings)

    def test_preceding_comment_suppression_silences(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import time

            def stamp():
                # repro: allow[DET002] -- wall time is the payload
                return time.time()
        """)
        assert "DET002" not in rules_hit(findings)

    def test_multi_rule_marker(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def index(address):
                # repro: allow[BIT001, DET002] -- exercising the marker
                return [a for a in {address & (2**4 - 1)}]
        """)
        assert rules_hit(findings) == set()

    def test_suppression_is_rule_specific(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import time

            def stamp():
                return time.time()  # repro: allow[DET001] -- wrong rule id
        """)
        assert "DET002" in rules_hit(findings)

    def test_index_parsing(self):
        index = SuppressionIndex.from_source(
            "x = 1  # repro: allow[A1]\n"
            "# repro: allow[B2, C3] -- reason\n"
            "y = 2\n"
        )
        assert index.is_suppressed("A1", 1)
        assert index.is_suppressed("B2", 3) and index.is_suppressed("C3", 3)
        assert not index.is_suppressed("A1", 3)

    def test_standalone_marker_skips_blank_and_comment_lines(self):
        index = SuppressionIndex.from_source(
            "# repro: allow[A1] -- reaches past the gap\n"
            "\n"
            "# an unrelated comment\n"
            "\n"
            "x = 1\n"
        )
        assert index.is_suppressed("A1", 5)

    def test_stacked_markers_annotate_the_same_statement(self):
        index = SuppressionIndex.from_source(
            "# repro: allow[A1] -- first\n"
            "# repro: allow[B2] -- second\n"
            "x = 1\n"
        )
        assert index.is_suppressed("A1", 3)
        assert index.is_suppressed("B2", 3)

    def test_marker_covers_the_whole_multiline_statement(self):
        source = (
            "x = compute(\n"
            "    alpha,\n"
            "    beta,\n"
            ")  # repro: allow[A1] -- the call spans four lines\n"
        )
        index = SuppressionIndex.from_source(source)
        for line in (1, 2, 3, 4):
            assert index.is_suppressed("A1", line)
        assert not index.is_suppressed("A1", 5)

    def test_standalone_marker_before_multiline_statement(self):
        source = (
            "# repro: allow[A1] -- annotates the whole statement below\n"
            "x = compute(\n"
            "    alpha,\n"
            ")\n"
        )
        index = SuppressionIndex.from_source(source)
        for line in (2, 3, 4):
            assert index.is_suppressed("A1", line)

    def test_marker_inside_a_string_literal_is_inert(self):
        index = SuppressionIndex.from_source(
            'text = "# repro: allow[A1] -- not a comment"\n'
            "y = 2\n"
        )
        assert len(index) == 0
        assert not index.is_suppressed("A1", 1)
        assert not index.is_suppressed("A1", 2)

    def test_string_marker_does_not_suppress_findings(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import time

            def stamp():
                note = "# repro: allow[DET002] -- inside a string"
                return note, time.time()
        """)
        assert "DET002" in rules_hit(findings)

    def test_trailing_marker_inside_parens_suppresses(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import time

            def stamp():
                return max(
                    time.time(),  # repro: allow[DET002] -- wall time wanted
                    0.0,
                )
        """)
        assert "DET002" not in rules_hit(findings)

    def test_unparseable_source_falls_back_to_line_scan(self):
        index = SuppressionIndex.from_source(
            "# repro: allow[A1] -- before broken code\n"
            "def broken(:\n"
        )
        assert index.is_suppressed("A1", 1)
        assert index.is_suppressed("A1", 2)


# ---------------------------------------------------------------------------
# Engine and reporters


class TestEngineAndReport:
    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        findings = lint_snippet(tmp_path, "def broken(:\n")
        assert rules_hit(findings) == {"LINT001"}

    def test_missing_path_raises_lint_error(self):
        with pytest.raises(LintError):
            run_lint(["/nonexistent/lint/target"])

    def test_select_rules_by_prefix(self):
        assert [r.rule_id for r in select_rules(["DET"])] == [
            "DET001", "DET002", "DET003",
        ]
        assert [r.rule_id for r in select_rules(["PRED001"])] == ["PRED001"]

    def test_select_unknown_rule_raises(self):
        with pytest.raises(LintError):
            select_rules(["NOPE999"])

    def test_rule_ids_cover_the_documented_battery(self):
        assert set(rule_ids()) == {
            "DET001", "DET002", "DET003", "PRED001", "PRED002", "PRED003",
            "REG001", "EXP002", "PAR001", "PAR002", "BIT001", "LINT001",
            "WID001", "WID002", "WID003", "WID004",
            "PERF001", "PERF002", "PERF003", "PERF004",
            "KEY001", "KEY002", "ENV001", "ATM001", "ATM002",
            "CONC001", "CONC002", "CONC003", "CONC004",
        }
        assert all(RULES[r].summary for r in RULES)

    def test_findings_sort_by_location(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import random

            def late():
                return random.random()
        """)
        lines = [f.line for f in findings]
        assert lines == sorted(lines)

    def test_json_schema(self, tmp_path):
        findings = lint_snippet(tmp_path, "import random\n")
        payload = json.loads(render_json(findings))
        assert payload["version"] == 1
        assert payload["count"] == len(findings) == 1
        assert payload["rules"] == list(rule_ids())
        entry = payload["findings"][0]
        assert set(entry) == {"rule", "severity", "path", "line", "col",
                              "message"}
        assert entry["rule"] == "DET001"
        assert entry["severity"] == "error"
        assert entry["line"] == 1

    def test_text_report_mentions_counts(self, tmp_path):
        findings = lint_snippet(tmp_path, "import random\n")
        text = render_text(findings)
        assert "1 finding(s)" in text and "1 error(s)" in text
        assert render_text([]) == "clean: no lint findings"

    def test_json_rules_reflect_a_selected_subset(self, tmp_path):
        # A --select-narrowed run must not advertise rules it skipped:
        # consumers read "rules" as "these ran and found what is listed".
        rules = select_rules(["DET"])
        engine = LintEngine(rules)
        findings = engine.run([])
        payload = json.loads(render_json(findings, rules=engine.executed_rule_ids))
        assert payload["rules"] == ["DET001", "DET002", "DET003", "LINT001"]

    def test_executed_rule_ids_always_include_the_parse_rule(self):
        engine = LintEngine(select_rules(["BIT001"]))
        assert engine.executed_rule_ids == ["BIT001", "LINT001"]

    def test_findings_independent_of_path_argument_order(self, tmp_path):
        tree = write_tree(tmp_path, {
            "a/first.py": "import random\n",
            "b/second.py": "import time\ntime.time()\n",
        })
        forward = run_lint([tree / "a", tree / "b"])
        reverse = run_lint([tree / "b", tree / "a"])
        assert forward == reverse
        assert [f.rule for f in forward] == ["DET001", "DET002"]


# ---------------------------------------------------------------------------
# Self-hosting: the repro package obeys its own invariants


class TestSelfHost:
    def test_src_repro_is_lint_clean_outside_perf(self):
        # PERF carries deliberate baselined debt (the vectorization
        # worklist); every other family must be spotless.
        findings = run_lint([SRC_REPRO])
        non_perf = [f for f in findings if not f.rule.startswith("PERF")]
        assert non_perf == [], "\n".join(f.render() for f in non_perf)

    def test_src_repro_perf_debt_is_fully_baselined(self):
        from repro.lint.baseline import DEFAULT_BASELINE_PATH, Baseline

        findings = run_lint([SRC_REPRO])
        baseline = Baseline.load(Path(DEFAULT_BASELINE_PATH))
        new, _baselined = baseline.filter_new(findings)
        assert new == [], "\n".join(f.render() for f in new)
        # The ratchet only means something while the worklist is real:
        # the committed baseline must hold actual PERF sites.
        perf = [f for f in findings if f.rule.startswith("PERF")]
        assert len(perf) >= 5

    def test_kernels_and_runner_are_perf_clean(self):
        findings = run_lint([SRC_REPRO], select_rules(["PERF"]))
        hot_dirs = [f for f in findings
                    if "/kernels/" in f.path or "/runner/" in f.path]
        assert hot_dirs == [], "\n".join(f.render() for f in hot_dirs)

    def test_real_registry_rule_actually_ran(self):
        # Guard against the self-host pass going green because REG001
        # skipped: the default rule must resolve the real registry.
        from repro.experiments import registry

        rule = ExperimentGoldenRule()
        engine = LintEngine([rule])
        findings = engine.run([SRC_REPRO / "experiments" / "registry.py"])
        assert findings == []
        assert registry.GROUPED_EXPERIMENT_IDS < set(registry.EXPERIMENT_IDS)
