"""Tests for the branch trace data structure and its file formats."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceFormatError
from repro.workloads.trace import (
    BranchRecord,
    BranchTrace,
    _dump_records_scalar,
    _parse_records_scalar,
    _validate_scalar,
)


def make_trace(records):
    trace = BranchTrace(program_name="demo", input_name="ref")
    for site, address, taken, gap in records:
        trace.site_indices.append(site)
        trace.addresses.append(address)
        trace.outcomes.append(taken)
        trace.gaps.append(gap)
    return trace


SIMPLE = [(0, 0x1000, True, 5), (1, 0x1004, False, 3), (0, 0x1000, True, 7)]


class TestBranchTrace:
    def test_len_and_iteration(self):
        trace = make_trace(SIMPLE)
        assert len(trace) == 3
        records = list(trace)
        assert records[0] == BranchRecord(0, 0x1000, True, 5)
        assert records[1].taken is False

    def test_instruction_count(self):
        assert make_trace(SIMPLE).instruction_count == 15

    def test_cbrs_per_ki(self):
        trace = make_trace(SIMPLE)
        assert trace.cbrs_per_ki() == pytest.approx(1000 * 3 / 15)

    def test_taken_rate(self):
        assert make_trace(SIMPLE).taken_rate() == pytest.approx(2 / 3)

    def test_sites_executed(self):
        assert make_trace(SIMPLE).sites_executed() == {0, 1}

    def test_empty_trace_rates(self):
        trace = make_trace([])
        assert trace.cbrs_per_ki() == 0.0
        assert trace.taken_rate() == 0.0

    def test_slice(self):
        trace = make_trace(SIMPLE)
        sub = trace.slice(1, 3)
        assert len(sub) == 2
        assert sub.addresses == [0x1004, 0x1000]
        assert sub.program_name == "demo"

    def test_validate_accepts_good(self):
        make_trace(SIMPLE).validate()

    def test_validate_rejects_ragged(self):
        trace = make_trace(SIMPLE)
        trace.gaps.pop()
        with pytest.raises(TraceFormatError):
            trace.validate()

    def test_validate_rejects_zero_gap(self):
        trace = make_trace([(0, 0x1000, True, 0)])
        with pytest.raises(TraceFormatError):
            trace.validate()

    def test_validate_rejects_unaligned_address(self):
        trace = make_trace([(0, 0x1001, True, 1)])
        with pytest.raises(TraceFormatError):
            trace.validate()

    def test_validate_reports_first_bad_record_index(self):
        trace = make_trace(
            [(0, 0x1000, True, 5), (1, 0x1004, False, 0), (2, 0x1008, True, -1)]
        )
        with pytest.raises(TraceFormatError, match=r"record 1 has gap 0 < 1"):
            trace.validate()

    def test_validate_checks_gaps_before_addresses(self):
        # Both violations present: the scalar loop always reported the
        # gap first, and the vectorized pass must preserve that order.
        trace = make_trace([(0, 0x1001, True, 0)])
        with pytest.raises(TraceFormatError, match=r"gap 0 < 1"):
            trace.validate()

    def test_validate_matches_scalar_reference_messages(self):
        bad_gap = make_trace([(0, 0x1000, True, 5), (1, 0x1004, False, -3)])
        bad_address = make_trace([(0, 0x1000, True, 5), (1, 0x1002, False, 3)])
        for trace in (bad_gap, bad_address):
            with pytest.raises(TraceFormatError) as vectorized:
                trace.validate()
            with pytest.raises(TraceFormatError) as scalar:
                _validate_scalar(trace)
            assert str(vectorized.value) == str(scalar.value)

    def test_validate_huge_ints_fall_back_to_scalar(self):
        # Beyond-int64 values cannot convert to a numpy column; the
        # arbitrary-precision scalar path must still validate them.
        trace = make_trace([(0, 4 * 2**70, True, 2**70)])
        trace.validate()
        with pytest.raises(TraceFormatError, match="gap"):
            make_trace([(0, 0x1000, True, -(2**70))]).validate()


class TestArraysMemo:
    def test_memoized_across_calls(self):
        trace = make_trace(SIMPLE)
        assert trace.arrays() is trace.arrays()

    def test_refreshes_when_addresses_grow(self):
        trace = make_trace(SIMPLE)
        trace.arrays()
        trace.site_indices.append(2)
        trace.addresses.append(0x2000)
        trace.outcomes.append(True)
        trace.gaps.append(1)
        addresses, outcomes = trace.arrays()
        assert addresses.shape[0] == 4 and int(addresses[-1]) == 0x2000

    def test_refreshes_when_only_outcomes_change_length(self):
        # Regression: the old guard compared only the address column's
        # length, so a ragged-in-progress edit to outcomes handed stale
        # kernel inputs back.
        trace = make_trace(SIMPLE)
        trace.arrays()
        trace.outcomes.append(False)
        addresses, outcomes = trace.arrays()
        assert outcomes.shape[0] == 4

    def test_invalidate_arrays_after_same_length_mutation(self):
        trace = make_trace(SIMPLE)
        _, outcomes = trace.arrays()
        trace.outcomes[0] = not trace.outcomes[0]
        # The length guard cannot see this; the documented contract is
        # an explicit invalidation.
        trace.invalidate_arrays()
        _, refreshed = trace.arrays()
        assert bool(refreshed[0]) == trace.outcomes[0]
        assert bool(refreshed[0]) != bool(outcomes[0])


class TestTraceFormat:
    def test_roundtrip(self):
        trace = make_trace(SIMPLE)
        loaded = BranchTrace.loads(trace.dumps())
        assert loaded.program_name == "demo"
        assert loaded.input_name == "ref"
        assert loaded.site_indices == trace.site_indices
        assert loaded.addresses == trace.addresses
        assert loaded.outcomes == trace.outcomes
        assert loaded.gaps == trace.gaps

    def test_file_roundtrip(self, tmp_path):
        trace = make_trace(SIMPLE)
        path = str(tmp_path / "t.trace")
        trace.save(path)
        assert BranchTrace.load(path).addresses == trace.addresses

    def test_rejects_bad_header(self):
        with pytest.raises(TraceFormatError):
            BranchTrace.loads("not a trace\n")

    def test_rejects_bad_count(self):
        text = "repro-trace v1\ndemo ref 5\n0 1000 1 1\n"
        with pytest.raises(TraceFormatError):
            BranchTrace.loads(text)

    def test_rejects_bad_field_count(self):
        text = "repro-trace v1\ndemo ref 1\n0 1000 1\n"
        with pytest.raises(TraceFormatError):
            BranchTrace.loads(text)

    def test_rejects_non_numeric(self):
        text = "repro-trace v1\ndemo ref 1\n0 zzzz 1 1\n"
        with pytest.raises(TraceFormatError):
            BranchTrace.loads(text)

    def test_tolerates_trailing_blank_lines(self):
        trace = make_trace(SIMPLE)
        loaded = BranchTrace.loads(trace.dumps() + "\n\n")
        assert loaded.addresses == trace.addresses
        assert loaded.gaps == trace.gaps

    def test_trailing_whitespace_only_line_tolerated(self):
        trace = make_trace(SIMPLE)
        loaded = BranchTrace.loads(trace.dumps() + "   \n")
        assert loaded.addresses == trace.addresses

    def test_interior_blank_line_still_rejected(self):
        text = "repro-trace v1\ndemo ref 2\n0 1000 1 1\n\n1 1004 0 2\n"
        with pytest.raises(TraceFormatError,
                           match=r"line 4: expected 4 fields, got \[\]"):
            BranchTrace.loads(text)

    def test_empty_trace_roundtrip(self):
        trace = make_trace([])
        loaded = BranchTrace.loads(trace.dumps())
        assert len(loaded) == 0
        assert loaded.program_name == "demo"

    def test_dump_rejects_program_name_with_space(self):
        trace = make_trace(SIMPLE)
        trace.program_name = "my program"
        with pytest.raises(TraceFormatError, match="program name"):
            trace.dumps()

    def test_dump_rejects_input_name_with_whitespace(self):
        trace = make_trace(SIMPLE)
        trace.input_name = "ref\ttrain"
        with pytest.raises(TraceFormatError, match="input name"):
            trace.dumps()

    def test_dump_rejects_empty_name(self):
        trace = make_trace(SIMPLE)
        trace.program_name = ""
        with pytest.raises(TraceFormatError, match="non-empty"):
            trace.dumps()


class TestVectorizedScalarEquivalence:
    """The whole-column passes must be bit-identical to the scalar
    references they replaced -- outputs, error messages, and record
    indices alike."""

    def test_dump_matches_scalar_reference(self):
        trace = make_trace(SIMPLE)
        scalar = io.StringIO()
        _dump_records_scalar(trace, scalar)
        assert trace.dumps().endswith(scalar.getvalue())

    def test_parse_matches_scalar_on_canonical_input(self):
        trace = make_trace(SIMPLE)
        body = trace.dumps().split("\n", 2)[2]
        lines = [line for line in body.split("\n") if line.strip()]
        assert BranchTrace.loads(trace.dumps()).site_indices == \
            _parse_records_scalar(lines)[0]

    @pytest.mark.parametrize("body", [
        "0 1000  1 5",        # double space
        " 0 1000 1 5",        # leading space
        "0 1000 1 5 ",        # trailing space
        "0\t1000\t1\t5",      # tabs
        "0 1000 1 5\r",       # CRLF line ending
    ])
    def test_noncanonical_whitespace_parses_like_scalar(self, body):
        # str.split() treats all of these as 4 fields, so they are
        # *valid* -- they just cannot take the flat-split fast path.
        text = f"repro-trace v1\ndemo ref 1\n{body}\n"
        loaded = BranchTrace.loads(text)
        assert loaded.site_indices == [0]
        assert loaded.addresses == [0x1000]
        assert loaded.outcomes == [True]
        assert loaded.gaps == [5]

    def test_token_aliasing_across_lines_is_not_miscounted(self):
        # 3 tokens + 5 tokens = 8 = 2*4: a naive flat split would parse
        # this as two happy records; the structural check must route it
        # to the scalar parser, which reports the first bad line.
        text = ("repro-trace v1\ndemo ref 2\n"
                "0 1000 1\n"
                "1 1004 0 2 9\n")
        with pytest.raises(TraceFormatError,
                           match=r"line 3: expected 4 fields"):
            BranchTrace.loads(text)

    def test_error_line_numbers_match_scalar_reference(self):
        bodies = ["0 1000 1 1\nbogus", "0 zzzz 1 1", "0 1000 1 one"]
        for body in bodies:
            lines = body.split("\n")
            count = len(lines)
            text = f"repro-trace v1\ndemo ref {count}\n{body}\n"
            with pytest.raises(TraceFormatError) as vectorized:
                BranchTrace.loads(text)
            with pytest.raises(TraceFormatError) as scalar:
                _parse_records_scalar(lines)
            assert str(vectorized.value) == str(scalar.value)

    def test_underscored_int_literals_parse_like_scalar(self):
        # int("1_0") == 10 in Python but numpy's astype rejects it; the
        # fast path must fall back so the quirky-but-accepted spelling
        # keeps parsing exactly as the scalar loop did.
        text = "repro-trace v1\ndemo ref 1\n1_0 1000 1 2_5\n"
        loaded = BranchTrace.loads(text)
        assert loaded.site_indices == [10]
        assert loaded.gaps == [25]

    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=0, max_value=2**40).map(lambda a: a * 4),
            st.booleans(),
            st.integers(min_value=1, max_value=100),
        ),
        max_size=40,
    ))
    @settings(max_examples=40, deadline=None)
    def test_dump_property_matches_scalar(self, records):
        trace = make_trace(records)
        scalar = io.StringIO()
        _dump_records_scalar(trace, scalar)
        header = f"repro-trace v1\ndemo ref {len(records)}\n"
        assert trace.dumps() == header + scalar.getvalue()

    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=0, max_value=2**40).map(lambda a: a * 4),
            st.booleans(),
            st.integers(min_value=1, max_value=100),
        ),
        max_size=50,
    ))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, records):
        trace = make_trace(records)
        loaded = BranchTrace.loads(trace.dumps())
        assert loaded.site_indices == trace.site_indices
        assert loaded.addresses == trace.addresses
        assert loaded.outcomes == trace.outcomes
        assert loaded.gaps == trace.gaps


class TestNpzFormat:
    def test_roundtrip(self, tmp_path):
        trace = make_trace(SIMPLE)
        path = str(tmp_path / "t.npz")
        trace.save_npz(path)
        loaded = BranchTrace.load_npz(path)
        assert loaded.program_name == trace.program_name
        assert loaded.input_name == trace.input_name
        assert loaded.site_indices == trace.site_indices
        assert loaded.addresses == trace.addresses
        assert loaded.outcomes == trace.outcomes
        assert loaded.gaps == trace.gaps

    def test_matches_text_format(self, tmp_path):
        trace = make_trace(SIMPLE)
        npz_path = str(tmp_path / "t.npz")
        trace.save_npz(npz_path)
        from_npz = BranchTrace.load_npz(npz_path)
        from_text = BranchTrace.loads(trace.dumps())
        assert from_npz.addresses == from_text.addresses
        assert from_npz.outcomes == from_text.outcomes

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError):
            BranchTrace.load_npz(str(tmp_path / "missing.npz"))

    def test_real_workload_roundtrip(self, tmp_path, gcc_trace):
        path = str(tmp_path / "gcc.npz")
        gcc_trace.save_npz(path)
        loaded = BranchTrace.load_npz(path)
        assert loaded.addresses == gcc_trace.addresses
        assert loaded.instruction_count == gcc_trace.instruction_count

    def test_suffixless_path_roundtrip(self, tmp_path):
        # Regression: numpy.savez_compressed silently appends .npz, so
        # save("foo.trace") wrote foo.trace.npz while load("foo.trace")
        # raised; both directions now normalize the suffix.
        trace = make_trace(SIMPLE)
        path = str(tmp_path / "foo.trace")
        written = trace.save_npz(path)
        assert written == path + ".npz"
        loaded = BranchTrace.load_npz(path)
        assert loaded.addresses == trace.addresses

    def test_load_falls_back_to_literal_path(self, tmp_path):
        # An archive that genuinely sits at a suffixless name (renamed
        # by hand) still loads.
        trace = make_trace(SIMPLE)
        written = trace.save_npz(str(tmp_path / "t"))
        bare = str(tmp_path / "bare")
        (tmp_path / "t.npz").rename(bare)
        assert written.endswith(".npz")
        assert BranchTrace.load_npz(bare).gaps == trace.gaps

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = make_trace([])
        trace.save_npz(str(tmp_path / "empty.npz"))
        loaded = BranchTrace.load_npz(str(tmp_path / "empty.npz"))
        assert len(loaded) == 0
        assert loaded.input_name == "ref"

    def test_truncated_archive_is_clean_error(self, tmp_path):
        trace = make_trace(SIMPLE)
        path = str(tmp_path / "t.npz")
        trace.save_npz(path)
        blob = (tmp_path / "t.npz").read_bytes()
        (tmp_path / "t.npz").write_bytes(blob[: len(blob) // 2])
        with pytest.raises(TraceFormatError, match="cannot read npz"):
            BranchTrace.load_npz(path)


class TestMemmapFormat:
    def test_roundtrip(self, tmp_path):
        trace = make_trace(SIMPLE)
        path = str(tmp_path / "t.trace.d")
        trace.save_memmap(path)
        loaded = BranchTrace.load_memmap(path)
        assert loaded.program_name == "demo"
        assert loaded.site_indices == trace.site_indices
        assert loaded.addresses == trace.addresses
        assert loaded.outcomes == trace.outcomes
        assert loaded.gaps == trace.gaps

    def test_unmaterialized_columns_work_whole_column(self, tmp_path):
        trace = make_trace(SIMPLE)
        path = str(tmp_path / "t.trace.d")
        trace.save_memmap(path)
        lazy = BranchTrace.load_memmap(path, materialize=False)
        assert len(lazy) == len(trace)
        assert lazy.content_digest() == trace.content_digest()
        addresses, outcomes = lazy.arrays()
        assert addresses.shape[0] == len(trace)

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = make_trace([])
        trace.save_memmap(str(tmp_path / "e.d"))
        assert len(BranchTrace.load_memmap(str(tmp_path / "e.d"))) == 0

    def test_missing_directory_is_clean_error(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read memmap"):
            BranchTrace.load_memmap(str(tmp_path / "nope.d"))

    def test_missing_column_is_clean_error(self, tmp_path):
        trace = make_trace(SIMPLE)
        path = str(tmp_path / "t.trace.d")
        trace.save_memmap(path)
        (tmp_path / "t.trace.d" / "gaps.npy").unlink()
        with pytest.raises(TraceFormatError, match="gaps.npy"):
            BranchTrace.load_memmap(path)

    def test_length_mismatch_is_clean_error(self, tmp_path):
        import numpy

        trace = make_trace(SIMPLE)
        path = str(tmp_path / "t.trace.d")
        trace.save_memmap(path)
        numpy.save(str(tmp_path / "t.trace.d" / "gaps.npy"),
                   numpy.asarray([1], dtype=numpy.int32))
        with pytest.raises(TraceFormatError, match="column lengths"):
            BranchTrace.load_memmap(path)


class TestContentDigest:
    def test_stable_across_all_formats(self, tmp_path):
        trace = make_trace(SIMPLE)
        expected = trace.content_digest()
        from_text = BranchTrace.loads(trace.dumps())
        trace.save_npz(str(tmp_path / "t.npz"))
        from_npz = BranchTrace.load_npz(str(tmp_path / "t.npz"))
        trace.save_memmap(str(tmp_path / "t.d"))
        from_memmap = BranchTrace.load_memmap(str(tmp_path / "t.d"))
        assert from_text.content_digest() == expected
        assert from_npz.content_digest() == expected
        assert from_memmap.content_digest() == expected

    def test_sensitive_to_every_column_and_name(self):
        base = make_trace(SIMPLE).content_digest()
        flipped = make_trace(SIMPLE)
        flipped.outcomes[1] = True
        assert flipped.content_digest() != base
        regapped = make_trace(SIMPLE)
        regapped.gaps[0] = 6
        assert regapped.content_digest() != base
        renamed = make_trace(SIMPLE)
        renamed.input_name = "train"
        assert renamed.content_digest() != base

    def test_empty_trace_has_a_digest(self):
        assert len(make_trace([]).content_digest()) == 64

    def test_real_workload_digest_deterministic(self, gcc_trace):
        assert gcc_trace.content_digest() == gcc_trace.content_digest()
