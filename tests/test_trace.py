"""Tests for the branch trace data structure and its file format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceFormatError
from repro.workloads.trace import BranchRecord, BranchTrace


def make_trace(records):
    trace = BranchTrace(program_name="demo", input_name="ref")
    for site, address, taken, gap in records:
        trace.site_indices.append(site)
        trace.addresses.append(address)
        trace.outcomes.append(taken)
        trace.gaps.append(gap)
    return trace


SIMPLE = [(0, 0x1000, True, 5), (1, 0x1004, False, 3), (0, 0x1000, True, 7)]


class TestBranchTrace:
    def test_len_and_iteration(self):
        trace = make_trace(SIMPLE)
        assert len(trace) == 3
        records = list(trace)
        assert records[0] == BranchRecord(0, 0x1000, True, 5)
        assert records[1].taken is False

    def test_instruction_count(self):
        assert make_trace(SIMPLE).instruction_count == 15

    def test_cbrs_per_ki(self):
        trace = make_trace(SIMPLE)
        assert trace.cbrs_per_ki() == pytest.approx(1000 * 3 / 15)

    def test_taken_rate(self):
        assert make_trace(SIMPLE).taken_rate() == pytest.approx(2 / 3)

    def test_sites_executed(self):
        assert make_trace(SIMPLE).sites_executed() == {0, 1}

    def test_empty_trace_rates(self):
        trace = make_trace([])
        assert trace.cbrs_per_ki() == 0.0
        assert trace.taken_rate() == 0.0

    def test_slice(self):
        trace = make_trace(SIMPLE)
        sub = trace.slice(1, 3)
        assert len(sub) == 2
        assert sub.addresses == [0x1004, 0x1000]
        assert sub.program_name == "demo"

    def test_validate_accepts_good(self):
        make_trace(SIMPLE).validate()

    def test_validate_rejects_ragged(self):
        trace = make_trace(SIMPLE)
        trace.gaps.pop()
        with pytest.raises(TraceFormatError):
            trace.validate()

    def test_validate_rejects_zero_gap(self):
        trace = make_trace([(0, 0x1000, True, 0)])
        with pytest.raises(TraceFormatError):
            trace.validate()

    def test_validate_rejects_unaligned_address(self):
        trace = make_trace([(0, 0x1001, True, 1)])
        with pytest.raises(TraceFormatError):
            trace.validate()


class TestTraceFormat:
    def test_roundtrip(self):
        trace = make_trace(SIMPLE)
        loaded = BranchTrace.loads(trace.dumps())
        assert loaded.program_name == "demo"
        assert loaded.input_name == "ref"
        assert loaded.site_indices == trace.site_indices
        assert loaded.addresses == trace.addresses
        assert loaded.outcomes == trace.outcomes
        assert loaded.gaps == trace.gaps

    def test_file_roundtrip(self, tmp_path):
        trace = make_trace(SIMPLE)
        path = str(tmp_path / "t.trace")
        trace.save(path)
        assert BranchTrace.load(path).addresses == trace.addresses

    def test_rejects_bad_header(self):
        with pytest.raises(TraceFormatError):
            BranchTrace.loads("not a trace\n")

    def test_rejects_bad_count(self):
        text = "repro-trace v1\ndemo ref 5\n0 1000 1 1\n"
        with pytest.raises(TraceFormatError):
            BranchTrace.loads(text)

    def test_rejects_bad_field_count(self):
        text = "repro-trace v1\ndemo ref 1\n0 1000 1\n"
        with pytest.raises(TraceFormatError):
            BranchTrace.loads(text)

    def test_rejects_non_numeric(self):
        text = "repro-trace v1\ndemo ref 1\n0 zzzz 1 1\n"
        with pytest.raises(TraceFormatError):
            BranchTrace.loads(text)

    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=0, max_value=2**40).map(lambda a: a * 4),
            st.booleans(),
            st.integers(min_value=1, max_value=100),
        ),
        max_size=50,
    ))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, records):
        trace = make_trace(records)
        loaded = BranchTrace.loads(trace.dumps())
        assert loaded.site_indices == trace.site_indices
        assert loaded.addresses == trace.addresses
        assert loaded.outcomes == trace.outcomes
        assert loaded.gaps == trace.gaps


class TestNpzFormat:
    def test_roundtrip(self, tmp_path):
        trace = make_trace(SIMPLE)
        path = str(tmp_path / "t.npz")
        trace.save_npz(path)
        loaded = BranchTrace.load_npz(path)
        assert loaded.program_name == trace.program_name
        assert loaded.input_name == trace.input_name
        assert loaded.site_indices == trace.site_indices
        assert loaded.addresses == trace.addresses
        assert loaded.outcomes == trace.outcomes
        assert loaded.gaps == trace.gaps

    def test_matches_text_format(self, tmp_path):
        trace = make_trace(SIMPLE)
        npz_path = str(tmp_path / "t.npz")
        trace.save_npz(npz_path)
        from_npz = BranchTrace.load_npz(npz_path)
        from_text = BranchTrace.loads(trace.dumps())
        assert from_npz.addresses == from_text.addresses
        assert from_npz.outcomes == from_text.outcomes

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError):
            BranchTrace.load_npz(str(tmp_path / "missing.npz"))

    def test_real_workload_roundtrip(self, tmp_path, gcc_trace):
        path = str(tmp_path / "gcc.npz")
        gcc_trace.save_npz(path)
        loaded = BranchTrace.load_npz(path)
        assert loaded.addresses == gcc_trace.addresses
        assert loaded.instruction_count == gcc_trace.instruction_count
