"""Behavioural tests for the five dynamic predictors plus baselines.

Each predictor is exercised on the branch population it is designed for
(the paper's Section 2 characterizations) and on the population it is
known to fail on, so a regression that silently weakens a scheme's core
capability fails loudly.
"""

import pytest

from repro.errors import ConfigurationError
from repro.predictors.agree import AgreePredictor
from repro.predictors.alwaystaken import AlwaysTakenPredictor, StaticBiasPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.bimode import BiModePredictor
from repro.predictors.ghist import GhistPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.gskew import TwoBcGskewPredictor
from repro.arch.isa import HintBits


def run_stream(predictor, stream):
    """Run (address, taken) pairs; return accuracy."""
    correct = 0
    for address, taken in stream:
        predicted = predictor.predict(address)
        predictor.update(address, taken, predicted)
        if predicted == taken:
            correct += 1
    return correct / len(stream)


def biased_stream(address, n, direction=True):
    return [(address, direction)] * n


def loop_stream(address, trip, loops):
    stream = []
    for _ in range(loops):
        stream.extend([(address, True)] * (trip - 1))
        stream.append((address, False))
    return stream


def alternating_stream(address, n):
    return [(address, i % 2 == 0) for i in range(n)]


ALL_PREDICTORS = [
    lambda: BimodalPredictor(1024),
    lambda: GhistPredictor(1024),
    lambda: GsharePredictor(1024),
    lambda: BiModePredictor(direction_entries=512, choice_entries=1024),
    lambda: TwoBcGskewPredictor(bank_entries=512),
    lambda: AgreePredictor(1024),
]


class TestProtocolConformance:
    @pytest.mark.parametrize("factory", ALL_PREDICTORS)
    def test_predict_returns_bool(self, factory):
        predictor = factory()
        assert isinstance(predictor.predict(0x1000), bool)

    @pytest.mark.parametrize("factory", ALL_PREDICTORS)
    def test_accessed_within_tables(self, factory):
        predictor = factory()
        predictor.predict(0x1F2C)
        entry_counts = predictor.table_entry_counts()
        for table_id, index in predictor.accessed():
            assert 0 <= table_id < len(entry_counts)
            assert 0 <= index < entry_counts[table_id]

    @pytest.mark.parametrize("factory", ALL_PREDICTORS)
    def test_size_bytes_positive(self, factory):
        assert factory().size_bytes > 0

    @pytest.mark.parametrize("factory", ALL_PREDICTORS)
    def test_reset_restores_initial_predictions(self, factory):
        predictor = factory()
        stream = biased_stream(0x1000, 50) + loop_stream(0x2000, 4, 10)
        run_stream(predictor, stream)
        after_training = predictor.predict(0x1000)
        predictor.reset()
        fresh = factory()
        assert predictor.predict(0x1000) == fresh.predict(0x1000)
        # Training definitely changed something relative to fresh state
        # for this stream (taken-biased).
        assert after_training is True

    @pytest.mark.parametrize("factory", ALL_PREDICTORS)
    def test_learns_all_taken(self, factory):
        # History predictors touch a fresh counter for each history
        # prefix while the register fills, so allow a warm-up allowance.
        accuracy = run_stream(factory(), biased_stream(0x1000, 400))
        assert accuracy > 0.93

    @pytest.mark.parametrize("factory", ALL_PREDICTORS)
    def test_learns_all_not_taken(self, factory):
        accuracy = run_stream(
            factory(), biased_stream(0x1000, 400, direction=False)
        )
        assert accuracy > 0.93


class TestBimodal:
    def test_counter_hysteresis_on_loop(self):
        # Classic result: a 2-bit bimodal mispredicts a trip-N loop once
        # per loop (the exit), not twice.
        predictor = BimodalPredictor(256)
        stream = loop_stream(0x1000, 8, 50)
        accuracy = run_stream(predictor, stream)
        assert accuracy == pytest.approx(1 - 50 / len(stream), abs=0.02)

    def test_cannot_learn_alternation(self):
        accuracy = run_stream(BimodalPredictor(256), alternating_stream(0x1000, 400))
        assert accuracy < 0.6

    def test_aliasing_two_branches_same_index(self):
        predictor = BimodalPredictor(4)  # tiny: foster collisions
        # Two branches mapping to the same counter with opposite
        # behaviour should destroy each other's accuracy.
        address_a = 0x1000
        address_b = address_a + 4 * 4  # same index mod 4
        stream = []
        for _ in range(200):
            stream.append((address_a, True))
            stream.append((address_b, False))
        accuracy = run_stream(predictor, stream)
        assert accuracy < 0.7

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            BimodalPredictor(100)


class TestGhist:
    def test_learns_alternation_via_history(self):
        accuracy = run_stream(GhistPredictor(256), alternating_stream(0x1000, 600))
        assert accuracy > 0.9

    def test_learns_short_loop_exit(self):
        predictor = GhistPredictor(256)  # 8-bit history > trip 4
        accuracy = run_stream(predictor, loop_stream(0x1000, 4, 200))
        assert accuracy > 0.95

    def test_history_length_bounds(self):
        with pytest.raises(ConfigurationError):
            GhistPredictor(256, history_length=4)   # < width
        with pytest.raises(ConfigurationError):
            GhistPredictor(256, history_length=20)  # > 2*width

    def test_shift_history_changes_index(self):
        predictor = GhistPredictor(256)
        predictor.predict(0x1000)
        index_before = predictor.accessed()[0][1]
        predictor.shift_history(True)
        predictor.predict(0x1000)
        index_after = predictor.accessed()[0][1]
        assert index_before != index_after


class TestGshare:
    def test_learns_alternation(self):
        accuracy = run_stream(GsharePredictor(256), alternating_stream(0x1000, 600))
        assert accuracy > 0.9

    def test_default_history_is_short(self):
        predictor = GsharePredictor(1 << 14)
        assert predictor.history.length == 8

    def test_explicit_history_respected(self):
        predictor = GsharePredictor(256, history_length=6)
        assert predictor.history.length == 6

    def test_address_disambiguates_same_history(self):
        # Two branches under identical history must get different
        # counters (usually) thanks to the PC XOR.
        predictor = GsharePredictor(1024, history_length=4)
        predictor.predict(0x1000)
        index_a = predictor.accessed()[0][1]
        predictor.predict(0x2008)
        index_b = predictor.accessed()[0][1]
        assert index_a != index_b


class TestBiMode:
    def test_biased_branches_separate_banks(self):
        predictor = BiModePredictor(direction_entries=256, choice_entries=512)
        # Train a mostly-taken and a mostly-not-taken branch.
        stream = []
        for _ in range(100):
            stream.append((0x1000, True))
            stream.append((0x1004, False))
        run_stream(predictor, stream)
        predictor.predict(0x1000)
        bank_taken = predictor.accessed()[0][0]
        predictor.predict(0x1004)
        bank_not_taken = predictor.accessed()[0][0]
        assert bank_taken == 1
        assert bank_not_taken == 0

    def test_partial_update_preserves_choice(self):
        # When the choice is wrong but the selected bank predicts
        # correctly, the choice counter must NOT train toward the outcome.
        predictor = BiModePredictor(direction_entries=256, choice_entries=512)
        address = 0x1000
        # Drive choice strongly taken and the taken-bank strongly
        # not-taken (so choice is "wrong" but the bank is right).
        choice_index = (address >> 2) & (512 - 1)
        predictor.choice.values[choice_index] = 3
        # Determine the direction index the predictor will use.
        predicted = predictor.predict(address)
        bank, direction_index = predictor.accessed()[0]
        predictor.direction_banks[bank].values[direction_index] = 0
        predictor.predict(address)
        before = predictor.choice.values[choice_index]
        predictor.update(address, False, False)  # outcome not taken, correct
        assert predictor.choice.values[choice_index] == before

    def test_choice_trains_normally_otherwise(self):
        predictor = BiModePredictor(direction_entries=256, choice_entries=512)
        address = 0x1000
        choice_index = (address >> 2) & (512 - 1)
        before = predictor.choice.values[choice_index]
        predicted = predictor.predict(address)
        predictor.update(address, True, predicted)
        assert predictor.choice.values[choice_index] == before + 1


class TestTwoBcGskew:
    def test_bank_histories_default_shape(self):
        predictor = TwoBcGskewPredictor(bank_entries=1024)  # width 10
        assert predictor.g0_history == 5
        assert predictor.g1_history == 10
        assert predictor.meta_history == 6

    def test_banks_use_different_indices(self):
        predictor = TwoBcGskewPredictor(bank_entries=1024)
        for _ in range(12):
            predictor.predict(0x1F3C)
            predictor.update(0x1F3C, True, True)
        predictor.predict(0x1F3C)
        accessed = predictor.accessed()
        indices = {index for _, index in accessed}
        # With non-trivial history the four banks should not all agree on
        # one index (the whole point of skewed indexing).
        assert len(indices) > 1

    def test_bad_prediction_trains_all_gskew_banks(self):
        predictor = TwoBcGskewPredictor(bank_entries=256)
        predicted = predictor.predict(0x1000)
        taken = not predicted
        before = [
            predictor.banks[b].values[predictor._idx[b]] for b in range(3)
        ]
        predictor.update(0x1000, taken, predicted)
        after = [
            predictor.banks[b].values[predictor._idx[b]] for b in range(3)
        ]
        for b in range(3):
            moved_toward = after[b] - before[b]
            if taken:
                assert moved_toward >= 0
            else:
                assert moved_toward <= 0

    def test_correct_prediction_trains_participants_only(self):
        predictor = TwoBcGskewPredictor(bank_entries=256)
        # Make the meta choose gskew, with G0 agreeing and G1 disagreeing.
        predictor.predict(0x1000)
        idx = list(predictor._idx)
        predictor.banks[3].values[idx[3]] = 3   # meta -> gskew side
        predictor.banks[0].values[idx[0]] = 3   # BIM taken
        predictor.banks[1].values[idx[1]] = 3   # G0 taken
        predictor.banks[2].values[idx[2]] = 0   # G1 not taken
        predicted = predictor.predict(0x1000)
        assert predicted is True  # majority taken
        g1_before = predictor.banks[2].values[predictor._idx[2]]
        predictor.update(0x1000, True, predicted)
        # G1 disagreed with the (correct) outcome and must not train.
        assert predictor.banks[2].values[idx[2]] == g1_before

    def test_meta_trains_only_on_disagreement(self):
        predictor = TwoBcGskewPredictor(bank_entries=256)
        predictor.predict(0x1000)
        idx = list(predictor._idx)
        # Force agreement between bimodal and majority.
        for b in range(3):
            predictor.banks[b].values[idx[b]] = 3
        meta_before = predictor.banks[3].values[idx[3]]
        predicted = predictor.predict(0x1000)
        predictor.update(0x1000, True, predicted)
        assert predictor.banks[3].values[idx[3]] == meta_before

    def test_learns_alternation(self):
        accuracy = run_stream(
            TwoBcGskewPredictor(bank_entries=512),
            alternating_stream(0x1000, 600),
        )
        assert accuracy > 0.9

    def test_rejects_tiny_banks(self):
        with pytest.raises(ConfigurationError):
            TwoBcGskewPredictor(bank_entries=2)


class TestAgree:
    def test_bias_latches_first_outcome(self):
        predictor = AgreePredictor(256)
        predictor.predict(0x1000)
        predictor.update(0x1000, False, False)
        assert predictor.bias[(0x1000 >> 2) & (256 - 1)] == 0

    def test_preset_bias(self):
        predictor = AgreePredictor(256)
        predictor.preset_bias(0x1000, True)
        assert predictor.predict(0x1000) is True

    def test_aliased_branches_with_opposite_bias_coexist(self):
        # The agree transform: two branches sharing an agree counter but
        # with correct bias bits both predict well -- the collision is
        # constructive.  Use addresses that collide in the counter table
        # but differ in the bias table.
        predictor = AgreePredictor(entries=16, bias_entries=1024,
                                   history_length=1)
        address_a = 0x1000
        address_b = 0x1000 + 4 * 16 * 4  # same counter index pattern
        predictor.preset_bias(address_a, True)
        predictor.preset_bias(address_b, False)
        stream = []
        for _ in range(200):
            stream.append((address_a, True))
            stream.append((address_b, False))
        accuracy = run_stream(predictor, stream)
        assert accuracy > 0.9


class TestBaselines:
    def test_always_taken(self):
        predictor = AlwaysTakenPredictor()
        assert predictor.predict(0x1000) is True
        predictor.update(0x1000, False, True)
        assert predictor.predict(0x1000) is True
        assert predictor.size_bytes == 0.0

    def test_static_bias_predictor(self):
        hints = {
            0x1000: HintBits.static(True),
            0x2000: HintBits.static(False),
        }
        predictor = StaticBiasPredictor(hints, default_taken=True)
        assert predictor.predict(0x1000) is True
        assert predictor.predict(0x2000) is False
        assert predictor.predict(0x3000) is True  # default

    def test_static_bias_ignores_non_static_hints(self):
        predictor = StaticBiasPredictor({0x1000: HintBits.dynamic()},
                                        default_taken=False)
        assert predictor.predict(0x1000) is False
