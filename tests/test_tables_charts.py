"""Tests for the text table and chart renderers."""

import pytest

from repro.utils.charts import render_bar_chart, render_line_chart
from repro.utils.tables import (
    format_float,
    format_percent,
    format_value,
    render_table,
)


class TestFormatters:
    def test_format_float(self):
        assert format_float(3.14159) == "3.14"
        assert format_float(3.14159, digits=4) == "3.1416"

    def test_format_percent(self):
        assert format_percent(0.759) == "75.9%"
        assert format_percent(-0.014) == "-1.4%"
        assert format_percent(1.0) == "100.0%"

    def test_format_value_none(self):
        assert format_value(None) == "-"

    def test_format_value_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_format_value_float(self):
        assert format_value(2.5) == "2.50"

    def test_format_value_str(self):
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["prog", "MISP/KI"], [["gcc", 12.5]])
        lines = text.splitlines()
        assert lines[0].startswith("prog")
        assert lines[2].startswith("gcc")
        assert lines[2].rstrip().endswith("12.50")

    def test_title(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "=" * len("My Table")

    def test_column_width_grows_with_data(self):
        text = render_table(["x", "y"], [["averyverylongvalue", 1]])
        separator_line = text.splitlines()[1]
        assert len(separator_line) > len("averyverylongvalue")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestLineChart:
    def test_contains_series_glyphs_and_legend(self):
        chart = render_line_chart(
            ["1K", "2K"], {"none": [5.0, 3.0], "static": [4.0, 2.0]}
        )
        assert "*=none" in chart
        assert "o=static" in chart

    def test_axis_labels_show_extremes(self):
        chart = render_line_chart(["a", "b"], {"s": [1.0, 9.0]})
        assert "9.00" in chart
        assert "1.00" in chart

    def test_constant_series_ok(self):
        chart = render_line_chart(["a", "b"], {"s": [2.0, 2.0]})
        assert "*" in chart

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            render_line_chart(["a"], {})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_line_chart(["a", "b"], {"s": [1.0]})


class TestBarChart:
    def test_bars_scale(self):
        chart = render_bar_chart(["small", "large"], [1.0, 10.0], width=20)
        lines = chart.splitlines()
        assert lines[0].count("#") < lines[1].count("#")
        assert lines[1].count("#") == 20

    def test_negative_values_distinct(self):
        chart = render_bar_chart(["down"], [-0.5])
        assert "<" in chart
        assert "#" not in chart.splitlines()[-1]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            render_bar_chart([], [])

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])

    def test_all_zero_values(self):
        chart = render_bar_chart(["z"], [0.0])
        assert "0.00" in chart
