"""Tests for the predictor service: protocol, batching, serving, load.

The load-bearing guarantees:

* protocol -- messages round-trip exactly, version skew and malformed
  cells fail loudly at the boundary (never inside a batch);
* batching -- N concurrent compatible submissions coalesce into one
  executor batch, and a warm cache resolves inline with *zero*
  simulations (the property the CI service job gates on);
* backpressure -- a full queue sheds load with ``rejected`` +
  ``retry_after`` instead of buffering without bound;
* shutdown -- draining completes queued work, then refuses new work;
* loadgen -- the report's shape and hit-rate accounting are what the
  CI gate parses.

Socket-using tests skip cleanly where loopback TCP is unavailable
(sandboxed runners); the scheduler tests run everywhere, since the
batching guarantees do not need a socket to be exercised.
"""

from __future__ import annotations

import asyncio
import json
import socket

import pytest

from repro.core.metrics import SimulationResult
from repro.errors import ServiceError
from repro.runner import Cell, CellExecutor, ResultCache
from repro.service import (
    BatchingScheduler,
    PredictorService,
    ProtocolError,
    QueueFullError,
    RequestTimeoutError,
    ServiceConfig,
)
from repro.service import protocol
from repro.service.batching import DrainingError
from repro.service.client import ServiceClient, wait_healthy
from repro.service.loadgen import default_mix, percentile, run_loadgen


def _loopback_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
        return True
    except OSError:
        return False


needs_loopback = pytest.mark.skipif(
    not _loopback_available(),
    reason="loopback TCP unavailable (sandboxed runner)",
)

WIRE_CELL = {"program": "gcc", "predictor": "gshare", "size_bytes": 1024}


class TestProtocol:
    def test_request_round_trips_exactly(self):
        message = protocol.request("health", tag="7")
        decoded = protocol.decode(
            protocol.encode(message), kinds=protocol.REQUEST_TYPES
        )
        assert decoded == message

    def test_response_round_trips_exactly(self):
        message = protocol.response("result", "42", result={"x": 1})
        decoded = protocol.decode(
            protocol.encode(message), kinds=protocol.RESPONSE_TYPES
        )
        assert decoded == message

    def test_version_enforced_on_requests_only(self):
        message = protocol.request("health")
        message["v"] = 99
        line = protocol.encode(message)
        with pytest.raises(ProtocolError, match="version"):
            protocol.decode(line, kinds=protocol.REQUEST_TYPES)
        # Without the request-kinds restriction the version is opaque.
        assert protocol.decode(line)["v"] == 99

    def test_unknown_type_rejected(self):
        line = protocol.encode({"type": "bogus", "v": 1})
        with pytest.raises(ProtocolError, match="unknown message type"):
            protocol.decode(line, kinds=protocol.REQUEST_TYPES)

    @pytest.mark.parametrize("line", [
        b"not json\n",
        b"[1, 2]\n",
        b'{"no": "type"}\n',
        b'{"type": 5}\n',
        b'{"type": "health", "v": 1, "tag": 3}\n',
        b"\xff\xfe\n",
    ])
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(ProtocolError):
            protocol.decode(line, kinds=protocol.REQUEST_TYPES)

    def test_oversized_message_rejected_both_ways(self):
        blob = "x" * protocol.MAX_LINE_BYTES
        with pytest.raises(ProtocolError, match="caps lines"):
            protocol.encode({"type": "submit", "v": 1, "blob": blob})
        with pytest.raises(ProtocolError, match="caps lines"):
            protocol.decode(b"x" * (protocol.MAX_LINE_BYTES + 1))

    def test_cell_round_trips_through_wire_format(self):
        cell = Cell.make(
            "gcc", "gshare", 2048, scheme="static_95",
            measure_input="train", cutoff=0.9, factor=1.1,
            track_collisions=True,
        )
        assert protocol.cell_from_wire(protocol.cell_to_wire(cell)) == cell

    def test_cell_defaults_match_cell_make_defaults(self):
        assert protocol.cell_from_wire(dict(WIRE_CELL)) \
            == Cell.make("gcc", "gshare", 1024)

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {**WIRE_CELL, "program": "doom"},
        {**WIRE_CELL, "predictor": "oracle"},
        {**WIRE_CELL, "size_bytes": True},
        {**WIRE_CELL, "size_bytes": -4},
        {**WIRE_CELL, "scheme": "psychic"},
        {**WIRE_CELL, "measure_input": "test"},
        {**WIRE_CELL, "cutoff": "high"},
        {**WIRE_CELL, "track_collisions": 1},
        {**WIRE_CELL, "predictor_kwargs": {"bad": [1, 2]}},
        {**WIRE_CELL, "surprise": 1},
    ])
    def test_invalid_cells_rejected_at_the_boundary(self, payload):
        with pytest.raises(ProtocolError):
            protocol.cell_from_wire(payload)


class TestBatchingScheduler:
    def test_concurrent_submissions_coalesce_into_one_batch(self, tiny_ctx):
        cells = [Cell.make("gcc", "gshare", 1 << (9 + i)) for i in range(4)]

        async def main():
            executor = CellExecutor(tiny_ctx, jobs=1, persistent=True)
            scheduler = BatchingScheduler(executor, window_s=0.2)
            await scheduler.start()
            results = await asyncio.gather(
                *(scheduler.submit(cell) for cell in cells)
            )
            await scheduler.stop()
            return executor, scheduler, results

        executor, scheduler, results = asyncio.run(main())
        assert all(isinstance(r, SimulationResult) for r in results)
        assert executor.summary.batches == 1
        assert executor.summary.simulated == len(cells)
        assert scheduler.stats.batches == 1
        assert scheduler.stats.batched_cells == len(cells)
        assert scheduler.stats.completed == len(cells)
        assert scheduler.stats.cache_hits == 0

    def test_identical_cells_in_one_batch_simulate_once(self, tiny_ctx):
        cell = Cell.make("gcc", "bimodal", 1024)

        async def main():
            executor = CellExecutor(tiny_ctx, jobs=1, persistent=True)
            scheduler = BatchingScheduler(executor, window_s=0.2)
            await scheduler.start()
            first, second = await asyncio.gather(
                scheduler.submit(cell), scheduler.submit(cell)
            )
            await scheduler.stop()
            return executor, scheduler, first, second

        executor, scheduler, first, second = asyncio.run(main())
        assert first == second
        assert executor.summary.simulated == 1
        assert scheduler.stats.batches == 1
        assert scheduler.stats.batched_cells == 2

    def test_warm_cache_resolves_inline_with_zero_simulations(
        self, tiny_ctx, tmp_path
    ):
        cache = ResultCache(str(tmp_path / "cache"))
        cell = Cell.make("gcc", "gshare", 1024)
        # Warm the persistent store the way any prior run would.
        baseline = CellExecutor(tiny_ctx, jobs=1, cache=cache)
        expected = baseline.execute([cell])[cell]

        async def main():
            executor = CellExecutor(
                tiny_ctx, jobs=1, cache=cache, persistent=True
            )
            scheduler = BatchingScheduler(executor, window_s=0.0)
            await scheduler.start()
            first = await scheduler.submit(cell)
            second = await scheduler.submit(cell)
            await scheduler.stop()
            return executor, scheduler, first, second

        executor, scheduler, first, second = asyncio.run(main())
        assert first == expected and second == expected
        assert executor.summary.simulated == 0
        assert scheduler.stats.cache_hits == 2
        assert scheduler.stats.batches == 0

    def test_full_queue_rejects_with_retry_after(self, tiny_ctx):
        async def main():
            executor = CellExecutor(tiny_ctx, jobs=1, persistent=True)
            scheduler = BatchingScheduler(
                executor, window_s=0.2, queue_limit=1
            )
            await scheduler.start()
            first = asyncio.ensure_future(
                scheduler.submit(Cell.make("gcc", "gshare", 512))
            )
            await asyncio.sleep(0)  # let the first submission enqueue
            with pytest.raises(QueueFullError) as info:
                await scheduler.submit(Cell.make("gcc", "gshare", 1024))
            assert info.value.retry_after > 0
            await first
            await scheduler.stop()
            return scheduler

        scheduler = asyncio.run(main())
        assert scheduler.stats.rejected == 1
        assert scheduler.stats.completed == 1

    def test_request_timeout_surfaces_but_batch_still_completes(
        self, tiny_ctx
    ):
        async def main():
            executor = CellExecutor(tiny_ctx, jobs=1, persistent=True)
            scheduler = BatchingScheduler(
                executor, window_s=0.2, timeout_s=0.01
            )
            await scheduler.start()
            with pytest.raises(RequestTimeoutError):
                await scheduler.submit(Cell.make("gcc", "bimodal", 512))
            await scheduler.stop()
            return executor, scheduler

        executor, scheduler = asyncio.run(main())
        assert scheduler.stats.timeouts == 1
        # The drain still ran the batch the timed-out cell rode in.
        assert executor.summary.simulated == 1

    def test_graceful_drain_completes_queued_work_then_refuses(
        self, tiny_ctx
    ):
        cells = [Cell.make("gcc", "gshare", 1 << (9 + i)) for i in range(3)]

        async def main():
            executor = CellExecutor(tiny_ctx, jobs=1, persistent=True)
            scheduler = BatchingScheduler(executor, window_s=0.2)
            await scheduler.start()
            tasks = [
                asyncio.ensure_future(scheduler.submit(cell))
                for cell in cells
            ]
            await asyncio.sleep(0)  # all three enqueue before the drain
            await scheduler.stop()
            results = await asyncio.gather(*tasks)
            with pytest.raises(DrainingError):
                await scheduler.submit(Cell.make("gcc", "bimodal", 512))
            return scheduler, results

        scheduler, results = asyncio.run(main())
        assert all(isinstance(r, SimulationResult) for r in results)
        assert scheduler.stats.completed == len(cells)
        assert scheduler.stats.failures == 0


@needs_loopback
class TestPredictorService:
    def test_end_to_end_round_trip_and_drained_stats(
        self, tiny_ctx, tmp_path
    ):
        stats_file = tmp_path / "stats.json"

        async def main():
            service = PredictorService(
                tiny_ctx,
                ServiceConfig(port=0, window_s=0.0),
                cache=ResultCache(str(tmp_path / "cache")),
            )
            await service.start()
            client = await ServiceClient.connect("127.0.0.1", service.port)
            async with client:
                health = await client.health()
                assert health["status"] == "ok"
                assert health["v"] == protocol.PROTOCOL_VERSION

                cold = await client.submit(dict(WIRE_CELL))
                assert cold["type"] == "result"
                assert cold["cached"] is False
                warm = await client.submit(dict(WIRE_CELL))
                assert warm["cached"] is True
                assert warm["result"] == cold["result"]

                other = {"program": "gcc", "predictor": "bimodal",
                         "size_bytes": 1024}
                messages = await client.stream([dict(WIRE_CELL), other])
                assert {m["type"] for m in messages} == {"result"}
                assert sorted(m["index"] for m in messages) == [0, 1]

                stats = await client.stats()
                assert stats["scheduler"]["submitted"] == 4
            await service.stop(stats_path=str(stats_file))

        asyncio.run(main())
        with open(stats_file, encoding="utf-8") as stream:
            payload = json.load(stream)
        assert payload["scheduler"]["completed"] == 4
        assert payload["scheduler"]["cache_hits"] == 2
        assert payload["executor"]["simulated"] == 2
        assert payload["store"]["misses"] >= 2

    def test_async_submit_poll_and_eviction(self, tiny_ctx):
        async def main():
            service = PredictorService(
                tiny_ctx, ServiceConfig(port=0, window_s=0.0)
            )
            await service.start()
            client = await ServiceClient.connect("127.0.0.1", service.port)
            async with client:
                accepted = await client.submit(dict(WIRE_CELL), wait=False)
                assert accepted["type"] == "accepted"
                request_id = accepted["request_id"]
                for _ in range(500):
                    status = await client.call(
                        "status", request_id=request_id
                    )
                    if status.get("state") == "done":
                        break
                    await asyncio.sleep(0.01)
                else:
                    raise AssertionError("async submission never finished")
                result = await client.call("result", request_id=request_id)
                assert result["type"] == "result"
                assert "mispredict_rate" in result["result"] \
                    or result["result"]
                # Polling the result evicts the registry entry.
                gone = await client.call("result", request_id=request_id)
                assert gone["type"] == "error"
                unknown = await client.call("status", request_id=10_000)
                assert unknown["type"] == "error"
            await service.stop()

        asyncio.run(main())

    def test_malformed_and_version_skewed_lines_get_error_replies(
        self, tiny_ctx
    ):
        async def main():
            service = PredictorService(
                tiny_ctx, ServiceConfig(port=0, window_s=0.0)
            )
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            writer.write(b"not json\n")
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["type"] == "error"
            assert reply["v"] == protocol.PROTOCOL_VERSION

            writer.write(b'{"type": "health", "v": 99, "tag": "t"}\n')
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["type"] == "error"
            assert "version" in reply["error"]
            assert reply["tag"] == "t"

            bad_cell = {"program": "doom", "predictor": "gshare",
                        "size_bytes": 64}
            writer.write(protocol.encode(
                protocol.request("submit", tag="c", cell=bad_cell)
            ))
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["type"] == "error"
            assert "program" in reply["error"]
            writer.close()
            await writer.wait_closed()
            await service.stop()

        asyncio.run(main())

    def test_shutdown_request_drains_and_persists_stats(
        self, tiny_ctx, tmp_path
    ):
        stats_file = tmp_path / "drained.json"

        async def main():
            service = PredictorService(
                tiny_ctx, ServiceConfig(port=0, window_s=0.0)
            )
            await service.start()
            server = asyncio.ensure_future(
                service.run(stats_path=str(stats_file))
            )
            await wait_healthy("127.0.0.1", service.port,
                               timeout_s=10.0, interval_s=0.05)
            client = await ServiceClient.connect("127.0.0.1", service.port)
            async with client:
                await client.submit(dict(WIRE_CELL))
                reply = await client.shutdown()
                assert reply["type"] == "ok"
                assert reply["draining"] is True
            await server

        asyncio.run(main())
        with open(stats_file, encoding="utf-8") as stream:
            payload = json.load(stream)
        assert payload["scheduler"]["completed"] == 1
        assert payload["connections"] >= 1

    def test_wait_healthy_fails_cleanly_when_nothing_listens(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServiceError, match="did not become healthy"):
            asyncio.run(wait_healthy("127.0.0.1", port,
                                     timeout_s=0.2, interval_s=0.05))


class TestLoadgenReportMath:
    def test_percentile_interpolates(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 4.0
        assert percentile(samples, 0.5) == pytest.approx(2.5)
        assert percentile([], 0.5) == 0.0

    def test_default_mix_is_deterministic_and_bounded(self):
        mix = default_mix(size=4)
        assert mix == default_mix(size=4)
        assert len(mix) == 4
        assert len({json.dumps(c, sort_keys=True) for c in mix}) == 4
        with pytest.raises(ServiceError):
            default_mix(size=0)
        with pytest.raises(ServiceError):
            default_mix(size=100)

    @pytest.mark.parametrize("kwargs", [
        dict(requests=0),
        dict(concurrency=0),
        dict(mode="sideways"),
        dict(mode="open"),  # open loop needs a positive rate
        dict(mode="open", rate=-1.0),
    ])
    def test_loadgen_validates_before_connecting(self, kwargs):
        with pytest.raises(ServiceError):
            asyncio.run(run_loadgen("127.0.0.1", 1, **kwargs))


@needs_loopback
class TestLoadgenAgainstService:
    def test_cold_then_warm_runs_and_report_shape(self, tiny_ctx, tmp_path):
        mix = default_mix(size=2)

        async def main():
            service = PredictorService(
                tiny_ctx, ServiceConfig(port=0, window_s=0.0)
            )
            await service.start()
            cold = await run_loadgen("127.0.0.1", service.port,
                                     requests=8, concurrency=2, mix=mix)
            warm = await run_loadgen("127.0.0.1", service.port,
                                     requests=12, concurrency=3, mix=mix)
            await service.stop()
            return cold, warm

        cold, warm = asyncio.run(main())
        assert cold.completed == 8 and cold.errors == 0
        # Two distinct cells simulate once each; the rest hit the memo.
        assert cold.hit_rate == pytest.approx(6 / 8)
        assert warm.completed == 12
        assert warm.errors == 0 and warm.rejected == 0
        assert warm.hit_rate == 1.0
        assert warm.error_rate == 0.0
        assert warm.requests_per_second > 0
        assert warm.p50_ms <= warm.p90_ms <= warm.p99_ms

        payload = warm.to_dict()
        for key in ("mode", "requests", "concurrency", "rate", "duration_s",
                    "completed", "errors", "rejected", "hit_rate",
                    "error_rate", "requests_per_second", "p50_ms", "p90_ms",
                    "p99_ms"):
            assert key in payload
        report_path = tmp_path / "latency-report.json"
        warm.write_json(str(report_path))
        with open(report_path, encoding="utf-8") as stream:
            assert json.load(stream)["hit_rate"] == 1.0
        assert "requests/s" in warm.describe()

    def test_open_loop_mode_completes_all_requests(self, tiny_ctx):
        async def main():
            service = PredictorService(
                tiny_ctx, ServiceConfig(port=0, window_s=0.0)
            )
            await service.start()
            report = await run_loadgen(
                "127.0.0.1", service.port, requests=10, concurrency=2,
                mode="open", rate=500.0, mix=default_mix(size=1),
                wait_health_s=10.0,
            )
            await service.stop()
            return report

        report = asyncio.run(main())
        assert report.mode == "open"
        assert report.rate == 500.0
        assert report.completed == 10
        assert report.errors == 0
