"""Tests for the concurrency rule family (CONC, analysis layer 6).

Each fixture tree is a miniature of the real package layout -- the
``runner/store.py`` subject, the ``runner/engine.py``/``runner/cells.py``
anchors, and the ``utils/io.py`` lock seam -- so the suffix anchoring,
import-provenance seam recognition, lock-region spans, and seam-blocked
reachability all exercise exactly what they run against ``src/repro``.
The seeded-bug cases (an unlocked unlink, a pre-lock directory scan, a
nested lock, a leaked descriptor, a worker/parent-shared raw write) are
the ISSUE's acceptance fixtures: each must be caught by its rule.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.rules import select_rules

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "tree"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


BASE_FILES = {
    "pkg/utils/io.py": """
        import contextlib
        import os
        import tempfile

        def atomic_write_text(path, text):
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".")
            try:
                with os.fdopen(fd, "w") as stream:
                    stream.write(text)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

        @contextlib.contextmanager
        def shard_lock(path):
            fd = os.open(path, os.O_CREAT | os.O_RDWR)
            try:
                yield
            finally:
                os.close(fd)
    """,
    "pkg/runner/store.py": """
        import json
        import os

        from pkg.utils.io import atomic_write_text, shard_lock

        MANIFEST = "manifest.json"

        class Store:
            def __init__(self, root):
                self.root = root
                self.evictions = 0

            def entry_path(self, key):
                return os.path.join(self.root, key[:2], key + ".json")

            def _lock_path(self, shard):
                return os.path.join(self.root, shard, ".lock")

            def _manifest_path(self, shard):
                return os.path.join(self.root, shard, MANIFEST)

            def _load_manifest(self, shard):
                try:
                    with open(self._manifest_path(shard), "r") as stream:
                        return json.load(stream)
                except (OSError, ValueError):
                    return {"entries": {}}

            def _stamp_locked(self, shard, key, size):
                manifest = self._load_manifest(shard)
                manifest["entries"][key] = size
                atomic_write_text(self._manifest_path(shard),
                                  json.dumps(manifest, sort_keys=True))

            def _remove_locked(self, shard, keys):
                manifest = self._load_manifest(shard)
                removed = 0
                for key in keys:
                    if manifest["entries"].pop(key, None) is not None:
                        removed += 1
                    try:
                        os.unlink(self.entry_path(key))
                    except FileNotFoundError:
                        pass
                atomic_write_text(self._manifest_path(shard),
                                  json.dumps(manifest, sort_keys=True))
                return removed

            def write(self, key, payload):
                shard = key[:2]
                text = json.dumps(payload, sort_keys=True)
                os.makedirs(os.path.join(self.root, shard), exist_ok=True)
                with shard_lock(self._lock_path(shard)):
                    atomic_write_text(self.entry_path(key), text)
                    self._stamp_locked(shard, key, len(text))

            def evict(self, doomed):
                for shard in sorted(doomed):
                    with shard_lock(self._lock_path(shard)):
                        self.evictions += self._remove_locked(
                            shard, doomed[shard])
    """,
    "pkg/runner/cache.py": """
        from pkg.runner.store import Store

        class ResultCache:
            def __init__(self, root):
                self._store = Store(root)

            def put(self, key, payload):
                self._store.write(key, payload)
    """,
    "pkg/runner/cells.py": """
        def execute_cell(ctx, cell):
            return ctx.run(cell)
    """,
    "pkg/runner/engine.py": """
        from pkg.runner.cache import ResultCache
        from pkg.runner.cells import execute_cell

        def _worker_run(ctx, cell):
            return execute_cell(ctx, cell)

        class CellExecutor:
            def __init__(self, ctx, cache):
                self.ctx = ctx
                self.cache = cache

            def execute(self, cells):
                results = {}
                for cell in cells:
                    result = execute_cell(self.ctx, cell)
                    self.cache.put(str(cell), result)
                    results[cell] = result
                return results
    """,
}


def base_tree(tmp_path: Path, **overrides: str) -> Path:
    files = dict(BASE_FILES)
    files.update(overrides)
    return write_tree(tmp_path, files)


def append(base: str, block: str) -> str:
    """Append a function to a BASE_FILES source, preserving its indent.

    The BASE_FILES literals carry an 8-space base indent that
    ``write_tree`` dedents; appended code must match it or the dedent
    becomes a no-op and the fixture stops parsing.
    """
    return base + textwrap.indent(textwrap.dedent(block), " " * 8)


def lint_select(root: Path, *selectors: str):
    return run_lint([root], select_rules(list(selectors)))


# ---------------------------------------------------------------------------
# CONC001: mutations hold the shard lock


class TestConc001:
    def test_clean_tree_is_quiet(self, tmp_path):
        findings = lint_select(base_tree(tmp_path), "CONC")
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_unlocked_mutation_fires(self, tmp_path):
        source = append(BASE_FILES["pkg/runner/store.py"], """
            def sweep(store, path):
                os.unlink(path)
        """)
        root = base_tree(tmp_path, **{"pkg/runner/store.py": source})
        findings = lint_select(root, "CONC001")
        assert [f.rule for f in findings] == ["CONC001"]
        assert "os.unlink" in findings[0].message
        assert "shard lock" in findings[0].message

    def test_locked_helper_called_without_lock_fires(self, tmp_path):
        source = BASE_FILES["pkg/runner/store.py"].replace(
            "with shard_lock(self._lock_path(shard)):\n"
            "                    atomic_write_text(self.entry_path(key), text)\n"
            "                    self._stamp_locked(shard, key, len(text))",
            "atomic_write_text(self.entry_path(key), text)\n"
            "                self._stamp_locked(shard, key, len(text))",
        )
        assert source != BASE_FILES["pkg/runner/store.py"]
        root = base_tree(tmp_path, **{"pkg/runner/store.py": source})
        findings = lint_select(root, "CONC001")
        assert any("_stamp_locked()" in f.message for f in findings), \
            "\n".join(f.render() for f in findings)

    def test_pre_lock_scan_used_under_lock_fires(self, tmp_path):
        source = append(BASE_FILES["pkg/runner/store.py"], """
            def purge(store, shard):
                names = os.listdir(store.root)
                with shard_lock(store._lock_path(shard)):
                    for name in names:
                        store._remove_locked(shard, [name])
        """)
        root = base_tree(tmp_path, **{"pkg/runner/store.py": source})
        findings = lint_select(root, "CONC001")
        assert len(findings) == 1
        assert "os.listdir" in findings[0].message
        assert "stale" in findings[0].message

    def test_scan_under_the_lock_is_quiet(self, tmp_path):
        source = append(BASE_FILES["pkg/runner/store.py"], """
            def purge(store, shard):
                with shard_lock(store._lock_path(shard)):
                    for name in os.listdir(store.root):
                        store._remove_locked(shard, [name])
        """)
        root = base_tree(tmp_path, **{"pkg/runner/store.py": source})
        assert lint_select(root, "CONC001") == []

    def test_mutation_outside_store_modules_is_out_of_scope(self, tmp_path):
        # CONC001 scopes to store modules; a temp-file unlink in an
        # experiment module is not a shared-store mutation.
        root = base_tree(tmp_path, **{"pkg/experiments/report.py": """
            import os

            def cleanup(path):
                os.unlink(path)
        """})
        assert lint_select(root, "CONC001") == []

    def test_local_shard_lock_lookalike_is_not_the_seam(self, tmp_path):
        # Seam recognition is by import provenance: a module-local
        # function named shard_lock does not create lock regions, so
        # mutations "under" it stay findings.
        source = """
            import os

            def shard_lock(path):
                return path

            def sweep(root, name):
                with shard_lock(root):
                    os.unlink(name)
        """
        root = base_tree(tmp_path, **{"pkg/runner/sweeper.py": source})
        findings = lint_select(root, "CONC001")
        assert len(findings) == 1
        assert "os.unlink" in findings[0].message


# ---------------------------------------------------------------------------
# CONC002: lock discipline


class TestConc002:
    def test_nested_locks_fire(self, tmp_path):
        source = append(BASE_FILES["pkg/runner/store.py"], """
            def migrate(store, a, b):
                with shard_lock(store._lock_path(a)):
                    with shard_lock(store._lock_path(b)):
                        store._remove_locked(a, [])
        """)
        root = base_tree(tmp_path, **{"pkg/runner/store.py": source})
        findings = lint_select(root, "CONC002")
        assert [f.rule for f in findings] == ["CONC002"]
        assert "nested" in findings[0].message

    def test_sequential_locks_are_quiet(self, tmp_path):
        # The clean store's evict() takes shards one at a time.
        assert lint_select(base_tree(tmp_path), "CONC002") == []

    def test_blocking_call_under_lock_fires(self, tmp_path):
        source = BASE_FILES["pkg/runner/store.py"].replace(
            "atomic_write_text(self.entry_path(key), text)",
            "time.sleep(0.1)\n"
            "                    atomic_write_text(self.entry_path(key), text)",
        ).replace("import json", "import json\n        import time")
        root = base_tree(tmp_path, **{"pkg/runner/store.py": source})
        findings = lint_select(root, "CONC002")
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message
        assert "blocking" in findings[0].message

    def test_simulation_under_lock_fires(self, tmp_path):
        source = append(BASE_FILES["pkg/runner/store.py"], """
            def warm(store, shard, trace, predictor):
                with shard_lock(store._lock_path(shard)):
                    return simulate(trace, predictor)
        """)
        root = base_tree(tmp_path, **{"pkg/runner/store.py": source})
        findings = lint_select(root, "CONC002")
        assert len(findings) == 1
        assert "simulate" in findings[0].message

    def test_bare_lock_call_fires(self, tmp_path):
        source = append(BASE_FILES["pkg/runner/store.py"], """
            def grab(store, shard):
                return shard_lock(store._lock_path(shard))
        """)
        root = base_tree(tmp_path, **{"pkg/runner/store.py": source})
        findings = lint_select(root, "CONC002")
        assert len(findings) == 1
        assert "outside a 'with'" in findings[0].message

    def test_bare_acquire_without_finally_release_fires(self, tmp_path):
        root = base_tree(tmp_path, **{"pkg/runner/queue.py": """
            def push(lock, item, items):
                lock.acquire()
                items.append(item)
                lock.release()
        """})
        findings = lint_select(root, "CONC002")
        assert len(findings) == 1
        assert ".acquire()" in findings[0].message

    def test_acquire_with_finally_release_is_quiet(self, tmp_path):
        root = base_tree(tmp_path, **{"pkg/runner/queue.py": """
            def push(lock, item, items):
                lock.acquire()
                try:
                    items.append(item)
                finally:
                    lock.release()
        """})
        assert lint_select(root, "CONC002") == []


# ---------------------------------------------------------------------------
# CONC003: worker/parent-shared code writes only via seams


class TestConc003:
    def test_shared_raw_write_fires(self, tmp_path):
        source = """
            def _note_progress(cell):
                with open("progress.txt", "w") as stream:
                    stream.write(str(cell))

            def execute_cell(ctx, cell):
                _note_progress(cell)
                return ctx.run(cell)
        """
        root = base_tree(tmp_path, **{"pkg/runner/cells.py": source})
        findings = lint_select(root, "CONC003")
        assert [f.rule for f in findings] == ["CONC003"]
        assert "_note_progress" in findings[0].message
        assert "both the pool workers and the parent" in findings[0].message

    def test_shared_path_mutation_fires(self, tmp_path):
        source = """
            import os

            def _rotate_log(path):
                os.replace(path, path + ".old")

            def execute_cell(ctx, cell):
                _rotate_log("run.log")
                return ctx.run(cell)
        """
        root = base_tree(tmp_path, **{"pkg/runner/cells.py": source})
        findings = lint_select(root, "CONC003")
        assert len(findings) == 1
        assert "os.replace" in findings[0].message

    def test_write_through_the_cache_seam_is_quiet(self, tmp_path):
        # The base engine writes every result through ResultCache.put;
        # the store behind it mutates freely -- that is the sanctioned
        # path, and the seam-blocked traversal must not cross into it.
        assert lint_select(base_tree(tmp_path), "CONC003") == []

    def test_parent_only_write_is_quiet(self, tmp_path):
        # A write reachable from the parent but not from any worker
        # entry point is single-process; CONC003 only polices the
        # intersection.
        source = append(BASE_FILES["pkg/runner/engine.py"], """
            def save_report(results):
                with open("report.txt", "w") as stream:
                    stream.write(str(results))

            def render(executor, cells):
                results = executor.execute(cells)
                save_report(results)
                return results
        """)
        root = base_tree(tmp_path, **{"pkg/runner/engine.py": source})
        assert lint_select(root, "CONC003") == []


# ---------------------------------------------------------------------------
# CONC004: descriptor hygiene in store modules


class TestConc004:
    def test_bare_open_fires(self, tmp_path):
        source = BASE_FILES["pkg/runner/store.py"].replace(
            "with open(self._manifest_path(shard), \"r\") as stream:\n"
            "                        return json.load(stream)",
            "stream = open(self._manifest_path(shard), \"r\")\n"
            "                    return json.load(stream)",
        )
        assert source != BASE_FILES["pkg/runner/store.py"]
        root = base_tree(tmp_path, **{"pkg/runner/store.py": source})
        findings = lint_select(root, "CONC004")
        assert [f.rule for f in findings] == ["CONC004"]
        assert "open(...)" in findings[0].message

    def test_os_open_without_finally_close_fires(self, tmp_path):
        source = BASE_FILES["pkg/utils/io.py"].replace(
            "fd = os.open(path, os.O_CREAT | os.O_RDWR)\n"
            "            try:\n"
            "                yield\n"
            "            finally:\n"
            "                os.close(fd)",
            "fd = os.open(path, os.O_CREAT | os.O_RDWR)\n"
            "            yield\n"
            "            os.close(fd)",
        )
        assert source != BASE_FILES["pkg/utils/io.py"]
        root = base_tree(tmp_path, **{"pkg/utils/io.py": source})
        findings = lint_select(root, "CONC004")
        assert len(findings) == 1
        assert "os.open descriptor 'fd'" in findings[0].message

    def test_mkstemp_without_failure_cleanup_fires(self, tmp_path):
        # A seam variant whose failure path never unlinks the temp file.
        root = base_tree(tmp_path, **{"pkg/utils/io.py": """
            import contextlib
            import os
            import tempfile

            def atomic_write_text(path, text):
                fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".")
                with os.fdopen(fd, "w") as stream:
                    stream.write(text)
                os.replace(tmp, path)

            @contextlib.contextmanager
            def shard_lock(path):
                fd = os.open(path, os.O_CREAT | os.O_RDWR)
                try:
                    yield
                finally:
                    os.close(fd)
        """})
        findings = lint_select(root, "CONC004")
        assert len(findings) == 1
        assert "mkstemp temp file 'tmp'" in findings[0].message

    def test_seam_module_itself_is_in_scope(self, tmp_path):
        # Unlike ATM001/CONC001, CONC004 audits utils/io.py too: the
        # seam is where the raw descriptors live.  The clean seam
        # passes; its descriptors are all scoped.
        assert lint_select(base_tree(tmp_path), "CONC004") == []

    def test_open_outside_store_modules_is_out_of_scope(self, tmp_path):
        root = base_tree(tmp_path, **{"pkg/experiments/report.py": """
            def slurp(path):
                stream = open(path)
                return stream.read()
        """})
        assert lint_select(root, "CONC004") == []


# ---------------------------------------------------------------------------
# Self-hosting: the real package satisfies the concurrency contracts


class TestConcSelfHost:
    def test_src_repro_is_concurrency_clean(self):
        findings = run_lint([SRC_REPRO], select_rules(["CONC"]))
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_real_store_unlocked_discard_fires(self, tmp_path):
        # The acceptance demonstration on the real source: copy the
        # store and seam modules, strip the lock from _discard's
        # remove, and CONC001 must fire on the *_locked call site.
        store = (SRC_REPRO / "runner" / "store.py").read_text()
        guarded = (
            "            with shard_lock(self._lock_path(shard)):\n"
            "                self._remove_locked(shard, [key])\n"
        )
        assert guarded in store
        broken = store.replace(
            guarded,
            "            self._remove_locked(shard, [key])\n",
        )
        root = write_tree(tmp_path, {
            "repro/runner/store.py": broken,
            "repro/utils/io.py":
                (SRC_REPRO / "utils" / "io.py").read_text(),
        })
        findings = run_lint([root], select_rules(["CONC001"]))
        assert any("_remove_locked()" in f.message for f in findings), \
            "\n".join(f.render() for f in findings)

    def test_real_store_nested_eviction_lock_fires(self, tmp_path):
        # Wrap the whole eviction loop in one extra lock: the per-shard
        # locks inside now nest, which CONC002 must reject.
        store = (SRC_REPRO / "runner" / "store.py").read_text()
        loop = (
            "        for shard in sorted(doomed):\n"
            "            try:\n"
            "                with shard_lock(self._lock_path(shard)):\n"
        )
        assert loop in store
        broken = store.replace(
            loop,
            "        with shard_lock(self._lock_path(\"00\")):\n"
            "          for shard in sorted(doomed):\n"
            "            try:\n"
            "                with shard_lock(self._lock_path(shard)):\n",
        )
        root = write_tree(tmp_path, {
            "repro/runner/store.py": broken,
            "repro/utils/io.py":
                (SRC_REPRO / "utils" / "io.py").read_text(),
        })
        findings = run_lint([root], select_rules(["CONC002"]))
        assert any("nested" in f.message for f in findings), \
            "\n".join(f.render() for f in findings)
