"""Additional coverage: error paths, edge configurations, and cross-layer
consistency checks that the per-module suites do not reach."""

import pytest

from repro.arch.isa import ShiftPolicy
from repro.core.combined import CombinedPredictor
from repro.core.simulator import simulate
from repro.errors import (
    ConfigurationError,
    ExperimentError,
    ProfileError,
    ReproError,
    SelectionError,
    SizingError,
    TraceFormatError,
    WorkloadError,
)
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GsharePredictor
from repro.staticpred.hints import HintAssignment
from repro.workloads.trace import BranchTrace


class TestErrorHierarchy:
    @pytest.mark.parametrize("error", [
        ConfigurationError, SizingError, WorkloadError, TraceFormatError,
        ProfileError, SelectionError, ExperimentError,
    ])
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)

    def test_sizing_is_configuration(self):
        assert issubclass(SizingError, ConfigurationError)


class TestCombinedPredictorEdges:
    def test_rejects_bad_shift_policy(self):
        with pytest.raises(ConfigurationError):
            CombinedPredictor(BimodalPredictor(16),
                              HintAssignment("p", "none"),
                              shift_policy="shift")

    def test_name_encodes_configuration(self):
        from repro.arch.isa import HintBits

        hints = HintAssignment("p", "static_95")
        hints.set(0x1000, HintBits.static(True))
        plain = CombinedPredictor(GsharePredictor(64), hints)
        shifted = CombinedPredictor(GsharePredictor(64), hints,
                                    shift_policy=ShiftPolicy.SHIFT)
        assert plain.name == "gshare+static_95"
        assert "shift" in shifted.name

    def test_empty_hints_static_count_zero(self):
        combined = CombinedPredictor(BimodalPredictor(16),
                                     HintAssignment("p", "none"))
        assert combined.static_count() == 0


class TestSimulateEdgeCases:
    def test_empty_trace(self):
        trace = BranchTrace(program_name="p", input_name="ref")
        result = simulate(trace, BimodalPredictor(16))
        assert result.branches == 0
        assert result.misp_per_ki == 0.0
        # Vacuous success: zero branches, zero mispredictions.
        assert result.accuracy == 1.0

    def test_single_branch(self):
        trace = BranchTrace(program_name="p", input_name="ref",
                            site_indices=[0], addresses=[0x1000],
                            outcomes=[True], gaps=[4])
        result = simulate(trace, BimodalPredictor(16))
        assert result.branches == 1
        assert result.instructions == 4


class TestWorkloadSeedSeparation:
    def test_different_programs_different_traces(self, tiny_ctx):
        a = tiny_ctx.trace("compress")
        b = tiny_ctx.trace("ijpeg")
        assert a.addresses != b.addresses

    def test_seed_changes_everything(self):
        from repro.experiments.common import ExperimentContext

        a = ExperimentContext(trace_length=2000, site_scale=0.02, seed=1)
        b = ExperimentContext(trace_length=2000, site_scale=0.02, seed=2)
        assert (a.trace("compress").outcomes != b.trace("compress").outcomes)

    def test_same_seed_same_results(self):
        from repro.experiments.common import ExperimentContext

        a = ExperimentContext(trace_length=2000, site_scale=0.02, seed=9)
        b = ExperimentContext(trace_length=2000, site_scale=0.02, seed=9)
        result_a = a.run("compress", "gshare", 512, scheme="static_95")
        result_b = b.run("compress", "gshare", 512, scheme="static_95")
        assert result_a.mispredictions == result_b.mispredictions


class TestEnvKnobs:
    def test_trace_length_env(self, monkeypatch):
        from repro.experiments.common import default_trace_length

        monkeypatch.setenv("REPRO_TRACE_LENGTH", "1234")
        assert default_trace_length() == 1234

    def test_site_scale_env(self, monkeypatch):
        from repro.experiments.common import default_site_scale

        monkeypatch.setenv("REPRO_EXPERIMENT_SITE_SCALE", "0.5")
        assert default_site_scale() == 0.5

    def test_bad_env_raises(self, monkeypatch):
        from repro.experiments.common import default_trace_length

        monkeypatch.setenv("REPRO_TRACE_LENGTH", "lots")
        with pytest.raises(ExperimentError):
            default_trace_length()

    def test_scientific_notation_integer_accepted(self, monkeypatch):
        from repro.experiments.common import default_trace_length

        monkeypatch.setenv("REPRO_TRACE_LENGTH", "2e5")
        assert default_trace_length() == 200_000

    def test_fractional_trace_length_rejected(self, monkeypatch):
        # int(float("200000.7")) would silently run a different
        # experiment than the one asked for; it must be an error.
        from repro.experiments.common import default_trace_length

        monkeypatch.setenv("REPRO_TRACE_LENGTH", "200000.7")
        with pytest.raises(ExperimentError, match="truncate"):
            default_trace_length()

    def test_fractional_seed_rejected(self, monkeypatch):
        from repro.experiments.common import default_seed

        monkeypatch.setenv("REPRO_SEED", "1.5")
        with pytest.raises(ExperimentError):
            default_seed()


class TestPublicApi:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_predictor_names_buildable(self):
        from repro import PREDICTOR_NAMES, make_predictor

        for name in PREDICTOR_NAMES:
            predictor = make_predictor(name, 4096)
            predicted = predictor.predict(0x1000)
            predictor.update(0x1000, True, predicted)


class TestReportRendering:
    def test_experiment_report_renders_all_experiments_list(self):
        from repro.experiments.registry import EXPERIMENT_IDS

        # 5 tables + 13 figures + 2 grouped + 5 ablation entries +
        # summary + pipeline-impact + classification.
        assert len(EXPERIMENT_IDS) == 28
