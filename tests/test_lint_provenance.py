"""Tests for the provenance rule family (KEY/ENV/ATM, analysis layer 5).

Each fixture tree is a miniature of the real package layout -- the
``runner/cells.py`` / ``runner/cache.py`` / ``experiments/common.py``
anchors plus the ``utils/env.py`` / ``utils/io.py`` seams -- so the
path-suffix anchoring, import resolution, and class lookup all exercise
the same machinery they use on ``src/repro``.  The seeded-bug cases
(a knob dropped from the key, a bare write-mode ``open`` in a store, an
inline ``os.environ`` read) are the ISSUE's acceptance fixtures: each
must be caught by its rule.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.rules import select_rules

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "tree"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


BASE_FILES = {
    "pkg/utils/env.py": """
        import os

        def env_str(name, default=None):
            return os.environ.get(name) or default

        def env_int(name, default=None):
            raw = os.environ.get(name) or None
            return default if raw is None else int(raw)

        def env_float(name, default=None):
            raw = os.environ.get(name) or None
            return default if raw is None else float(raw)
    """,
    "pkg/utils/io.py": """
        import os
        import tempfile

        def atomic_write_text(path, text):
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".")
            with os.fdopen(fd, "w") as stream:
                stream.write(text)
            os.replace(tmp, path)
    """,
    "pkg/experiments/common.py": """
        from pkg.utils.env import env_float, env_int, env_str

        ENV_KNOBS = {
            "REPRO_SEED": ("int", 42, "root seed"),
            "REPRO_SCALE": ("float", 1.0, "site scale"),
            "REPRO_KERNEL": ("str", "auto", "kernel mode"),
        }

        def default_seed():
            return env_int("REPRO_SEED", 42)

        def default_scale():
            return env_float("REPRO_SCALE", 1.0)

        def default_kernel():
            return env_str("REPRO_KERNEL", "auto")

        class ExperimentContext:
            def __init__(self, seed=None, scale=None, kernel=None):
                self.seed = default_seed() if seed is None else seed
                self.scale = default_scale() if scale is None else scale
                self.kernel = default_kernel() if kernel is None else kernel

            def run(self, program):
                if self.kernel == "fast":
                    return self.seed * 31
                return self.seed * 31 + int(self.scale * 8)
    """,
    "pkg/runner/cells.py": """
        from pkg.experiments.common import ExperimentContext

        _KEY_EXEMPT = {
            "kernel": "kernels are bit-identical by contract",
        }

        class Cell:
            program: str
            size: int
            cutoff: float

            def key_fields(self, ctx: ExperimentContext):
                return {
                    "seed": ctx.seed,
                    "scale": ctx.scale,
                    "program": self.program,
                    "size": self.size,
                    "cutoff": self._extra(),
                }

            def _extra(self):
                return self.cutoff

        def execute_cell(ctx: ExperimentContext, cell: Cell):
            return ctx.run(cell.program) + cell.size + cell.cutoff
    """,
    "pkg/runner/cache.py": """
        import hashlib
        import json
        import os

        from pkg.utils.io import atomic_write_text

        def _canonical_key(kind, fields):
            payload = {"kind": kind}
            payload.update(fields)
            text = json.dumps(payload, sort_keys=True)
            return hashlib.sha256(text.encode("utf-8")).hexdigest()

        class ResultStore:
            def __init__(self, root):
                self.root = root

            def put(self, key, text):
                os.makedirs(self.root, exist_ok=True)
                atomic_write_text(os.path.join(self.root, key), text)
    """,
    "pkg/traces/spec.py": """
        class TraceSpec:
            name: str
            length: int
            seed: int
            pinned_digest: str

            def identity(self):
                return {"name": self.name, "length": self.length,
                        "seed": self.seed}
    """,
}


def base_tree(tmp_path: Path, **overrides: str) -> Path:
    files = dict(BASE_FILES)
    files.update(overrides)
    return write_tree(tmp_path, files)


def lint_select(root: Path, *selectors: str):
    return run_lint([root], select_rules(list(selectors)))


# ---------------------------------------------------------------------------
# KEY001: cache-key completeness


class TestKey001:
    def test_clean_tree_is_quiet(self, tmp_path):
        assert lint_select(base_tree(tmp_path), "KEY", "ENV", "ATM") == []

    @pytest.mark.parametrize("entry,name", [
        ('"seed": ctx.seed,', "seed"),
        ('"scale": ctx.scale,', "scale"),
        ('"program": self.program,', "program"),
        ('"size": self.size,', "size"),
        ('"cutoff": self._extra(),', "cutoff"),
    ])
    def test_dropping_any_key_entry_fires(self, tmp_path, entry, name):
        # The ISSUE's acceptance property: removing any single Cell
        # field or influencing knob from the key function fires KEY001.
        source = BASE_FILES["pkg/runner/cells.py"].replace(entry, "")
        assert entry not in source
        root = base_tree(tmp_path, **{"pkg/runner/cells.py": source})
        findings = lint_select(root, "KEY001")
        assert [f.rule for f in findings] == ["KEY001"]
        assert f"{name!r}" in findings[0].message

    def test_exempt_unkeyed_field_is_quiet(self, tmp_path):
        source = BASE_FILES["pkg/runner/cells.py"].replace(
            '"size": self.size,', ""
        ).replace(
            '"kernel": "kernels are bit-identical by contract",',
            '"kernel": "kernels are bit-identical by contract",\n'
            '            "size": "fixture: size is claimed result-neutral",',
        )
        root = base_tree(tmp_path, **{"pkg/runner/cells.py": source})
        assert lint_select(root, "KEY001") == []

    def test_stale_exemption_fires(self, tmp_path):
        source = BASE_FILES["pkg/runner/cells.py"].replace(
            '"kernel": "kernels are bit-identical by contract",',
            '"kernel": "kernels are bit-identical by contract",\n'
            '            "seed": "stale: seed is in the key",',
        )
        root = base_tree(tmp_path, **{"pkg/runner/cells.py": source})
        findings = lint_select(root, "KEY001")
        assert len(findings) == 1
        assert "stale exemption" in findings[0].message

    def test_unknown_exemption_fires(self, tmp_path):
        source = BASE_FILES["pkg/runner/cells.py"].replace(
            '"kernel": "kernels are bit-identical by contract",',
            '"kernel": "kernels are bit-identical by contract",\n'
            '            "ghost": "no such knob exists",',
        )
        root = base_tree(tmp_path, **{"pkg/runner/cells.py": source})
        findings = lint_select(root, "KEY001")
        assert len(findings) == 1
        assert "unknown name 'ghost'" in findings[0].message

    def test_uninfluential_knob_needs_no_key_or_exemption(self, tmp_path):
        # A knob assigned in __init__ but never read by anything
        # reachable from execute_cell cannot change results; KEY001 must
        # not demand it be keyed.
        source = BASE_FILES["pkg/experiments/common.py"].replace(
            "self.kernel = default_kernel() if kernel is None else kernel",
            "self.kernel = default_kernel() if kernel is None else kernel\n"
            "                self.notes = \"\"",
        )
        root = base_tree(tmp_path, **{"pkg/experiments/common.py": source})
        assert lint_select(root, "KEY001") == []

    def test_missing_exemption_for_influencing_knob_fires(self, tmp_path):
        source = BASE_FILES["pkg/runner/cells.py"].replace(
            '    "kernel": "kernels are bit-identical by contract",\n', ""
        )
        root = base_tree(tmp_path, **{"pkg/runner/cells.py": source})
        findings = lint_select(root, "KEY001")
        assert len(findings) == 1
        assert "'kernel'" in findings[0].message
        # The message names the execution-region reader, for triage.
        assert "ExperimentContext.run" in findings[0].message

    def test_spec_identity_dropping_a_field_fires(self, tmp_path):
        source = BASE_FILES["pkg/traces/spec.py"].replace(
            '\n                        "seed": self.seed', ""
        )
        assert "self.seed" not in source
        root = base_tree(tmp_path, **{"pkg/traces/spec.py": source})
        findings = lint_select(root, "KEY001")
        assert len(findings) == 1
        assert "TraceSpec field 'seed'" in findings[0].message

    def test_spec_pinned_digest_is_exempt_by_design(self, tmp_path):
        # pinned_digest is an expectation about the artifact, not part
        # of the recipe; the base tree leaves it out of identity() and
        # stays quiet.
        assert lint_select(base_tree(tmp_path), "KEY001") == []


# ---------------------------------------------------------------------------
# KEY002: canonical serialization


class TestKey002:
    def test_hasher_without_sort_keys_fires(self, tmp_path):
        source = BASE_FILES["pkg/runner/cache.py"].replace(
            "json.dumps(payload, sort_keys=True)", "json.dumps(payload)"
        )
        root = base_tree(tmp_path, **{"pkg/runner/cache.py": source})
        findings = lint_select(root, "KEY002")
        assert len(findings) == 1
        assert "sort_keys=True" in findings[0].message

    def test_set_in_key_builder_fires_and_sorted_set_is_quiet(self, tmp_path):
        source = BASE_FILES["pkg/runner/cells.py"].replace(
            '"program": self.program,',
            '"program": sorted(set(self.program)),\n'
            '            "tags": set(self.program),',
        )
        root = base_tree(tmp_path, **{"pkg/runner/cells.py": source})
        findings = lint_select(root, "KEY002")
        assert len(findings) == 1  # the bare set(); not the sorted one
        assert "set()" in findings[0].message

    def test_repr_in_key_builder_fires(self, tmp_path):
        source = BASE_FILES["pkg/runner/cells.py"].replace(
            '"cutoff": self._extra(),', '"cutoff": repr(self._extra()),'
        )
        root = base_tree(tmp_path, **{"pkg/runner/cells.py": source})
        findings = lint_select(root, "KEY002")
        assert len(findings) == 1
        assert "repr()" in findings[0].message

    def test_host_dependent_value_in_key_builder_fires(self, tmp_path):
        source = BASE_FILES["pkg/runner/cells.py"].replace(
            "from pkg.experiments.common import ExperimentContext",
            "import os\n\n"
            "        from pkg.experiments.common import ExperimentContext",
        ).replace(
            '"program": self.program,',
            '"program": self.program,\n'
            '                    "root": os.getcwd(),',
        )
        root = base_tree(tmp_path, **{"pkg/runner/cells.py": source})
        findings = lint_select(root, "KEY002")
        assert len(findings) == 1
        assert "os.getcwd" in findings[0].message


# ---------------------------------------------------------------------------
# ENV001: the env-knob contract


class TestEnv001:
    def test_inline_environ_read_fires(self, tmp_path):
        # Seeded bug (c) of the ISSUE: an inline os.environ.get.
        source = BASE_FILES["pkg/runner/cells.py"].replace(
            "from pkg.experiments.common import ExperimentContext",
            "import os\n\n"
            "        from pkg.experiments.common import ExperimentContext",
        ).replace(
            "return ctx.run(cell.program) + cell.size + cell.cutoff",
            "limit = int(os.environ.get(\"REPRO_LIMIT\", \"1\"))\n"
            "            return ctx.run(cell.program) + cell.size + limit",
        )
        root = base_tree(tmp_path, **{"pkg/runner/cells.py": source})
        findings = lint_select(root, "ENV001")
        assert len(findings) == 1
        assert "inline os.environ read" in findings[0].message

    def test_seam_module_may_read_environ(self, tmp_path):
        # utils/env.py is full of os.environ reads; the base tree is
        # quiet because the seam is exempt.
        assert lint_select(base_tree(tmp_path), "ENV001") == []

    def test_undeclared_knob_fires(self, tmp_path):
        source = BASE_FILES["pkg/experiments/common.py"].replace(
            'return env_int("REPRO_SEED", 42)',
            'return env_int("REPRO_UNDECLARED", 42)',
        )
        root = base_tree(tmp_path, **{"pkg/experiments/common.py": source})
        findings = lint_select(root, "ENV001")
        assert any("undeclared env knob 'REPRO_UNDECLARED'" in f.message
                   for f in findings)

    def test_parser_kind_mismatch_fires(self, tmp_path):
        source = BASE_FILES["pkg/experiments/common.py"].replace(
            'return env_float("REPRO_SCALE", 1.0)',
            'return env_int("REPRO_SCALE", 1.0)',
        )
        root = base_tree(tmp_path, **{"pkg/experiments/common.py": source})
        findings = lint_select(root, "ENV001")
        assert len(findings) == 1
        assert "declared with parser 'float' but read as 'int'" in findings[0].message

    def test_default_disagreement_fires(self, tmp_path):
        source = BASE_FILES["pkg/experiments/common.py"].replace(
            'return env_int("REPRO_SEED", 42)',
            'return env_int("REPRO_SEED", 7)',
        )
        root = base_tree(tmp_path, **{"pkg/experiments/common.py": source})
        findings = lint_select(root, "ENV001")
        assert len(findings) == 1
        assert "default 42 but read with default 7" in findings[0].message

    def test_stale_declaration_fires_with_outside_consumers(self, tmp_path):
        # The stale check arms only when the linted set has accessor
        # calls outside the anchor module (a partial-scope lint of the
        # registry alone must not call the whole registry stale).
        common = BASE_FILES["pkg/experiments/common.py"].replace(
            '"REPRO_KERNEL": ("str", "auto", "kernel mode"),',
            '"REPRO_KERNEL": ("str", "auto", "kernel mode"),\n'
            '            "REPRO_NEVER_READ": ("int", 9, "stale declaration"),',
        )
        consumer = """
            from pkg.utils.env import env_str

            def suite_name():
                return env_str("REPRO_KERNEL", "auto")
        """
        root = base_tree(tmp_path, **{
            "pkg/experiments/common.py": common,
            "pkg/runner/api.py": consumer,
        })
        findings = lint_select(root, "ENV001")
        assert len(findings) == 1
        assert "'REPRO_NEVER_READ'" in findings[0].message
        assert "stale" in findings[0].message

    def test_knob_name_via_module_constant_resolves(self, tmp_path):
        # The real api.py reads ENV_CACHE_DIR imported from cache.py;
        # the resolver must follow the import instead of flagging an
        # unresolvable name.
        cache = BASE_FILES["pkg/runner/cache.py"] + (
            '\n        ENV_KERNEL = "REPRO_KERNEL"\n'
        )
        consumer = """
            from pkg.runner.cache import ENV_KERNEL
            from pkg.utils.env import env_str

            def kernel_mode():
                return env_str(ENV_KERNEL, "auto")
        """
        root = base_tree(tmp_path, **{
            "pkg/runner/cache.py": cache,
            "pkg/runner/api.py": consumer,
        })
        assert lint_select(root, "ENV001") == []


# ---------------------------------------------------------------------------
# ATM001/ATM002: atomic-write discipline


class TestAtmRules:
    def test_bare_write_open_in_store_fires(self, tmp_path):
        # Seeded bug (b) of the ISSUE: a bare open(..., "w") in a store.
        source = BASE_FILES["pkg/runner/cache.py"].replace(
            "atomic_write_text(os.path.join(self.root, key), text)",
            'with open(os.path.join(self.root, key), "w") as stream:\n'
            "                    stream.write(text)",
        )
        root = base_tree(tmp_path, **{"pkg/runner/cache.py": source})
        findings = lint_select(root, "ATM001")
        assert len(findings) == 1
        assert "open(...)" in findings[0].message

    def test_path_write_text_in_store_fires(self, tmp_path):
        root = base_tree(tmp_path, **{"pkg/traces/store.py": """
            from pathlib import Path

            def save_manifest(path, text):
                Path(path).write_text(text)
        """})
        findings = lint_select(root, "ATM001")
        assert len(findings) == 1
        assert "write_text" in findings[0].message

    def test_write_outside_store_layers_is_not_flagged(self, tmp_path):
        root = base_tree(tmp_path, **{"pkg/reports/render.py": """
            def save(path, text):
                with open(path, "w") as stream:
                    stream.write(text)
        """})
        assert lint_select(root, "ATM001", "ATM002") == []

    def test_atomic_seam_usage_is_quiet(self, tmp_path):
        # The base tree's store writes via utils/io.py; the seam's own
        # os.fdopen is exempt.
        assert lint_select(base_tree(tmp_path), "ATM001", "ATM002") == []

    def test_exists_then_write_fires(self, tmp_path):
        root = base_tree(tmp_path, **{"pkg/traces/store.py": """
            import os

            def ensure_manifest(path, text):
                if not os.path.exists(path):
                    with open(path, "w") as stream:
                        stream.write(text)
        """})
        findings = lint_select(root, "ATM002")
        assert len(findings) == 1
        assert "exists-then-write race" in findings[0].message

    def test_exists_guarded_makedirs_without_exist_ok_fires(self, tmp_path):
        root = base_tree(tmp_path, **{"pkg/traces/store.py": """
            import os

            def ensure_root(root):
                if not os.path.isdir(root):
                    os.makedirs(root)
        """})
        findings = lint_select(root, "ATM002")
        assert len(findings) == 1
        assert "os.makedirs without exist_ok=True" in findings[0].message

    def test_exists_guarding_a_method_call_is_quiet(self, tmp_path):
        # The real store's ensure(): exists -> generate() is fine;
        # generate commits atomically and is idempotent.
        root = base_tree(tmp_path, **{"pkg/traces/store.py": """
            import os

            class Store:
                def ensure(self, spec):
                    if not os.path.exists(self.manifest_path(spec)):
                        self.generate(spec)

                def manifest_path(self, spec):
                    return spec + ".json"

                def generate(self, spec):
                    return spec
        """})
        assert lint_select(root, "ATM002") == []


# ---------------------------------------------------------------------------
# Self-hosting: the real package satisfies the provenance contracts


class TestProvenanceSelfHost:
    def test_src_repro_is_provenance_clean(self, tmp_path):
        findings = run_lint(
            [SRC_REPRO], select_rules(["KEY", "ENV", "ATM"])
        )
        assert findings == [], "\n".join(f.render() for f in findings)

    @pytest.mark.parametrize("entry", [
        '"seed": ctx.seed,',
        '"trace_length": ctx.trace_length,',
        '"site_scale": ctx.site_scale,',
        '"predictor": self.predictor,',
        '"size_bytes": self.size_bytes,',
        '"shift_policy": self.shift_policy.value,',
        '"cutoff": self.cutoff,',
        '"factor": self.factor,',
        '"track_collisions": self.track_collisions,',
        '"predictor_kwargs": list(self.predictor_kwargs),',
    ])
    def test_real_key_fields_minus_any_entry_fires(self, tmp_path, entry):
        # The acceptance demonstration on the *real* source: copy the
        # anchor modules, excise one key entry, and KEY001 must fire.
        cells = (SRC_REPRO / "runner" / "cells.py").read_text()
        assert entry in cells
        root = write_tree(tmp_path, {
            "repro/runner/cells.py": cells.replace(entry, ""),
            "repro/experiments/common.py":
                (SRC_REPRO / "experiments" / "common.py").read_text(),
        })
        findings = run_lint([root], select_rules(["KEY001"]))
        name = entry.split('"')[1]
        assert any(f.rule == "KEY001" and f"{name!r}" in f.message
                   for f in findings), "\n".join(f.render() for f in findings)
