"""Tests for the parallel experiment runner and its persistent cache.

The load-bearing guarantees:

* determinism -- ``repro run --jobs N`` produces bit-identical results
  and reports to the serial path, for any N and any cache state;
* cache correctness -- keys cover the full result identity (context
  knobs plus every cell field), entries round-trip exactly, and corrupt
  entries degrade to misses, never errors;
* observability -- the run summary's accounting (cells, simulated,
  hits) matches what actually happened, because the acceptance check
  "warm re-run simulates nothing" reads it.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.metrics import SimulationResult
from repro.errors import ExperimentError, ReproError
from repro.experiments.common import ExperimentContext
from repro.predictors.collisions import CollisionCounts
from repro.runner import (
    Cell,
    CellExecutor,
    ResultCache,
    execute_cell,
    execute_cells,
    resolve_hints,
    run_experiments,
)

TINY = dict(trace_length=3_000, site_scale=0.02, seed=11)


def tiny_context() -> ExperimentContext:
    return ExperimentContext(**TINY)


def some_cells() -> list[Cell]:
    return [
        Cell.make("gcc", "gshare", 1024),
        Cell.make("gcc", "gshare", 1024, scheme="static_95"),
        Cell.make("go", "bimodal", 512),
        Cell.make("go", "gshare", 512, scheme="static_acc"),
        Cell.make("compress", "gshare", 512, track_collisions=True),
    ]


class TestCell:
    def test_hashable_and_usable_as_dict_key(self):
        a = Cell.make("gcc", "gshare", 1024, scheme="static_95")
        b = Cell.make("gcc", "gshare", 1024, scheme="static_95")
        assert a == b and hash(a) == hash(b)
        assert len({a: 1, b: 2}) == 1

    def test_predictor_kwargs_normalized_to_sorted_pairs(self):
        a = Cell.make("gcc", "gshare", 1024,
                      predictor_kwargs={"history_length": 4})
        b = Cell.make("gcc", "gshare", 1024,
                      predictor_kwargs={"history_length": 4})
        assert a == b
        assert a.predictor_kwargs == (("history_length", 4),)

    def test_pickle_roundtrip(self):
        cell = Cell.make("gcc", "gshare", 1024, scheme="static_acc",
                         predictor_kwargs={"history_length": 6})
        assert pickle.loads(pickle.dumps(cell)) == cell

    def test_key_fields_cover_context_and_cell(self):
        ctx = tiny_context()
        cell = Cell.make("gcc", "gshare", 1024)
        fields = cell.key_fields(ctx)
        assert fields["seed"] == ctx.seed
        assert fields["trace_length"] == ctx.trace_length
        assert fields["site_scale"] == ctx.site_scale
        assert fields["program"] == "gcc"
        assert fields["scheme"] == "none"

    def test_hint_key_ignores_predictor_for_bias_only_schemes(self):
        ctx = tiny_context()
        gshare = Cell.make("gcc", "gshare", 1024, scheme="static_95")
        gskew = Cell.make("gcc", "2bcgskew", 8192, scheme="static_95")
        assert gshare.hint_key_fields(ctx) == gskew.hint_key_fields(ctx)

    def test_hint_key_includes_predictor_for_accuracy_schemes(self):
        ctx = tiny_context()
        small = Cell.make("gcc", "gshare", 1024, scheme="static_acc")
        large = Cell.make("gcc", "gshare", 4096, scheme="static_acc")
        assert small.hint_key_fields(ctx) != large.hint_key_fields(ctx)


class TestResultCache:
    def test_result_roundtrip_is_exact(self, tmp_path):
        ctx = tiny_context()
        cache = ResultCache(str(tmp_path))
        cell = Cell.make("compress", "gshare", 512, track_collisions=True)
        result = execute_cell(ctx, cell)
        cache.put_result(ctx, cell, result)
        restored = cache.get_result(ctx, cell)
        assert restored is not None
        assert restored.to_dict() == result.to_dict()
        assert restored.collisions == result.collisions

    def test_miss_then_hit_counters(self, tmp_path):
        ctx = tiny_context()
        cache = ResultCache(str(tmp_path))
        cell = Cell.make("gcc", "bimodal", 256)
        assert cache.get_result(ctx, cell) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put_result(ctx, cell, execute_cell(ctx, cell))
        assert cache.get_result(ctx, cell) is not None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_key_sensitivity(self, tmp_path):
        """Any change to context knobs or cell fields changes the key."""
        cache = ResultCache(str(tmp_path))
        base_ctx = tiny_context()
        base = Cell.make("gcc", "gshare", 1024, scheme="static_95")
        baseline = cache.result_key(base_ctx, base)
        variants = [
            (ExperimentContext(trace_length=4_000, site_scale=0.02, seed=11), base),
            (ExperimentContext(trace_length=3_000, site_scale=0.03, seed=11), base),
            (ExperimentContext(trace_length=3_000, site_scale=0.02, seed=12), base),
            (base_ctx, Cell.make("go", "gshare", 1024, scheme="static_95")),
            (base_ctx, Cell.make("gcc", "bimodal", 1024, scheme="static_95")),
            (base_ctx, Cell.make("gcc", "gshare", 2048, scheme="static_95")),
            (base_ctx, Cell.make("gcc", "gshare", 1024, scheme="static_acc")),
            (base_ctx, Cell.make("gcc", "gshare", 1024, scheme="static_95",
                                 cutoff=0.99)),
            (base_ctx, Cell.make("gcc", "gshare", 1024, scheme="static_95",
                                 profile_input="train")),
            (base_ctx, Cell.make("gcc", "gshare", 1024, scheme="static_95",
                                 track_collisions=True)),
            (base_ctx, Cell.make("gcc", "gshare", 1024, scheme="static_95",
                                 predictor_kwargs={"history_length": 3})),
        ]
        keys = {cache.result_key(ctx, cell) for ctx, cell in variants}
        assert baseline not in keys
        assert len(keys) == len(variants)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        ctx = tiny_context()
        cache = ResultCache(str(tmp_path))
        cell = Cell.make("gcc", "bimodal", 256)
        cache.put_result(ctx, cell, execute_cell(ctx, cell))
        key = cache.result_key(ctx, cell)
        path = tmp_path / key[:2] / (key + ".json")
        path.write_text("{ torn write", encoding="utf-8")
        assert cache.get_result(ctx, cell) is None

    def test_malformed_payload_is_a_miss(self, tmp_path):
        ctx = tiny_context()
        cache = ResultCache(str(tmp_path))
        cell = Cell.make("gcc", "bimodal", 256)
        cache.put_result(ctx, cell, execute_cell(ctx, cell))
        key = cache.result_key(ctx, cell)
        path = tmp_path / key[:2] / (key + ".json")
        path.write_text('{"result": {"program_name": "gcc"}}',
                        encoding="utf-8")
        assert cache.get_result(ctx, cell) is None

    def test_hints_shared_through_cache(self, tmp_path):
        ctx = tiny_context()
        cache = ResultCache(str(tmp_path))
        cell = Cell.make("gcc", "gshare", 1024, scheme="static_95")
        first = resolve_hints(ctx, cell, cache=cache)
        # A context with no memoized state must reload from the cache
        # and see the identical selection.
        fresh = tiny_context()
        second = resolve_hints(fresh, cell, cache=cache)
        assert first is not None and second is not None
        assert second.to_json() == first.to_json()

    def test_concurrent_writers_to_one_key_never_corrupt(self, tmp_path):
        # Regression: the temp-file name used to be {path}.{pid}.tmp,
        # identical for every thread in a process, so two concurrent
        # writers could unlink each other's half-written file and one
        # os.replace would fail or install a torn entry.  With per-call
        # unique temp names every interleaving leaves a complete entry.
        import threading

        cache = ResultCache(str(tmp_path))
        payloads = [{"result": {"n": i}, "key": {}} for i in range(8)]
        errors = []

        def writer(payload):
            try:
                for _ in range(50):
                    cache._write("aa" + "0" * 62, payload)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(p,))
                   for p in payloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        entry = cache._read("aa" + "0" * 62)
        assert entry in payloads
        # No orphaned temp files left behind.
        leftovers = list((tmp_path / "aa").glob("*.tmp"))
        assert leftovers == []


class TestSimulationResultSerialization:
    def test_roundtrip_with_collisions_and_metadata(self):
        result = SimulationResult(
            "gcc", "ref", "gshare", "static_95", 1024, 100, 1000, 7,
            static_branches=40, static_mispredictions=2,
            collisions=CollisionCounts(lookups=90, collisions=12,
                                       constructive=3, destructive=9),
            metadata={"static_hint_count": 5},
        )
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored == result

    def test_malformed_payload_raises_repro_error(self):
        with pytest.raises(ReproError):
            SimulationResult.from_dict({"program_name": "gcc"})
        with pytest.raises(ReproError):
            SimulationResult.from_dict(
                {"program_name": "gcc", "input_name": "ref",
                 "predictor_name": "x", "scheme": "none",
                 "size_bytes": 1, "branches": "many", "instructions": 1,
                 "mispredictions": 0, "static_branches": 0,
                 "static_mispredictions": 0}
            )


class TestCellExecutor:
    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ExperimentError):
            CellExecutor(tiny_context(), jobs=0)

    def test_serial_matches_direct_execution(self):
        ctx = tiny_context()
        cells = some_cells()
        results = CellExecutor(ctx, jobs=1).execute(cells)
        assert list(results) == cells
        for cell in cells:
            direct = execute_cell(tiny_context(), cell)
            assert results[cell].to_dict() == direct.to_dict()

    def test_duplicate_cells_simulated_once(self):
        ctx = tiny_context()
        cell = Cell.make("gcc", "bimodal", 256)
        executor = CellExecutor(ctx, jobs=1)
        results = executor.execute([cell, cell, cell])
        assert list(results) == [cell]
        assert executor.summary.simulated == 1

    def test_parallel_bit_identical_to_serial(self):
        cells = some_cells()
        serial = CellExecutor(tiny_context(), jobs=1).execute(cells)
        parallel = CellExecutor(tiny_context(), jobs=4).execute(cells)
        assert list(parallel) == list(serial)
        for cell in cells:
            assert parallel[cell].to_dict() == serial[cell].to_dict()

    def test_warm_cache_simulates_nothing(self, tmp_path):
        cells = some_cells()
        cold = CellExecutor(tiny_context(), jobs=2,
                            cache=ResultCache(str(tmp_path)))
        cold_results = cold.execute(cells)
        assert cold.summary.simulated == len(cells)

        warm = CellExecutor(tiny_context(), jobs=2,
                            cache=ResultCache(str(tmp_path)))
        warm_results = warm.execute(cells)
        assert warm.summary.simulated == 0
        assert warm.summary.cache_hits == len(cells)
        assert warm.summary.hit_rate == 1.0
        for cell in cells:
            assert warm_results[cell].to_dict() == cold_results[cell].to_dict()

    def test_summary_accounting(self):
        ctx = tiny_context()
        executor = CellExecutor(ctx, jobs=1)
        results = executor.execute(some_cells())
        summary = executor.summary
        assert summary.cells == len(results)
        assert summary.simulated == len(results)
        assert summary.branches_simulated == sum(
            r.branches for r in results.values()
        )
        text = summary.describe()
        assert "hit-rate" in text and "branches/s" in text


class TestExecuteCells:
    def test_env_jobs_must_be_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ExperimentError):
            execute_cells(tiny_context(), [Cell.make("gcc", "bimodal", 256)])

    def test_env_cache_dir_enables_caching(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cell = Cell.make("gcc", "bimodal", 256)
        execute_cells(tiny_context(), [cell])
        # The entry must now exist for an explicit cache handle.
        cache = ResultCache(str(tmp_path))
        assert cache.get_result(tiny_context(), cell) is not None

    def test_static_hint_count_metadata(self):
        ctx = tiny_context()
        cell = Cell.make("gcc", "gshare", 1024, scheme="static_95")
        results = execute_cells(ctx, [cell])
        hints = ctx.hints("gcc", "static_95")
        assert results[cell].metadata["static_hint_count"] == hints.static_count()


class TestRunExperiments:
    """The PR's acceptance criteria, as regression tests."""

    EXPERIMENT_IDS = ("figure1", "figure7")

    def test_unknown_id_raises(self):
        with pytest.raises(ExperimentError):
            run_experiments(["figure99"], ctx=tiny_context())

    def test_no_ids_raises(self):
        with pytest.raises(ExperimentError):
            run_experiments([], ctx=tiny_context())

    def test_parallel_bit_identical_to_serial(self):
        serial, _ = run_experiments(list(self.EXPERIMENT_IDS),
                                    ctx=tiny_context(), jobs=1)
        parallel, summary = run_experiments(list(self.EXPERIMENT_IDS),
                                            ctx=tiny_context(), jobs=4)
        assert summary.jobs == 4
        for experiment_id in self.EXPERIMENT_IDS:
            assert (parallel[experiment_id].render()
                    == serial[experiment_id].render())

    def test_warm_cache_rerun_simulates_nothing(self, tmp_path):
        cold, cold_summary = run_experiments(
            list(self.EXPERIMENT_IDS), ctx=tiny_context(), jobs=2,
            cache=ResultCache(str(tmp_path)),
        )
        assert cold_summary.simulated == cold_summary.cells > 0

        warm, warm_summary = run_experiments(
            list(self.EXPERIMENT_IDS), ctx=tiny_context(), jobs=2,
            cache=ResultCache(str(tmp_path)),
        )
        assert warm_summary.simulated == 0
        assert warm_summary.hit_rate == 1.0
        for experiment_id in self.EXPERIMENT_IDS:
            assert (warm[experiment_id].render()
                    == cold[experiment_id].render())

    def test_shared_cells_across_ids_pay_once(self):
        # figure1 (gshare sweep) and figure13 share nothing, but an id
        # requested twice must not double-simulate.
        _, summary = run_experiments(["figure1", "figure1"],
                                     ctx=tiny_context(), jobs=1)
        from repro.experiments.figures_gshare import cells_program
        expected = len(cells_program(tiny_context(), "go"))
        assert summary.cells == expected
        assert summary.simulated == expected

    def test_cell_less_experiment_falls_back_to_serial(self):
        reports, summary = run_experiments(["table5"], ctx=tiny_context())
        assert reports["table5"].experiment_id == "table5"
        assert summary.cells == 0


class TestContextPickling:
    def test_reduces_to_knobs(self):
        ctx = tiny_context()
        ctx.trace("gcc", "ref")  # populate memoized state
        clone = pickle.loads(pickle.dumps(ctx))
        assert (clone.trace_length, clone.site_scale, clone.seed) == (
            ctx.trace_length, ctx.site_scale, ctx.seed
        )
        assert clone._traces == {}
        # Rebuilt memoized state is bit-identical by the determinism
        # contract.
        assert clone.trace("gcc", "ref").outcomes == ctx.trace("gcc", "ref").outcomes
