"""Tests for branch behaviour models and their factories."""

import math
from random import Random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.workloads.behaviors import (
    BehaviorFactory,
    BiasedBehavior,
    BiasedFactory,
    CorrelatedBehavior,
    CorrelatedFactory,
    LoopBehavior,
    LoopFactory,
    MarkovBiasedBehavior,
    PatternBehavior,
    PatternFactory,
    Phase,
    PhasedBehavior,
    PhasedFactory,
    geometric_gap,
)


def run_behavior(behavior, n, seed=0, history=0):
    rng = Random(seed)
    return [behavior.outcome(history, rng) for _ in range(n)]


class TestBiasedBehavior:
    def test_observed_rate_converges(self):
        outcomes = run_behavior(BiasedBehavior(0.8), 20_000)
        assert abs(sum(outcomes) / len(outcomes) - 0.8) < 0.02

    def test_extremes(self):
        assert all(run_behavior(BiasedBehavior(1.0), 100))
        assert not any(run_behavior(BiasedBehavior(0.0), 100))

    def test_expected_bias_symmetric(self):
        assert BiasedBehavior(0.2).expected_bias() == pytest.approx(0.8)
        assert BiasedBehavior(0.8).expected_bias() == pytest.approx(0.8)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            BiasedBehavior(1.5)


class TestMarkovBiasedBehavior:
    def test_stationary_rate_matches(self):
        behavior = MarkovBiasedBehavior(0.9, burst_length=8.0)
        outcomes = run_behavior(behavior, 100_000)
        assert abs(sum(outcomes) / len(outcomes) - 0.9) < 0.02

    def test_minority_outcomes_cluster(self):
        # Runs of the minority direction should average near burst_length,
        # far above the iid expectation of ~1/(1-m) ~= 1.05.
        behavior = MarkovBiasedBehavior(0.95, burst_length=10.0)
        outcomes = run_behavior(behavior, 200_000)
        runs = []
        current = 0
        for taken in outcomes:
            if not taken:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs, "expected some minority runs"
        mean_run = sum(runs) / len(runs)
        assert mean_run > 4.0

    def test_not_taken_majority(self):
        behavior = MarkovBiasedBehavior(0.1, burst_length=5.0)
        outcomes = run_behavior(behavior, 50_000)
        assert abs(sum(outcomes) / len(outcomes) - 0.1) < 0.02

    def test_rejects_short_burst(self):
        with pytest.raises(ConfigurationError):
            MarkovBiasedBehavior(0.9, burst_length=0.5)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=1.0, max_value=50.0))
    @settings(max_examples=30, deadline=None)
    def test_stationary_property(self, p, burst):
        behavior = MarkovBiasedBehavior(p, burst)
        outcomes = run_behavior(behavior, 30_000, seed=3)
        assert abs(sum(outcomes) / len(outcomes) - p) < 0.08


class TestLoopBehavior:
    def test_fixed_trip_pattern(self):
        behavior = LoopBehavior(4)
        outcomes = run_behavior(behavior, 12)
        assert outcomes == [True, True, True, False] * 3

    def test_expected_bias(self):
        assert LoopBehavior(10).expected_bias() == pytest.approx(0.9)

    def test_jitter_bounded(self):
        behavior = LoopBehavior(10, jitter=3)
        outcomes = run_behavior(behavior, 5_000)
        runs = []
        current = 0
        for taken in outcomes:
            if taken:
                current += 1
            else:
                runs.append(current + 1)
                current = 0
        assert runs
        assert all(7 <= run <= 13 for run in runs)

    def test_rejects_tiny_trip(self):
        with pytest.raises(ConfigurationError):
            LoopBehavior(1)

    def test_rejects_excess_jitter(self):
        with pytest.raises(ConfigurationError):
            LoopBehavior(4, jitter=3)


class TestPatternBehavior:
    def test_cycles(self):
        behavior = PatternBehavior((True, True, False))
        assert run_behavior(behavior, 6) == [True, True, False, True, True, False]

    def test_expected_bias(self):
        assert PatternBehavior((True, False)).expected_bias() == pytest.approx(0.5)
        assert PatternBehavior((True, True, False)).expected_bias() == pytest.approx(2 / 3)

    def test_rejects_constant(self):
        with pytest.raises(ConfigurationError):
            PatternBehavior((True, True))

    def test_rejects_short(self):
        with pytest.raises(ConfigurationError):
            PatternBehavior((True,))


class TestCorrelatedBehavior:
    def test_pure_parity_deterministic(self):
        behavior = CorrelatedBehavior(0b11, noise=0.0)
        rng = Random(0)
        assert behavior.outcome(0b00, rng) is False
        assert behavior.outcome(0b01, rng) is True
        assert behavior.outcome(0b10, rng) is True
        assert behavior.outcome(0b11, rng) is False

    def test_invert(self):
        plain = CorrelatedBehavior(0b1, noise=0.0, invert=False)
        inverted = CorrelatedBehavior(0b1, noise=0.0, invert=True)
        rng = Random(0)
        for history in range(4):
            assert plain.outcome(history, rng) != inverted.outcome(history, rng)

    def test_noise_rate(self):
        behavior = CorrelatedBehavior(0b1, noise=0.25)
        rng = Random(1)
        flips = sum(
            behavior.outcome(0b0, rng) is not False for _ in range(20_000)
        )
        assert abs(flips / 20_000 - 0.25) < 0.02

    def test_rejects_empty_mask(self):
        with pytest.raises(ConfigurationError):
            CorrelatedBehavior(0)

    def test_rejects_big_noise(self):
        with pytest.raises(ConfigurationError):
            CorrelatedBehavior(1, noise=0.6)


class TestPhasedBehavior:
    def test_alternates_direction(self):
        behavior = PhasedBehavior((Phase(100, 1.0), Phase(100, 0.0)))
        outcomes = run_behavior(behavior, 400)
        assert all(outcomes[:100])
        assert not any(outcomes[100:200])
        assert all(outcomes[200:300])

    def test_expected_bias_weighted(self):
        behavior = PhasedBehavior((Phase(100, 1.0), Phase(100, 0.0)))
        assert behavior.expected_bias() == pytest.approx(0.5)

    def test_rejects_single_phase(self):
        with pytest.raises(ConfigurationError):
            PhasedBehavior((Phase(10, 0.5),))

    def test_rejects_zero_length(self):
        with pytest.raises(ConfigurationError):
            PhasedBehavior((Phase(0, 0.5), Phase(10, 0.5)))


class TestFactories:
    @pytest.mark.parametrize("factory", [
        BiasedFactory(lo=0.97, hi=0.999, burst_length=6.0),
        BiasedFactory(lo=0.5, hi=0.6),
        LoopFactory(lo=3, hi=9),
        PatternFactory(lo=2, hi=4),
        CorrelatedFactory(depth=8, taps=2),
        PhasedFactory(),
    ])
    def test_instantiate_deterministic(self, factory):
        a = factory.instantiate(Random(11))
        b = factory.instantiate(Random(11))
        assert repr(a) == repr(b)

    def test_biased_factory_band(self):
        factory = BiasedFactory(lo=0.9, hi=0.95)
        for i in range(50):
            behavior = factory.instantiate(Random(i))
            assert 0.9 <= behavior.expected_bias() <= 0.95

    def test_biased_factory_burst_dispatch(self):
        iid = BiasedFactory(lo=0.9, hi=0.95).instantiate(Random(0))
        bursty = BiasedFactory(lo=0.9, hi=0.95, burst_length=8.0).instantiate(Random(0))
        assert isinstance(iid, BiasedBehavior)
        assert isinstance(bursty, MarkovBiasedBehavior)

    def test_high_bias_flag(self):
        assert BiasedFactory(lo=0.97, hi=0.999).is_highly_biased()
        assert not BiasedFactory(lo=0.5, hi=0.7).is_highly_biased()
        assert LoopFactory(lo=24, hi=96).is_highly_biased()
        assert not LoopFactory(lo=3, hi=9).is_highly_biased()
        assert not PatternFactory().is_highly_biased()
        assert not CorrelatedFactory().is_highly_biased()
        assert not PhasedFactory().is_highly_biased()

    def test_correlated_factory_taps_within_depth(self):
        factory = CorrelatedFactory(depth=6, taps=3)
        for i in range(20):
            behavior = factory.instantiate(Random(i))
            assert behavior.history_mask < (1 << 6)
            assert bin(behavior.history_mask).count("1") == 3

    def test_loop_factory_band(self):
        factory = LoopFactory(lo=5, hi=7)
        for i in range(20):
            behavior = factory.instantiate(Random(i))
            assert 5 <= behavior.trip <= 7

    def test_invalid_bands_rejected(self):
        with pytest.raises(ConfigurationError):
            BiasedFactory(lo=0.4, hi=0.6)
        with pytest.raises(ConfigurationError):
            LoopFactory(lo=1, hi=5)
        with pytest.raises(ConfigurationError):
            PatternFactory(lo=1, hi=3)
        with pytest.raises(ConfigurationError):
            CorrelatedFactory(depth=2, taps=5)


class TestGeometricGap:
    def test_minimum_one(self):
        rng = Random(0)
        assert all(geometric_gap(1.0, rng) == 1 for _ in range(100))

    def test_mean_approximates_target(self):
        rng = Random(1)
        for target in (4.0, 9.0, 16.0):
            samples = [geometric_gap(target, rng) for _ in range(50_000)]
            assert abs(sum(samples) / len(samples) - target) < target * 0.05

    def test_rejects_below_one(self):
        with pytest.raises(ConfigurationError):
            geometric_gap(0.5, Random(0))
