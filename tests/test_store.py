"""Tests for the sharded, bounded result store.

The load-bearing guarantees:

* layout compatibility -- entry paths and bytes are exactly the flat
  cache's (``root/<k[:2]>/<key>.json``), so pre-existing caches stay
  warm and legacy entries are adopted into the manifests on first read;
* hygiene -- a corrupt or truncated entry reads as a miss and is
  *deleted* (with its manifest record), so the disk budget never keeps
  paying for dead bytes;
* the budget -- ``REPRO_CACHE_MAX_BYTES`` bounds the accounted size via
  LRU eviction, with a recently-read entry surviving over a stale one;
* concurrency -- N writer processes racing an eviction budget never
  produce a torn entry, never lose a result (every write is either
  readable afterwards or counted as an eviction), and the per-process
  eviction counters sum to exactly the number of deleted entries.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from hashlib import sha256
from pathlib import Path

from repro.experiments.common import ExperimentContext
from repro.runner import Cell, CellExecutor, ResultCache, ShardedResultStore
from repro.runner.cells import execute_cell
from repro.runner.store import MANIFEST_NAME, default_cache_max_bytes

TINY = dict(trace_length=3_000, site_scale=0.02, seed=11)


def key_for(tag: str) -> str:
    return sha256(tag.encode("utf-8")).hexdigest()


def payload_for(tag: str) -> dict:
    return {"tag": tag, "filler": "x" * 64}


def entry_files(root: Path) -> list[Path]:
    return sorted(p for p in root.glob("??/*.json")
                  if p.name != MANIFEST_NAME)


class TestLayout:
    def test_entry_path_matches_flat_cache_layout(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        key = key_for("a")
        assert store.entry_path(key) == str(
            tmp_path / key[:2] / (key + ".json"))

    def test_roundtrip_and_bytes_are_canonical_json(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        key = key_for("a")
        store.write(key, payload_for("a"))
        assert store.read(key) == payload_for("a")
        raw = Path(store.entry_path(key)).read_text(encoding="utf-8")
        assert raw == json.dumps(payload_for("a"), sort_keys=True)

    def test_legacy_flat_entry_is_readable_and_adopted(self, tmp_path):
        # An entry written by the pre-manifest flat cache: no manifest,
        # no lockfile, just the JSON.  Reading it must hit -- and adopt
        # it into the shard manifest so the budget can account for it.
        key = key_for("legacy")
        entry = tmp_path / key[:2] / (key + ".json")
        entry.parent.mkdir(parents=True)
        entry.write_text(json.dumps(payload_for("legacy")), encoding="utf-8")
        store = ShardedResultStore(str(tmp_path))
        assert store.read(key) == payload_for("legacy")
        manifest = json.loads(
            (tmp_path / key[:2] / MANIFEST_NAME).read_text())
        assert key in manifest["entries"]
        assert store.total_bytes() == entry.stat().st_size

    def test_read_of_absent_key_is_none_without_side_effects(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        assert store.read(key_for("ghost")) is None
        assert list(tmp_path.iterdir()) == []


class TestCorruptEntryHygiene:
    def test_truncated_entry_is_deleted_on_read(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        key = key_for("a")
        store.write(key, payload_for("a"))
        entry = Path(store.entry_path(key))
        # Hand-truncate the entry mid-token: a torn write survivor.
        raw = entry.read_text(encoding="utf-8")
        entry.write_text(raw[: len(raw) // 2], encoding="utf-8")
        assert store.read(key) is None
        assert not entry.exists()
        manifest = json.loads(
            (tmp_path / key[:2] / MANIFEST_NAME).read_text())
        assert key not in manifest["entries"]
        assert store.total_bytes() == 0

    def test_non_dict_payload_is_deleted_on_read(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        key = key_for("a")
        store.write(key, payload_for("a"))
        entry = Path(store.entry_path(key))
        entry.write_text("[1, 2, 3]", encoding="utf-8")
        assert store.read(key) is None
        assert not entry.exists()

    def test_cache_deletes_truncated_entry_on_corrupt_read(self, tmp_path):
        # The regression the ISSUE names, at the ResultCache level: a
        # hand-truncated entry is a miss and the file is gone after.
        ctx = ExperimentContext(**TINY)
        cache = ResultCache(str(tmp_path))
        cell = Cell.make("gcc", "bimodal", 256)
        cache.put_result(ctx, cell, execute_cell(ctx, cell))
        key = cache.result_key(ctx, cell)
        path = tmp_path / key[:2] / (key + ".json")
        raw = path.read_text(encoding="utf-8")
        path.write_text(raw[:37], encoding="utf-8")
        assert cache.get_result(ctx, cell) is None
        assert not path.exists()


class TestBudget:
    def test_zero_budget_means_unbounded(self, tmp_path):
        store = ShardedResultStore(str(tmp_path), max_bytes=0)
        for i in range(16):
            store.write(key_for(f"k{i}"), payload_for(f"k{i}"))
        assert len(entry_files(tmp_path)) == 16
        assert store.evictions == 0

    def test_budget_bounds_accounted_bytes(self, tmp_path):
        entry_size = len(json.dumps(payload_for("k0"), sort_keys=True))
        budget = entry_size * 3 + 1
        store = ShardedResultStore(str(tmp_path), max_bytes=budget)
        for i in range(12):
            store.write(key_for(f"k{i}"), payload_for(f"k{i}"))
        assert store.total_bytes() <= budget
        assert store.evictions == 12 - len(entry_files(tmp_path))
        assert store.evictions > 0

    def test_recently_read_entry_survives_eviction(self, tmp_path):
        # LRU is per-use stamps, not insertion order: rereading the
        # oldest entry must save it from the next eviction pass.
        entry_size = len(json.dumps(payload_for("k0"), sort_keys=True))
        store = ShardedResultStore(str(tmp_path), max_bytes=entry_size * 2)
        store.write(key_for("k0"), payload_for("k0"))
        store.write(key_for("k1"), payload_for("k1"))
        assert store.read(key_for("k0")) is not None  # refresh k0's stamp
        store.write(key_for("k2"), payload_for("k2"))
        assert store.read(key_for("k0")) is not None
        assert store.read(key_for("k1")) is None

    def test_default_budget_comes_from_env_knob(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        assert default_cache_max_bytes() == 0
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "4096")
        assert default_cache_max_bytes() == 4096
        assert ShardedResultStore(str(tmp_path)).max_bytes == 4096
        assert ShardedResultStore(str(tmp_path), max_bytes=7).max_bytes == 7


class TestRunnerStats:
    def test_summary_reports_store_counters(self, tmp_path):
        ctx = ExperimentContext(**TINY)
        cells = [Cell.make("gcc", "bimodal", 256),
                 Cell.make("gcc", "gshare", 512)]
        cold = CellExecutor(ctx, cache=ResultCache(str(tmp_path)))
        cold.execute(cells)
        assert cold.summary.cache_misses == 2
        assert cold.summary.cache_evictions == 0
        assert cold.summary.store_bytes is not None
        assert cold.summary.store_bytes > 0
        warm = CellExecutor(
            ExperimentContext(**TINY), cache=ResultCache(str(tmp_path)))
        warm.execute(cells)
        assert warm.summary.cache_hits == 2
        assert warm.summary.simulated == 0
        text = warm.summary.describe()
        assert "store: 2 hits, 0 misses, 0 evictions," in text

    def test_summary_reports_evictions_under_tiny_budget(self, tmp_path):
        ctx = ExperimentContext(**TINY)
        cells = [Cell.make("gcc", "bimodal", 256),
                 Cell.make("gcc", "gshare", 512),
                 Cell.make("go", "bimodal", 256)]
        executor = CellExecutor(
            ctx, cache=ResultCache(str(tmp_path), max_bytes=1))
        executor.execute(cells)
        assert executor.summary.cache_evictions > 0
        assert "evictions" in executor.summary.describe()

    def test_no_cache_means_no_store_line(self):
        ctx = ExperimentContext(**TINY)
        executor = CellExecutor(ctx)
        executor.execute([Cell.make("gcc", "bimodal", 256)])
        assert executor.summary.store_bytes is None
        assert "store:" not in executor.summary.describe()


# -- multi-process stress ---------------------------------------------------

_WRITES_PER_WRITER = 24


def _stress_writer(args: tuple[str, int, int]) -> int:
    """Write a batch of entries under a tiny budget; return evictions."""
    root, writer, max_bytes = args
    store = ShardedResultStore(root, max_bytes=max_bytes)
    for i in range(_WRITES_PER_WRITER):
        tag = f"w{writer}-{i}"
        store.write(key_for(tag), payload_for(tag))
    return store.evictions


class TestMultiProcessStress:
    def test_concurrent_writers_and_evictors(self, tmp_path):
        # N writers race: every write triggers an eviction pass, so the
        # evictor role is played concurrently by every process.  The
        # invariants: no torn files, every entry's bytes match its key's
        # expected payload (no lost or cross-wired results), and the
        # per-process eviction counters account for exactly the entries
        # that are gone.
        writers = 4
        entry_size = len(json.dumps(payload_for("w0-0"), sort_keys=True))
        budget = entry_size * 10
        with ProcessPoolExecutor(max_workers=writers) as pool:
            evictions = list(pool.map(
                _stress_writer,
                [(str(tmp_path), w, budget) for w in range(writers)],
            ))

        expected = {
            key_for(f"w{w}-{i}"): payload_for(f"w{w}-{i}")
            for w in range(writers)
            for i in range(_WRITES_PER_WRITER)
        }
        survivors = entry_files(tmp_path)
        for entry in survivors:
            payload = json.loads(entry.read_text(encoding="utf-8"))
            assert payload == expected[entry.stem]

        total_writes = writers * _WRITES_PER_WRITER
        assert len(survivors) + sum(evictions) == total_writes
        assert sum(evictions) > 0

        # No orphaned temp files, and the manifests parse and agree
        # with the surviving files' sizes.
        assert list(tmp_path.glob("??/*.tmp")) == []
        verifier = ShardedResultStore(str(tmp_path), max_bytes=budget)
        accounted = verifier.total_bytes()
        on_disk = sum(e.stat().st_size for e in survivors)
        assert accounted == on_disk

    def test_stress_survivors_stay_warm(self, tmp_path):
        # A surviving entry must be a genuine hit afterwards -- the
        # stress must not leave the store in a state where reads miss.
        budget = 10_000_000  # roomy: nothing evicted
        with ProcessPoolExecutor(max_workers=2) as pool:
            evictions = list(pool.map(
                _stress_writer,
                [(str(tmp_path), w, budget) for w in range(2)],
            ))
        assert sum(evictions) == 0
        store = ShardedResultStore(str(tmp_path), max_bytes=budget)
        for w in range(2):
            for i in range(_WRITES_PER_WRITER):
                tag = f"w{w}-{i}"
                assert store.read(key_for(tag)) == payload_for(tag)
