"""Tests for the experiment context, registry, reports, and runners.

Runners execute on a deliberately tiny context (4k-branch traces); these
tests check mechanics and report structure, not the paper's shapes --
shape checks live in the benchmark harness where traces are realistic.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    figures_gshare,
    figures_schemes,
    table1,
    table2,
    table3,
    table5,
    figure13,
)
from repro.experiments.common import ExperimentContext
from repro.experiments.registry import EXPERIMENT_IDS, get_experiment, run_experiment
from repro.experiments.report import ExperimentReport, ReportTable


class TestExperimentContext:
    def test_trace_cached(self, tiny_ctx):
        assert tiny_ctx.trace("compress") is tiny_ctx.trace("compress")

    def test_trace_length(self, tiny_ctx):
        assert len(tiny_ctx.trace("compress")) == 4_000

    def test_workload_cached(self, tiny_ctx):
        assert (tiny_ctx.workload("compress", "ref")
                is tiny_ctx.workload("compress", "ref"))

    def test_profile_cached(self, tiny_ctx):
        assert tiny_ctx.profile("compress") is tiny_ctx.profile("compress")

    def test_accuracy_cached_per_config(self, tiny_ctx):
        a = tiny_ctx.accuracy("compress", "bimodal", 1024)
        b = tiny_ctx.accuracy("compress", "bimodal", 1024)
        c = tiny_ctx.accuracy("compress", "bimodal", 2048)
        assert a is b
        assert a is not c

    def test_hints_cached(self, tiny_ctx):
        a = tiny_ctx.hints("compress", "static_95")
        assert tiny_ctx.hints("compress", "static_95") is a

    def test_run_none(self, tiny_ctx):
        result = tiny_ctx.run("compress", "bimodal", 1024)
        assert result.branches == 4_000
        assert result.scheme == "none"

    def test_run_static(self, tiny_ctx):
        result = tiny_ctx.run("compress", "gshare", 1024, scheme="static_95")
        assert result.static_branches > 0

    def test_run_needs_predictor_for_acc(self, tiny_ctx):
        # static_acc goes through hints() which requires predictor info;
        # ctx.run supplies it implicitly, so this must work.
        result = tiny_ctx.run("compress", "gshare", 1024, scheme="static_acc")
        assert result.scheme.startswith("static_acc")

    def test_unknown_scheme_raises(self, tiny_ctx):
        with pytest.raises(ExperimentError):
            tiny_ctx.hints("compress", "static_nope")

    def test_rejects_bad_length(self):
        with pytest.raises(ExperimentError):
            ExperimentContext(trace_length=0)


class TestReport:
    def test_add_and_lookup_table(self):
        report = ExperimentReport("x", "Title")
        table = report.add_table("T", ["a", "b"])
        table.rows.append([1, 2])
        assert report.table("T") is table
        with pytest.raises(KeyError):
            report.table("missing")

    def test_column_access(self):
        table = ReportTable("T", ["a", "b"], rows=[[1, 2], [3, 4]])
        assert table.column("b") == [2, 4]

    def test_render_includes_everything(self):
        report = ExperimentReport("x", "Title")
        report.add_table("T", ["a"]).rows.append([1])
        report.charts.append("CHART")
        report.notes.append("note text")
        text = report.render()
        assert "Title" in text and "CHART" in text and "note text" in text


class TestRegistry:
    def test_ids_cover_all_tables_and_figures(self):
        for table_id in ("table1", "table2", "table3", "table4", "table5"):
            assert table_id in EXPERIMENT_IDS
        for figure in range(1, 14):
            assert f"figure{figure}" in EXPERIMENT_IDS

    def test_unknown_id(self):
        with pytest.raises(ExperimentError):
            get_experiment("table99")

    def test_run_experiment_uses_given_ctx(self, tiny_ctx):
        report = run_experiment("table1", tiny_ctx)
        assert report.experiment_id == "table1"


class TestRunners:
    def test_table1(self, tiny_ctx):
        report = table1.run(tiny_ctx)
        rows = report.tables[0].rows
        assert len(rows) == 6
        assert rows[0][0] == "go"
        # Paper static counts reproduced in column 2.
        assert rows[1][1] == 38852

    def test_table2(self, tiny_ctx):
        report = table2.run(tiny_ctx)
        assert len(report.tables[0].rows) == 6
        assert set(report.data["accuracy"]["gcc"]) == set(table2.PREDICTORS)
        for program, accuracies in report.data["accuracy"].items():
            for value in accuracies.values():
                assert 0.0 < value <= 1.0

    def test_figure_gshare_single_program(self, tiny_ctx):
        report = figures_gshare.run_program(tiny_ctx, "compress")
        assert len(report.data["misp_none"]) == len(figures_gshare.SIZES)
        assert len(report.charts) == 2

    def test_figure_schemes_single_program(self, tiny_ctx):
        report = figures_schemes.run_program(tiny_ctx, "compress",
                                             size_bytes=1024)
        misp = report.data["misp"]
        assert set(misp) == set(figures_schemes.PREDICTORS)
        for per_scheme in misp.values():
            assert set(per_scheme) == set(figures_schemes.SCHEMES)

    def test_table3_structure(self, tiny_ctx):
        report = table3.run(tiny_ctx)
        assert len(report.tables[0].rows) == len(table3.SIZES)
        assert len(report.data["gcc"]["static_95"]) == len(table3.SIZES)

    def test_table5_structure(self, tiny_ctx):
        report = table5.run(tiny_ctx)
        assert len(report.tables[0].rows) == 6
        drift = report.data["perl"]
        assert 0.0 <= drift.coverage_static <= 1.0

    def test_figure13_structure(self, tiny_ctx):
        report = figure13.run(tiny_ctx)
        misp = report.data["misp"]
        assert set(misp) == {"go", "gcc", "perl", "m88ksim", "compress",
                             "ijpeg"}
        for results in misp.values():
            assert set(results) == {"none", "self", "cross-naive",
                                    "cross-filtered"}
            for value in results.values():
                assert value >= 0.0
