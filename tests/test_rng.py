"""Tests for deterministic named RNG streams."""

from repro.utils.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "go", "train") == derive_seed(1, "go", "train")

    def test_depends_on_root(self):
        assert derive_seed(1, "go") != derive_seed(2, "go")

    def test_depends_on_names(self):
        assert derive_seed(1, "go", "train") != derive_seed(1, "go", "ref")

    def test_depends_on_name_order(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_int_names_supported(self):
        assert derive_seed(1, "beh", 5) != derive_seed(1, "beh", 6)

    def test_64_bit_range(self):
        for i in range(50):
            assert 0 <= derive_seed(0, i) < 2**64

    def test_no_trivial_collisions(self):
        seeds = {derive_seed(42, "site", i) for i in range(10_000)}
        assert len(seeds) == 10_000


class TestDeriveRng:
    def test_same_stream_same_draws(self):
        a = derive_rng(9, "x")
        b = derive_rng(9, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_streams_differ(self):
        a = derive_rng(9, "x")
        b = derive_rng(9, "y")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]
