"""Shared fixtures: small, fast workloads and traces.

Tests use tiny trace lengths and site scales so the whole suite runs in
seconds; experiment *shape* checks (which need realistic sizes) live in
the benchmark harness, not here.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentContext
from repro.workloads.generator import build_workload
from repro.workloads.spec95 import get_spec
from repro.workloads.trace import BranchTrace

TEST_SEED = 7


@pytest.fixture(scope="session")
def gcc_workload():
    """A small gcc workload (ref input)."""
    return build_workload(get_spec("gcc"), "ref", root_seed=TEST_SEED,
                          site_scale=0.02)


@pytest.fixture(scope="session")
def gcc_trace(gcc_workload) -> BranchTrace:
    """A small gcc trace (~20k branches)."""
    return gcc_workload.execute(20_000, run_seed=1)


@pytest.fixture(scope="session")
def m88ksim_traces():
    """Small m88ksim train and ref traces (for drift/cross-training tests)."""
    train = build_workload(get_spec("m88ksim"), "train", root_seed=TEST_SEED,
                           site_scale=0.05).execute(20_000, run_seed=1)
    ref = build_workload(get_spec("m88ksim"), "ref", root_seed=TEST_SEED,
                         site_scale=0.05).execute(20_000, run_seed=1)
    return train, ref


@pytest.fixture()
def tiny_ctx() -> ExperimentContext:
    """An experiment context small enough for per-test experiment runs."""
    return ExperimentContext(trace_length=4_000, site_scale=0.02, seed=TEST_SEED)
