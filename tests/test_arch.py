"""Tests for the architecture substrate (ISA hints, programs)."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.isa import INSTRUCTION_BYTES, HintBits, ShiftPolicy
from repro.arch.program import BranchSite, Program
from repro.errors import ConfigurationError


class TestHintBits:
    def test_dynamic_defaults(self):
        hint = HintBits.dynamic()
        assert not hint.use_static
        assert not hint.direction
        assert not hint.shift_history

    def test_static_constructor(self):
        hint = HintBits.static(True, shift_history=True)
        assert hint.use_static and hint.direction and hint.shift_history

    def test_encode_decode_roundtrip_all(self):
        for bits in range(8):
            assert HintBits.decode(bits).encode() == bits

    @given(st.booleans(), st.booleans(), st.booleans())
    def test_roundtrip_property(self, use, direction, shift):
        hint = HintBits(use_static=use, direction=direction, shift_history=shift)
        assert HintBits.decode(hint.encode()) == hint

    def test_frozen(self):
        hint = HintBits.dynamic()
        with pytest.raises(AttributeError):
            hint.use_static = True

    def test_shift_policy_values(self):
        assert ShiftPolicy.NO_SHIFT.value == "no_shift"
        assert ShiftPolicy.SHIFT.value == "shift"
        assert ShiftPolicy.PER_BRANCH.value == "per_branch"


class TestBranchSite:
    def test_alignment_enforced(self):
        with pytest.raises(ConfigurationError):
            BranchSite(index=0, address=0x1001)

    def test_aligned_ok(self):
        site = BranchSite(index=3, address=0x1000, name="b3")
        assert site.address % INSTRUCTION_BYTES == 0
        assert not site.hints.use_static


class TestProgram:
    def test_synthesize_counts(self):
        program = Program.synthesize("demo", 100, seed=1)
        assert len(program) == 100
        assert len(program.addresses) == 100

    def test_addresses_unique_and_aligned(self):
        program = Program.synthesize("demo", 500, seed=2)
        addresses = program.addresses
        assert len(set(addresses)) == len(addresses)
        assert all(a % INSTRUCTION_BYTES == 0 for a in addresses)

    def test_deterministic_by_seed(self):
        a = Program.synthesize("demo", 50, seed=3)
        b = Program.synthesize("demo", 50, seed=3)
        assert a.addresses == b.addresses

    def test_different_seed_different_addresses(self):
        a = Program.synthesize("demo", 50, seed=3)
        b = Program.synthesize("demo", 50, seed=4)
        assert a.addresses != b.addresses

    def test_site_by_address(self):
        program = Program.synthesize("demo", 10, seed=5)
        site = program.sites[4]
        assert program.site_by_address(site.address) is site

    def test_rejects_zero_sites(self):
        with pytest.raises(ConfigurationError):
            Program.synthesize("demo", 0)

    def test_rejects_duplicate_addresses(self):
        sites = [
            BranchSite(index=0, address=0x1000),
            BranchSite(index=1, address=0x1000),
        ]
        with pytest.raises(ConfigurationError):
            Program("demo", sites)

    def test_hint_stamping_and_clearing(self):
        program = Program.synthesize("demo", 10, seed=6)
        program.sites[0].hints = HintBits.static(True)
        program.sites[1].hints = HintBits.static(False)
        assert program.count_static_hints() == 2
        program.clear_hints()
        assert program.count_static_hints() == 0

    def test_iteration_order(self):
        program = Program.synthesize("demo", 10, seed=7)
        assert [s.index for s in program] == list(range(10))
