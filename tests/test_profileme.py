"""Tests for the ProfileMe sampling profiler."""

import pytest

from repro.errors import ProfileError
from repro.predictors.gshare import GsharePredictor
from repro.profiling.profile import ProgramProfile
from repro.staticpred.selection import select_static_95, select_static_acc
from repro.tools.profileme import ProfileMeSampler


class TestSampling:
    def test_full_sampling_matches_instrumentation(self, gcc_trace):
        sampler = ProfileMeSampler(period=1)
        bias, accuracy = sampler.profile(gcc_trace, GsharePredictor(1024))
        full = ProgramProfile.from_trace(gcc_trace)
        assert len(bias) == len(full)
        for address, branch in full.items():
            assert bias[address].executions == branch.executions
            assert bias[address].taken == branch.taken

    def test_sample_volume_near_expected(self, gcc_trace):
        period = 10
        sampler = ProfileMeSampler(period=period, seed=3)
        bias, _ = sampler.profile(gcc_trace, GsharePredictor(1024))
        samples = bias.total_executions
        expected = len(gcc_trace) / period
        assert expected * 0.8 < samples < expected * 1.2

    def test_deterministic_by_seed(self, gcc_trace):
        a, _ = ProfileMeSampler(10, seed=5).profile(gcc_trace,
                                                    GsharePredictor(1024))
        b, _ = ProfileMeSampler(10, seed=5).profile(gcc_trace,
                                                    GsharePredictor(1024))
        assert a.branches.keys() == b.branches.keys()
        c, _ = ProfileMeSampler(10, seed=6).profile(gcc_trace,
                                                    GsharePredictor(1024))
        assert a.total_executions != c.total_executions or (
            a.branches != c.branches
        )

    def test_sampled_bias_tracks_true_bias_for_hot_branches(self, gcc_trace):
        sampler = ProfileMeSampler(period=8, seed=1)
        bias, _ = sampler.profile(gcc_trace, GsharePredictor(1024))
        full = ProgramProfile.from_trace(gcc_trace)
        checked = 0
        for address, sampled in bias.items():
            if sampled.executions < 20:
                continue
            checked += 1
            assert abs(sampled.taken_rate - full[address].taken_rate) < 0.2
        assert checked >= 3

    def test_input_name_records_period(self, gcc_trace):
        bias, accuracy = ProfileMeSampler(4).profile(gcc_trace,
                                                     GsharePredictor(256))
        assert "sampled/4" in bias.input_name
        assert accuracy.input_name == bias.input_name

    def test_rejects_bad_period(self):
        with pytest.raises(ProfileError):
            ProfileMeSampler(period=0)


class TestSelectionFromSamples:
    def test_static_95_from_samples_close_to_full(self, gcc_trace):
        # Selection from moderately sampled profiles should substantially
        # overlap full-profile selection on the hot branches.
        sampler = ProfileMeSampler(period=4, seed=2)
        sampled_bias, _ = sampler.profile(gcc_trace, GsharePredictor(1024))
        full_hints = select_static_95(ProgramProfile.from_trace(gcc_trace))
        sampled_hints = select_static_95(sampled_bias)
        full_set = set(full_hints.static_addresses())
        sampled_set = set(sampled_hints.static_addresses())
        assert sampled_set, "sampling selected nothing"
        overlap = len(full_set & sampled_set) / len(sampled_set)
        assert overlap > 0.8

    def test_static_acc_works_on_sampled_profiles(self, gcc_trace):
        sampler = ProfileMeSampler(period=4, seed=2)
        bias, accuracy = sampler.profile(gcc_trace, GsharePredictor(1024))
        hints = select_static_acc(bias, accuracy)
        assert hints.static_count() > 0

    def test_sparser_sampling_selects_fewer(self, gcc_trace):
        # With min_executions fixed, sparser samples qualify fewer
        # branches -- selection degrades gracefully, never explodes.
        dense_bias, _ = ProfileMeSampler(2, seed=1).profile(
            gcc_trace, GsharePredictor(1024)
        )
        sparse_bias, _ = ProfileMeSampler(32, seed=1).profile(
            gcc_trace, GsharePredictor(1024)
        )
        dense = select_static_95(dense_bias, min_executions=8)
        sparse = select_static_95(sparse_bias, min_executions=8)
        assert sparse.static_count() < dense.static_count()
