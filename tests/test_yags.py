"""Tests for the YAGS predictor."""

import pytest

from repro.errors import ConfigurationError
from repro.predictors.sizing import make_predictor
from repro.predictors.yags import YagsPredictor


def run_stream(predictor, stream):
    correct = 0
    for address, taken in stream:
        predicted = predictor.predict(address)
        predictor.update(address, taken, predicted)
        if predicted == taken:
            correct += 1
    return correct / len(stream)


class TestBasics:
    def test_learns_biased(self):
        predictor = YagsPredictor(cache_entries=64, choice_entries=256)
        assert run_stream(predictor, [(0x1000, True)] * 200) > 0.95

    def test_learns_not_taken(self):
        predictor = YagsPredictor(cache_entries=64, choice_entries=256)
        assert run_stream(predictor, [(0x1000, False)] * 200) > 0.95

    def test_exception_entry_allocated_on_choice_miss(self):
        predictor = YagsPredictor(cache_entries=64, choice_entries=256)
        # Train choice strongly taken, then flip the branch: a miss must
        # allocate an NT-cache entry for it.
        run_stream(predictor, [(0x1000, True)] * 20)
        predictor.predict(0x1000)
        predictor.update(0x1000, False, True)
        cache_id = predictor._last_cache
        index = predictor._last_cache_index
        assert cache_id == 0  # NT-cache (choice said taken)
        assert predictor.tags[cache_id][index] == predictor._last_tag

    def test_cache_hit_overrides_choice(self):
        predictor = YagsPredictor(cache_entries=64, choice_entries=256,
                                  history_length=1)
        # Alternate so the exception cache carries half the outcomes.
        accuracy = run_stream(
            predictor, [(0x1000, i % 2 == 0) for i in range(600)]
        )
        assert accuracy > 0.85


class TestAliasingResistance:
    def test_tags_separate_colliding_exceptions(self):
        # Two branches whose (pc ^ hist) indices collide but whose tags
        # differ: YAGS's selling point is that their exception entries
        # do not destroy each other the way untagged counters would.
        predictor = YagsPredictor(cache_entries=4, choice_entries=4096,
                                  tag_bits=10, history_length=1)
        address_a = 0x1000
        address_b = 0x1000 + 4 * 4  # same cache index pattern, distinct tag
        stream = []
        for i in range(300):
            stream.append((address_a, i % 2 == 0))
            stream.append((address_b, i % 2 == 1))
        accuracy = run_stream(predictor, stream)
        # An untagged 4-entry structure would thrash toward 50%; tags let
        # the most recent allocator win cleanly more often.
        assert accuracy > 0.6


class TestConfiguration:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            YagsPredictor(cache_entries=100, choice_entries=256)

    def test_rejects_bad_tag_bits(self):
        with pytest.raises(ConfigurationError):
            YagsPredictor(cache_entries=64, choice_entries=256, tag_bits=0)

    def test_rejects_long_history(self):
        with pytest.raises(ConfigurationError):
            YagsPredictor(cache_entries=64, choice_entries=256,
                          history_length=10)

    def test_size_accounts_for_tags(self):
        predictor = YagsPredictor(cache_entries=64, choice_entries=256,
                                  tag_bits=6)
        expected_bits = 2 * (64 * 2 + 64 * 6) + 256 * 2
        assert predictor.size_bytes == pytest.approx(expected_bits / 8)

    def test_factory_within_budget(self):
        for budget in (1024, 8192, 65536):
            predictor = make_predictor("yags", budget)
            assert predictor.size_bytes <= budget

    def test_reset(self):
        predictor = YagsPredictor(cache_entries=64, choice_entries=256)
        run_stream(predictor, [(0x1000, True)] * 50)
        predictor.reset()
        fresh = YagsPredictor(cache_entries=64, choice_entries=256)
        assert predictor.predict(0x1000) == fresh.predict(0x1000)
        assert all(t == -1 for tags in predictor.tags for t in tags)

    def test_accessed_within_tables(self):
        predictor = YagsPredictor(cache_entries=64, choice_entries=256)
        predictor.predict(0x1F3C)
        entry_counts = predictor.table_entry_counts()
        for table_id, index in predictor.accessed():
            assert 0 <= index < entry_counts[table_id]
