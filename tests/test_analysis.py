"""Tests for the analysis layer: classification, interference, cost."""

import pytest

from repro.analysis.classification import BiasClass, classify_branches
from repro.analysis.cost import PipelineCostModel
from repro.analysis.interference import analyze_interference
from repro.core.metrics import SimulationResult
from repro.errors import ConfigurationError
from repro.predictors.bimodal import BimodalPredictor
from repro.profiling.accuracy import AccuracyProfile, BranchAccuracy
from repro.profiling.profile import BranchProfile, ProgramProfile
from repro.workloads.trace import BranchTrace


def make_trace(records, program="demo"):
    trace = BranchTrace(program_name=program, input_name="ref")
    for address, taken in records:
        trace.site_indices.append(0)
        trace.addresses.append(address)
        trace.outcomes.append(taken)
        trace.gaps.append(1)
    return trace


class TestBiasClass:
    @pytest.mark.parametrize("rate,expected", [
        (0.0, BiasClass.MOSTLY_NOT_TAKEN),
        (0.05, BiasClass.MOSTLY_NOT_TAKEN),
        (0.10, BiasClass.NOT_TAKEN),
        (0.30, BiasClass.WEAKLY_NOT_TAKEN),
        (0.50, BiasClass.WEAKLY_NOT_TAKEN),
        (0.60, BiasClass.WEAKLY_TAKEN),
        (0.80, BiasClass.TAKEN),
        (0.95, BiasClass.MOSTLY_TAKEN),
        (1.0, BiasClass.MOSTLY_TAKEN),
    ])
    def test_band_edges(self, rate, expected):
        assert BiasClass.of(rate) is expected

    def test_highly_biased_tails_only(self):
        highly = {c for c in BiasClass if c.highly_biased}
        assert highly == {BiasClass.MOSTLY_TAKEN, BiasClass.MOSTLY_NOT_TAKEN}


class TestClassifyBranches:
    def _profile(self):
        return ProgramProfile("demo", "ref", {
            0x1000: BranchProfile(100, 99),   # mostly taken
            0x1004: BranchProfile(50, 1),     # mostly not taken
            0x1008: BranchProfile(200, 120),  # weakly taken
        })

    def test_counts_per_class(self):
        breakdown = classify_branches(self._profile())
        assert breakdown.stats(BiasClass.MOSTLY_TAKEN).static_branches == 1
        assert breakdown.stats(BiasClass.MOSTLY_NOT_TAKEN).static_branches == 1
        assert breakdown.stats(BiasClass.WEAKLY_TAKEN).static_branches == 1
        assert breakdown.total_executions == 350

    def test_dynamic_fractions(self):
        breakdown = classify_branches(self._profile())
        assert breakdown.dynamic_fraction(BiasClass.MOSTLY_TAKEN) == pytest.approx(100 / 350)
        assert breakdown.highly_biased_dynamic_fraction() == pytest.approx(150 / 350)

    def test_accuracy_folded_in(self):
        accuracy = AccuracyProfile("demo", "ref", "gshare", {
            0x1000: BranchAccuracy(100, 90),
            0x1008: BranchAccuracy(200, 100),
        })
        breakdown = classify_branches(self._profile(), accuracy)
        assert breakdown.stats(BiasClass.MOSTLY_TAKEN).predictor_accuracy == pytest.approx(0.9)
        assert breakdown.stats(BiasClass.WEAKLY_TAKEN).predictor_accuracy == pytest.approx(0.5)
        # Unmeasured class reports 0.
        assert breakdown.stats(BiasClass.MOSTLY_NOT_TAKEN).predictor_accuracy == 0.0

    def test_rows_cover_all_classes(self):
        rows = classify_branches(self._profile()).rows()
        assert len(rows) == len(BiasClass)

    def test_real_workload_matches_stats_module(self, gcc_trace):
        from repro.workloads.stats import dynamic_highly_biased_fraction

        profile = ProgramProfile.from_trace(gcc_trace)
        breakdown = classify_branches(profile)
        # Classification's >=95% bucket vs stats' >95% cutoff: close.
        assert breakdown.highly_biased_dynamic_fraction() == pytest.approx(
            dynamic_highly_biased_fraction(gcc_trace), abs=0.1
        )


class TestAnalyzeInterference:
    def test_destructive_pair_identified(self):
        colliding = 0x1000 + 4 * 4
        trace = make_trace([(0x1000, True), (colliding, False)] * 100)
        analysis = analyze_interference(trace, BimodalPredictor(4))
        assert analysis.total_destructive > 0
        top = analysis.top_destructive_pairs(2)
        top_pairs = {pair for pair, _ in top}
        assert (0x1000, colliding) in top_pairs
        assert (colliding, 0x1000) in top_pairs

    def test_no_aliasing_no_pairs(self):
        trace = make_trace([(0x1000, True), (0x1004, False)] * 50)
        analysis = analyze_interference(trace, BimodalPredictor(1024))
        assert analysis.total_collisions == 0
        assert analysis.pairs == {}
        assert analysis.destructive_fraction == 0.0

    def test_concentration(self):
        colliding = 0x1000 + 4 * 4
        trace = make_trace([(0x1000, True), (colliding, False)] * 100)
        analysis = analyze_interference(trace, BimodalPredictor(4))
        # All destruction comes from one pair of branches (two ordered
        # pairs); half of it from one.
        assert analysis.concentration(0.5) <= 2

    def test_concentration_rejects_bad_fraction(self):
        trace = make_trace([(0x1000, True)])
        analysis = analyze_interference(trace, BimodalPredictor(4))
        with pytest.raises(ValueError):
            analysis.concentration(0.0)

    def test_destructive_dominates_on_hostile_workload(self, gcc_trace):
        # Young et al.: collisions are more often destructive than
        # constructive -- at minimum, a tiny table on gcc produces a
        # substantial destructive share.
        analysis = analyze_interference(gcc_trace, BimodalPredictor(64))
        assert analysis.total_collisions > 0
        assert analysis.destructive_fraction > 0.2


class TestPipelineCostModel:
    def _result(self, misp, instructions=10_000):
        return SimulationResult(
            program_name="p", input_name="ref", predictor_name="x",
            scheme="none", size_bytes=1024, branches=1000,
            instructions=instructions, mispredictions=misp,
        )

    def test_cpi(self):
        model = PipelineCostModel(base_cpi=1.0, misprediction_penalty=10.0)
        result = self._result(100)  # 10 MISP/KI
        assert model.cpi(result) == pytest.approx(1.0 + 10 * 10 / 1000)

    def test_cycles(self):
        model = PipelineCostModel(base_cpi=1.0, misprediction_penalty=10.0)
        result = self._result(100)
        assert model.cycles(result) == pytest.approx(1.1 * 10_000)

    def test_speedup_direction(self):
        model = PipelineCostModel()
        worse = self._result(200)
        better = self._result(100)
        assert model.speedup(worse, better) > 1.0
        assert model.speedup(better, worse) < 1.0

    def test_overhead(self):
        model = PipelineCostModel(base_cpi=1.0, misprediction_penalty=10.0)
        result = self._result(100)
        assert model.mispredict_overhead(result) == pytest.approx(0.1 / 1.1)

    def test_zero_penalty(self):
        model = PipelineCostModel(misprediction_penalty=0.0)
        assert model.cpi(self._result(500)) == model.base_cpi

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            PipelineCostModel(base_cpi=0.0)
        with pytest.raises(ConfigurationError):
            PipelineCostModel(misprediction_penalty=-1.0)
