"""Runtime twin of the KEY001/ENV001 static proofs.

The lint layer proves *syntactically* that every result-influencing
input flows into the cache key; these tests prove it *operationally*:
perturbing any one Cell field or any keyed context knob must change the
result-cache key, and perturbing the audited ``_KEY_EXEMPT`` knobs must
not.  A key that failed the first family would alias two different
experiments to one cache entry (the destructive-aliasing failure mode
the cache exists to prevent); a key that failed the second would make
kernel mode an accidental experiment parameter.

The env-accessor tests pin the :mod:`repro.utils.env` seam semantics
the ``ENV_KNOBS`` contract relies on: empty string means unset, parse
failures raise the caller's error domain, and silent float truncation
is refused.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.arch.isa import ShiftPolicy
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.common import ENV_KNOBS, ExperimentContext
from repro.runner.cache import ResultCache
from repro.runner.cells import _KEY_EXEMPT, Cell
from repro.utils.env import env_float, env_int, env_str
from repro.utils.io import atomic_write_json, atomic_write_text

BASE_CTX = dict(trace_length=1000, site_scale=0.1, seed=1)

FIELD_PERTURBATIONS = {
    "program": "gcc",
    "predictor": "bimodal",
    "size_bytes": 2048,
    "scheme": "static_95",
    "shift_policy": ShiftPolicy.SHIFT,
    "measure_input": "train",
    "profile_input": "train",
    "cutoff": 0.90,
    "factor": 1.10,
    "track_collisions": True,
    "predictor_kwargs": (("history_length", 8),),
}


def base_cell() -> Cell:
    return Cell("compress", "gshare", 1024)


def key_of(cache: ResultCache, ctx: ExperimentContext) -> str:
    return cache.result_key(ctx, base_cell())


class TestCacheKeySoundness:
    def test_perturbation_table_covers_every_cell_field(self):
        assert set(FIELD_PERTURBATIONS) == {
            f.name for f in dataclasses.fields(Cell)
        }

    @pytest.mark.parametrize("field", sorted(FIELD_PERTURBATIONS))
    def test_each_cell_field_changes_the_key(self, tmp_path, field):
        cache = ResultCache(str(tmp_path))
        ctx = ExperimentContext(**BASE_CTX)
        cell = base_cell()
        mutated = dataclasses.replace(
            cell, **{field: FIELD_PERTURBATIONS[field]}
        )
        assert getattr(mutated, field) != getattr(cell, field)
        assert cache.result_key(ctx, mutated) != cache.result_key(ctx, cell)

    @pytest.mark.parametrize("knob,value", [
        ("seed", 2),
        ("trace_length", 2000),
        ("site_scale", 0.2),
    ])
    def test_each_keyed_context_knob_changes_the_key(self, tmp_path, knob, value):
        cache = ResultCache(str(tmp_path))
        base = key_of(cache, ExperimentContext(**BASE_CTX))
        mutated = key_of(
            cache, ExperimentContext(**{**BASE_CTX, knob: value})
        )
        assert mutated != base

    def test_exempt_knobs_leave_the_key_unchanged(self, tmp_path):
        # The operational proof behind each _KEY_EXEMPT entry: a cache
        # entry written under one kernel mode (or trace-store root) must
        # be readable under every other.
        cache = ResultCache(str(tmp_path))
        base = key_of(cache, ExperimentContext(**BASE_CTX))
        for kernel in ("auto", "fast", "reference"):
            assert key_of(
                cache, ExperimentContext(**BASE_CTX, kernel=kernel)
            ) == base
        assert key_of(
            cache, ExperimentContext(**BASE_CTX, trace_dir=str(tmp_path))
        ) == base

    def test_exempt_declarations_match_the_context(self):
        # Every exemption names a real ExperimentContext knob, so the
        # declaration cannot drift from the class it audits.
        ctx = ExperimentContext(**BASE_CTX)
        for name in _KEY_EXEMPT:
            assert hasattr(ctx, name)


class TestEnvKnobRegistry:
    def test_every_knob_declares_parser_default_and_description(self):
        for name, (parser, _default, description) in ENV_KNOBS.items():
            assert name.startswith("REPRO_")
            assert parser in ("str", "int", "float")
            assert description

    def test_registry_defaults_are_live(self, monkeypatch):
        # The context's env-driven defaults agree with the declared
        # contract (the runtime half of ENV001's default check).
        for knob in ("REPRO_TRACE_LENGTH", "REPRO_SEED", "REPRO_KERNEL"):
            monkeypatch.delenv(knob, raising=False)
        ctx = ExperimentContext(site_scale=0.1)
        assert ctx.trace_length == ENV_KNOBS["REPRO_TRACE_LENGTH"][1]
        assert ctx.seed == ENV_KNOBS["REPRO_SEED"][1]
        assert ctx.kernel == ENV_KNOBS["REPRO_KERNEL"][1]


class TestEnvAccessors:
    def test_unset_and_empty_mean_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_str("REPRO_TEST_KNOB", "fallback") == "fallback"
        monkeypatch.setenv("REPRO_TEST_KNOB", "")
        assert env_str("REPRO_TEST_KNOB", "fallback") == "fallback"
        assert env_int("REPRO_TEST_KNOB", 3) == 3
        assert env_float("REPRO_TEST_KNOB", 0.5) == 0.5

    def test_numeric_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "250")
        assert env_int("REPRO_TEST_KNOB", 1) == 250
        monkeypatch.setenv("REPRO_TEST_KNOB", "0.25")
        assert env_float("REPRO_TEST_KNOB", 1.0) == 0.25

    def test_non_numeric_raises_the_callers_domain(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "banana")
        with pytest.raises(ConfigurationError, match="must be numeric"):
            env_int("REPRO_TEST_KNOB", 1)
        with pytest.raises(ExperimentError, match="must be numeric"):
            env_float("REPRO_TEST_KNOB", 1.0, error=ExperimentError)

    def test_fractional_int_refuses_silent_truncation(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "2.5")
        with pytest.raises(ConfigurationError, match="would silently truncate"):
            env_int("REPRO_TEST_KNOB", 1)
        # A whole-valued float spelling is accepted exactly.
        monkeypatch.setenv("REPRO_TEST_KNOB", "2.0")
        assert env_int("REPRO_TEST_KNOB", 1) == 2


class TestAtomicWriteSeam:
    def test_atomic_write_text_commits_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "artifact.txt"
        atomic_write_text(str(path), "first")
        atomic_write_text(str(path), "second")
        assert path.read_text(encoding="utf-8") == "second"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["artifact.txt"]

    def test_atomic_write_json_is_canonical(self, tmp_path):
        path = tmp_path / "payload.json"
        atomic_write_json(str(path), {"b": 2, "a": 1})
        assert json.loads(path.read_text(encoding="utf-8")) == {"a": 1, "b": 2}
        # sort_keys=True by default: two writers of the same mapping
        # produce identical bytes.
        text = path.read_text(encoding="utf-8")
        assert text.index('"a"') < text.index('"b"')

    def test_failed_write_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "missing-dir" / "artifact.txt"
        with pytest.raises(OSError):
            atomic_write_text(str(target), "payload")
        assert not target.exists()
        assert not os.path.exists(target.parent)
