"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid parameters.

    Raised, for example, when a predictor is given a non-power-of-two
    hardware budget, a workload specification mixes behaviour fractions
    that do not sum to one, or a history length exceeds the register width
    supported by the simulator.
    """


class SizingError(ConfigurationError):
    """A hardware budget cannot be decomposed into the required tables."""


class WorkloadError(ReproError):
    """A synthetic workload could not be generated or loaded."""


class TraceFormatError(ReproError):
    """A trace file is malformed or has an unsupported version."""


class TraceSuiteError(ReproError):
    """A pinned trace suite or store operation failed.

    Raised for unknown suites/specs, missing artifacts that have not been
    generated yet, corrupt manifests, and digest mismatches between an
    artifact and its manifest or its pinned expectation.
    """


class ProfileError(ReproError):
    """Profile data is missing, inconsistent, or cannot be merged."""


class SelectionError(ReproError):
    """A static-selection scheme was invoked with insufficient inputs.

    ``Static_Acc`` requires per-branch dynamic-predictor accuracy data in
    addition to the bias profile; invoking it with a bias-only profile
    raises this error rather than silently selecting nothing.
    """


class ExperimentError(ReproError):
    """An experiment was requested with an unknown id or bad parameters."""


class ServiceError(ReproError):
    """The predictor service failed: protocol violations, a queue past
    its bound, a request past its deadline, or a server that cannot
    bind its endpoint.  Load shedding (a ``rejected`` response with a
    ``retry_after``) is *not* an error — it is the backpressure
    contract working; this class covers the failures around it.
    """


class LintError(ReproError):
    """The static-analysis pass was misconfigured (bad path, bad rule id).

    Note this is *not* raised for rule findings — those are data, and
    the CLI turns their presence into a nonzero exit status.
    """
