"""Table 1: test program characteristics.

Paper columns: static instruction count, static conditional-branch count,
dynamic instruction count and CBRs/KI for the train and ref inputs.

Our report shows the paper's published static counts (which the workload
specs reproduce at scale 1.0) alongside the experiment-scale measured
values, so the scaling substitution is visible rather than hidden.
"""

from __future__ import annotations

from repro.experiments.common import PROGRAMS, ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.workloads.spec95 import get_spec
from repro.workloads.stats import characterize

__all__ = ["run"]


def run(ctx: ExperimentContext) -> ExperimentReport:
    """Regenerate Table 1 from the synthetic workloads."""
    report = ExperimentReport(
        experiment_id="table1",
        title="Test program characteristics (paper Table 1)",
    )
    table = report.add_table(
        "Program characteristics",
        [
            "program",
            "paper static CBRs",
            "sim static CBRs",
            "train instrs",
            "train CBRs/KI",
            "paper train CBRs/KI",
            "ref instrs",
            "ref CBRs/KI",
            "paper ref CBRs/KI",
        ],
    )
    for program in PROGRAMS:
        spec = get_spec(program)
        train = characterize(ctx.trace(program, "train"))
        ref = characterize(ctx.trace(program, "ref"))
        table.rows.append(
            [
                program,
                spec.static_branches,
                spec.site_count(ctx.site_scale),
                train.instruction_count,
                round(train.cbrs_per_ki, 1),
                spec.cbrs_per_ki["train"],
                ref.instruction_count,
                round(ref.cbrs_per_ki, 1),
                spec.cbrs_per_ki["ref"],
            ]
        )
        report.data[program] = {
            "train": train,
            "ref": ref,
        }
    report.notes.append(
        "Paper dynamic instruction counts (0.5-63 billion) are replaced by "
        f"traces of {ctx.trace_length} branches; static branch counts are "
        f"scaled by {ctx.site_scale:g} for simulation (column 3) while "
        "column 2 reproduces the paper's counts."
    )
    report.notes.append(
        "Shape check: measured CBRs/KI should match the paper columns "
        "within sampling noise for every program and input."
    )
    return report
