"""Ablation studies beyond the paper's tables.

Four studies the paper motivates but does not tabulate:

* **Ablation A -- agree baseline**: the Sprangle et al. agree predictor
  attacks destructive aliasing purely in hardware; comparing it against
  gshare and gshare+static at equal budgets situates the paper's
  software-assisted approach against its closest dynamic rival.
* **Ablation B -- bias cutoff sweep**: Static_95's 95% cutoff is a free
  parameter; sweeping it (90/95/99%) shows the easy-branch selection
  trade-off between coverage and hint safety.
* **Ablation C -- history length sweep**: the paper stresses that the
  best gshare/ghist history length "varies with hardware table sizes and
  with programs"; this sweep documents the best length for our traces
  (and justifies the short default in
  :class:`~repro.predictors.gshare.GsharePredictor`).
* **Ablation D -- selection-scheme shootout**: the paper's two schemes
  against the two extensions this library adds: the collision-aware
  selection the paper flags as future work ("we want to predict only
  those branches statically that will boost constructive collisions and
  reduce destructive collisions") and Lindsay's full iterative scheme
  (the paper evaluated only its single-iteration simplification).
"""

from __future__ import annotations

from repro.core.metrics import SimulationResult, improvement
from repro.experiments.common import KIB, PROGRAMS, ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.runner import Cell, execute_cells
from repro.utils.tables import format_improvement

__all__ = ["run_agree", "run_cutoff_sweep", "run_history_sweep",
           "run_selection_shootout", "run", "cells", "synthesize"]

AGREE_SIZE = 8 * KIB
CUTOFFS = (0.90, 0.95, 0.99)
CUTOFF_PROGRAMS = ("gcc", "m88ksim")
CUTOFF_SIZE = 8 * KIB
HISTORY_LENGTHS = (2, 4, 6, 8, 10, 12, 13)
HISTORY_PROGRAM = "gcc"
HISTORY_SIZE = 8 * KIB
SHOOTOUT_SIZE = 2 * KIB   # small predictor: aliasing-dominated regime
SHOOTOUT_PROGRAMS = ("gcc", "go", "m88ksim")
SHOOTOUT_SCHEMES = ("static_95", "static_acc", "static_collision",
                    "static_iter")


def cells_agree(ctx: ExperimentContext) -> list[Cell]:
    """Ablation A cells: gshare/agree/bimode/yags + gshare+static_acc."""
    out: list[Cell] = []
    for program in PROGRAMS:
        for name in ("gshare", "agree", "bimode", "yags"):
            out.append(Cell.make(program, name, AGREE_SIZE))
        out.append(Cell.make(program, "gshare", AGREE_SIZE,
                             scheme="static_acc"))
    return out


def run_agree(ctx: ExperimentContext) -> ExperimentReport:
    """Ablation A: hardware anti-aliasing schemes vs static hints.

    The three purely dynamic answers to destructive aliasing the paper's
    related-work section surveys (agree's bias bits, bi-mode's direction
    channelling, YAGS's tagged exception caches) against plain gshare and
    against the paper's software answer (gshare + Static_Acc hints), all
    at equal budgets.
    """
    results = execute_cells(ctx, cells_agree(ctx))
    return synthesize_agree(ctx, results)


def synthesize_agree(
    ctx: ExperimentContext, results: dict[Cell, SimulationResult]
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="ablation-agree",
        title="Hardware anti-aliasing (agree, bi-mode, YAGS) vs "
              "static-assisted gshare",
    )
    table = report.add_table(
        f"MISP/KI at {AGREE_SIZE // KIB}KB budgets",
        ["program", "gshare", "agree", "bimode", "yags",
         "gshare+static_acc", "best hardware", "static vs gshare"],
    )
    for program in PROGRAMS:
        gshare = results[Cell.make(program, "gshare", AGREE_SIZE)]
        hardware = {
            name: results[Cell.make(program, name, AGREE_SIZE)]
            for name in ("agree", "bimode", "yags")
        }
        static = results[Cell.make(program, "gshare", AGREE_SIZE,
                                   scheme="static_acc")]
        best_name = min(hardware, key=lambda n: hardware[n].misp_per_ki)
        table.rows.append(
            [
                program,
                round(gshare.misp_per_ki, 2),
                round(hardware["agree"].misp_per_ki, 2),
                round(hardware["bimode"].misp_per_ki, 2),
                round(hardware["yags"].misp_per_ki, 2),
                round(static.misp_per_ki, 2),
                best_name,
                format_improvement(improvement(gshare, static)),
            ]
        )
        report.data[program] = {
            "gshare": gshare.misp_per_ki,
            "agree": hardware["agree"].misp_per_ki,
            "bimode": hardware["bimode"].misp_per_ki,
            "yags": hardware["yags"].misp_per_ki,
            "gshare+static_acc": static.misp_per_ki,
        }
    report.notes.append(
        "All three hardware mechanisms and the paper's profile-fed hint "
        "bits attack the same destructive aliasing; YAGS's tags are the "
        "strongest hardware answer at these budgets, and static hints "
        "remain competitive without any extra predictor storage."
    )
    return report


def cells_cutoff(ctx: ExperimentContext) -> list[Cell]:
    """Ablation B cells: gshare 8KB at each bias cutoff."""
    out: list[Cell] = []
    for program in CUTOFF_PROGRAMS:
        out.append(Cell.make(program, "gshare", CUTOFF_SIZE))
        for cutoff in CUTOFFS:
            out.append(Cell.make(program, "gshare", CUTOFF_SIZE,
                                 scheme="static_95", cutoff=cutoff))
    return out


def run_cutoff_sweep(ctx: ExperimentContext) -> ExperimentReport:
    """Ablation B: Static_95 cutoff sweep."""
    results = execute_cells(ctx, cells_cutoff(ctx))
    return synthesize_cutoff(ctx, results)


def synthesize_cutoff(
    ctx: ExperimentContext, results: dict[Cell, SimulationResult]
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="ablation-cutoff",
        title="Static_95 bias-cutoff sweep",
    )
    table = report.add_table(
        "gshare 8KB + static(bias>cutoff): MISP/KI and selection size",
        ["program", "cutoff", "static branches", "static fraction",
         "MISP/KI", "improvement"],
    )
    for program in CUTOFF_PROGRAMS:
        base = results[Cell.make(program, "gshare", CUTOFF_SIZE)]
        report.data[program] = {}
        for cutoff in CUTOFFS:
            result = results[Cell.make(program, "gshare", CUTOFF_SIZE,
                                       scheme="static_95", cutoff=cutoff)]
            gain = improvement(base, result)
            table.rows.append(
                [
                    program,
                    f"{cutoff:.0%}",
                    result.metadata["static_hint_count"],
                    f"{result.static_fraction:.1%}",
                    round(result.misp_per_ki, 2),
                    format_improvement(gain),
                ]
            )
            report.data[program][cutoff] = gain
    report.notes.append(
        "Lower cutoffs statically predict more branches (more aliasing "
        "relief) at the cost of weaker per-branch static accuracy."
    )
    return report


def cells_history(ctx: ExperimentContext) -> list[Cell]:
    """Ablation C cells: gshare at each history length."""
    return [Cell.make(HISTORY_PROGRAM, "gshare", HISTORY_SIZE,
                      predictor_kwargs={"history_length": length})
            for length in HISTORY_LENGTHS]


def run_history_sweep(ctx: ExperimentContext) -> ExperimentReport:
    """Ablation C: gshare history-length sweep."""
    results = execute_cells(ctx, cells_history(ctx))
    return synthesize_history(ctx, results)


def synthesize_history(
    ctx: ExperimentContext, results: dict[Cell, SimulationResult]
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="ablation-history",
        title="gshare history-length sweep (paper Section 2 discussion)",
    )
    table = report.add_table(
        f"gshare {HISTORY_SIZE // KIB}KB on {HISTORY_PROGRAM}: "
        "MISP/KI vs history length",
        ["history bits", "MISP/KI", "accuracy"],
    )
    best_length = None
    best_misp = float("inf")
    for length in HISTORY_LENGTHS:
        result = results[Cell.make(
            HISTORY_PROGRAM, "gshare", HISTORY_SIZE,
            predictor_kwargs={"history_length": length},
        )]
        table.rows.append(
            [length, round(result.misp_per_ki, 2), f"{result.accuracy:.1%}"]
        )
        report.data[length] = result.misp_per_ki
        if result.misp_per_ki < best_misp:
            best_misp = result.misp_per_ki
            best_length = length
    report.notes.append(
        f"Best history length for {HISTORY_PROGRAM} at this size/trace "
        f"scale: {best_length} bits -- the basis for the library's short "
        "default gshare history."
    )
    return report


def cells_shootout(ctx: ExperimentContext) -> list[Cell]:
    """Ablation D cells: every selection scheme at the 2KB budget."""
    out: list[Cell] = []
    for program in SHOOTOUT_PROGRAMS:
        out.append(Cell.make(program, "gshare", SHOOTOUT_SIZE))
        for scheme in SHOOTOUT_SCHEMES:
            out.append(Cell.make(program, "gshare", SHOOTOUT_SIZE,
                                 scheme=scheme))
    return out


def run_selection_shootout(ctx: ExperimentContext) -> ExperimentReport:
    """Ablation D: the paper's schemes vs the library's extensions."""
    results = execute_cells(ctx, cells_shootout(ctx))
    return synthesize_shootout(ctx, results)


def synthesize_shootout(
    ctx: ExperimentContext, results: dict[Cell, SimulationResult]
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="ablation-selection",
        title="Selection schemes: paper's vs extensions "
              "(collision-aware future work, iterative Lindsay)",
    )
    table = report.add_table(
        f"gshare {SHOOTOUT_SIZE // KIB}KB: improvement and hint cost per scheme",
        ["program", "scheme", "improvement", "static fraction",
         "hints issued"],
    )
    for program in SHOOTOUT_PROGRAMS:
        base = results[Cell.make(program, "gshare", SHOOTOUT_SIZE)]
        report.data[program] = {}
        for scheme in SHOOTOUT_SCHEMES:
            result = results[Cell.make(program, "gshare", SHOOTOUT_SIZE,
                                       scheme=scheme)]
            gain = improvement(base, result)
            hint_count = result.metadata["static_hint_count"]
            table.rows.append(
                [
                    program,
                    scheme,
                    format_improvement(gain),
                    f"{result.static_fraction:.1%}",
                    hint_count,
                ]
            )
            report.data[program][scheme] = {
                "gain": gain,
                "static_fraction": result.static_fraction,
                "hints": hint_count,
            }
    report.notes.append(
        "static_collision targets only branches implicated in destructive "
        "collisions: it should deliver most of static_95's gain with "
        "noticeably fewer hints; static_iter should match or beat "
        "static_acc (it is static_acc re-run to a fixpoint)."
    )
    return report


def cells(ctx: ExperimentContext) -> list[Cell]:
    """Declared cell list for all four ablations."""
    return (cells_agree(ctx) + cells_cutoff(ctx) + cells_history(ctx)
            + cells_shootout(ctx))


def run(ctx: ExperimentContext) -> ExperimentReport:
    """All four ablations in one combined report."""
    results = execute_cells(ctx, cells(ctx))
    return synthesize(ctx, results)


def synthesize(
    ctx: ExperimentContext, results: dict[Cell, SimulationResult]
) -> ExperimentReport:
    """Build the combined ablations report from cell results."""
    combined = ExperimentReport(
        experiment_id="ablations",
        title="Ablation studies (agree baseline, cutoff sweep, history "
              "sweep, selection shootout)",
    )
    for sub in (
        synthesize_agree(ctx, results),
        synthesize_cutoff(ctx, results),
        synthesize_history(ctx, results),
        synthesize_shootout(ctx, results),
    ):
        combined.tables.extend(sub.tables)
        combined.charts.extend(sub.charts)
        combined.notes.extend(sub.notes)
        combined.data[sub.experiment_id] = sub.data
    return combined
