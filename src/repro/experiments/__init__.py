"""Experiment runners: one per table and figure of the paper.

Every experiment is registered in :mod:`repro.experiments.registry` under
the paper's table/figure id and returns an
:class:`~repro.experiments.report.ExperimentReport` that renders the
corresponding rows or series as text.  The benchmark harness under
``benchmarks/`` and the CLI (``repro experiment <id>``) are thin wrappers
over these runners.

Shared configuration -- trace lengths, the experiment site scale, the
cached workload/trace/profile store -- lives in
:mod:`repro.experiments.common`; see its docstring for how the
``REPRO_*`` environment variables scale experiment cost.
"""

from repro.experiments.common import ExperimentContext, default_context
from repro.experiments.registry import EXPERIMENT_IDS, get_experiment, run_experiment
from repro.experiments.report import ExperimentReport

__all__ = [
    "ExperimentContext",
    "default_context",
    "ExperimentReport",
    "EXPERIMENT_IDS",
    "get_experiment",
    "run_experiment",
]
