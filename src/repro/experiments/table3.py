"""Table 3: 2bcgskew improvements for go and gcc across sizes.

Paper Table 3 reports the percentage MISPs/KI improvement of Static_95
and Static_Acc over plain 2bcgskew at 2-32 Kbytes for go and gcc.  The
shape: improvements are largest at small sizes and shrink (go even turns
negative) as the predictor grows, while gcc -- the program with the most
branches and the most aliasing -- keeps benefiting at every size.
"""

from __future__ import annotations

from repro.core.metrics import SimulationResult, improvement
from repro.experiments.common import KIB, ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.runner import Cell, execute_cells
from repro.utils.tables import format_improvement

__all__ = ["run", "cells", "synthesize", "SIZES", "PROGRAMS_STUDIED"]

SIZES = (2 * KIB, 4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB)
PROGRAMS_STUDIED = ("go", "gcc")
SCHEMES = ("none", "static_95", "static_acc")


def cells(ctx: ExperimentContext) -> list[Cell]:
    """Declared cell list: 2bcgskew at every size x program x scheme."""
    return [Cell.make(program, "2bcgskew", size, scheme=scheme)
            for size in SIZES
            for program in PROGRAMS_STUDIED
            for scheme in SCHEMES]


def run(ctx: ExperimentContext) -> ExperimentReport:
    """Regenerate Table 3."""
    results = execute_cells(ctx, cells(ctx))
    return synthesize(ctx, results)


def synthesize(
    ctx: ExperimentContext, results: dict[Cell, SimulationResult]
) -> ExperimentReport:
    """Build Table 3 from cell results."""
    report = ExperimentReport(
        experiment_id="table3",
        title="2bcgskew: improvements with static prediction for go & gcc "
              "(paper Table 3)",
    )
    table = report.add_table(
        "MISPs/KI improvement over plain 2bcgskew",
        ["size"]
        + [f"{p}: {s}" for p in PROGRAMS_STUDIED for s in ("static_95", "static_acc")],
    )
    data: dict[str, dict[str, list[float]]] = {
        p: {"static_95": [], "static_acc": []} for p in PROGRAMS_STUDIED
    }
    for size in SIZES:
        row: list[object] = [f"{size // KIB} Kbytes"]
        for program in PROGRAMS_STUDIED:
            base = results[Cell.make(program, "2bcgskew", size)]
            for scheme in ("static_95", "static_acc"):
                combined = results[Cell.make(program, "2bcgskew", size,
                                             scheme=scheme)]
                gain = improvement(base, combined)
                data[program][scheme].append(gain)
                row.append(format_improvement(gain))
        table.rows.append(row)
    report.data.update(data)
    report.notes.append(
        "Shape checks: gains shrink as 2bcgskew grows; Static_Acc beats "
        "Static_95; gcc's gains exceed go's and persist at large sizes "
        "(paper: gcc +13-14% at 2KB falling to +2-4% at 32KB; go turning "
        "negative by 32KB)."
    )
    return report
