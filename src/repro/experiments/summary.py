"""Run every experiment and consolidate the paper-vs-measured record.

``run_all`` executes each registered table/figure experiment against one
shared context and returns the individual reports plus a consolidated
summary report whose rows match the EXPERIMENTS.md ledger: experiment id,
the paper's headline claim, and the measured headline number.

The CLI exposes it as ``repro experiment summary`` -- the one-command
regeneration of the whole evaluation section.
"""

from __future__ import annotations

from repro.experiments import (
    ablations,
    figure13,
    figures_gshare,
    figures_schemes,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.common import PROGRAMS, ExperimentContext
from repro.experiments.report import ExperimentReport

__all__ = ["run_all"]


def _gshare_headline(report: ExperimentReport) -> tuple[float, float]:
    """(best, worst) static improvement over the size sweep of one program."""
    gains = []
    for base, static in zip(report.data["misp_none"], report.data["misp_static"]):
        gains.append((base - static) / base if base else 0.0)
    return max(gains), min(gains)


def run_all(ctx: ExperimentContext) -> ExperimentReport:
    """Execute the full evaluation and produce the consolidated summary."""
    summary = ExperimentReport(
        experiment_id="summary",
        title="Consolidated paper-vs-measured summary (all tables & figures)",
    )
    ledger = summary.add_table(
        "Headline results",
        ["experiment", "paper headline", "measured"],
    )

    # Table 1 -- branch densities.
    t1 = table1.run(ctx)
    gcc_row = next(row for row in t1.tables[0].rows if row[0] == "gcc")
    ledger.rows.append([
        "table1",
        "gcc densest at 156 CBRs/KI (ref)",
        f"gcc measured {gcc_row[7]} CBRs/KI",
    ])
    summary.data["table1"] = t1

    # Table 2 -- bias/accuracy correlation.
    t2 = table2.run(ctx)
    accuracy = t2.data["accuracy"]
    ledger.rows.append([
        "table2",
        "accuracy rises with biased fraction; go hardest, m88ksim easiest",
        f"go 2bcgskew {accuracy['go']['2bcgskew']:.1%}, "
        f"m88ksim 2bcgskew {accuracy['m88ksim']['2bcgskew']:.1%}",
    ])
    summary.data["table2"] = t2

    # Figures 1-6 -- gshare sweeps.
    for program in PROGRAMS:
        report = figures_gshare.run_program(ctx, program)
        best, worst = _gshare_headline(report)
        ledger.rows.append([
            report.experiment_id,
            f"{program}: static always improves gshare, most at small sizes",
            f"gain {best:+.1%} (smallest size) .. {worst:+.1%} (largest)",
        ])
        summary.data[report.experiment_id] = report

    # Figures 7-12 -- scheme panels.
    for program in PROGRAMS:
        report = figures_schemes.run_program(ctx, program)
        misp = report.data["misp"]
        ghist_gain = 0.0
        if misp["ghist"]["none"]:
            ghist_gain = (misp["ghist"]["none"] - misp["ghist"]["static_95"]) / misp["ghist"]["none"]
        bimodal_change = 0.0
        if misp["bimodal"]["none"]:
            bimodal_change = (misp["bimodal"]["none"] - misp["bimodal"]["static_95"]) / misp["bimodal"]["none"]
        ledger.rows.append([
            report.experiment_id,
            f"{program}: ghist+static_95 gains, bimodal+static_95 flat",
            f"ghist {ghist_gain:+.1%}, bimodal {bimodal_change:+.1%}",
        ])
        summary.data[report.experiment_id] = report

    # Table 3 -- 2bcgskew improvements.
    t3 = table3.run(ctx)
    ledger.rows.append([
        "table3",
        "2bcgskew gains shrink with size; gcc +13-14% at 2KB",
        f"gcc static_acc {t3.data['gcc']['static_acc'][0]:+.1%} at 2KB, "
        f"{t3.data['gcc']['static_acc'][-1]:+.1%} at 32KB",
    ])
    summary.data["table3"] = t3

    # Table 4 -- the shift knob.
    t4 = table4.run(ctx)
    improvements = t4.data["improvements"]
    rescued = sum(
        1 for cell in improvements.values()
        if cell["static_acc"] < -0.005
        and cell["static_acc+shift"] > cell["static_acc"]
    )
    degraded = sum(
        1 for cell in improvements.values() if cell["static_acc"] < -0.005
    )
    ledger.rows.append([
        "table4",
        "shifting rescues static_acc degradations",
        f"{rescued}/{degraded} static_acc degradation cells rescued by shift",
    ])
    summary.data["table4"] = t4

    # Table 5 -- drift.
    t5 = table5.run(ctx)
    coverages = {p: t5.data[p].coverage_static for p in PROGRAMS}
    ledger.rows.append([
        "table5",
        "perl has the lowest train coverage",
        f"lowest coverage: {min(coverages, key=coverages.get)} "
        f"({min(coverages.values()):.0%})",
    ])
    summary.data["table5"] = t5

    # Figure 13 -- cross-training.
    f13 = figure13.run(ctx)
    misp13 = f13.data["misp"]
    perl = misp13["perl"]
    ledger.rows.append([
        "figure13",
        "naive cross-training blows up perl/m88ksim; filtering rescues",
        f"perl none {perl['none']:.2f} / naive {perl['cross-naive']:.2f} / "
        f"filtered {perl['cross-filtered']:.2f} MISP/KI",
    ])
    summary.data["figure13"] = f13

    # Ablations.
    shootout = ablations.run_selection_shootout(ctx)
    gcc_shootout = shootout.data["gcc"]
    ledger.rows.append([
        "ablation-selection",
        "future-work collision scheme: most gain per hint",
        f"gcc gains: 95 {gcc_shootout['static_95']['gain']:+.1%} / "
        f"acc {gcc_shootout['static_acc']['gain']:+.1%} / "
        f"collision {gcc_shootout['static_collision']['gain']:+.1%} / "
        f"iter {gcc_shootout['static_iter']['gain']:+.1%}",
    ])
    summary.data["ablation-selection"] = shootout

    summary.notes.append(
        "Absolute MISP/KI values are not comparable to the paper "
        "(synthetic workloads, traces ~10^4x shorter); the ledger tracks "
        "shape claims.  Full per-experiment reports are in "
        "benchmarks/results/ after a benchmark run."
    )
    return summary
