"""Shared experiment configuration and cached simulation context.

Scaling knobs (environment variables, all optional):

``REPRO_TRACE_LENGTH``
    Branches per measurement trace (default 200000).  Experiment wall
    time scales linearly with it.
``REPRO_EXPERIMENT_SITE_SCALE``
    Static-branch scale for experiment workloads (default 0.125).  The
    paper's runs cover billions of branches; scaling the static branch
    count by the same factor as the trace length keeps per-branch
    execution counts -- and therefore predictor warm-up -- realistic.
    Table 1 separately reports the paper's unscaled static counts.
``REPRO_SEED``
    Root seed for every workload and trace (default 42).
``REPRO_KERNEL``
    Simulation kernel mode (default ``auto``; see :mod:`repro.kernels`).
    Kernels are bit-identical to the reference loop by contract, so this
    knob changes wall time, never results -- it is deliberately *not*
    part of any cache key.
``REPRO_TRACE_SUITE``
    When set, name of a pinned trace suite (see :mod:`repro.traces`):
    every ``ctx.trace()`` loads the suite's content-digested artifact
    instead of regenerating, and the artifact digest is folded into
    result-cache keys.  Unset (the default) keeps the regeneration
    path, whose cache keys are unchanged.
``REPRO_TRACE_DIR``
    Root of the pinned-trace store (default ``.repro-traces``); only
    consulted in replay mode.

The :class:`ExperimentContext` memoizes workloads, traces, bias
profiles, per-predictor accuracy profiles, and hint assignments, because
the figure/table runners share most of their inputs (e.g. every
Figures 7-12 panel reuses the same six ref traces).
"""

from __future__ import annotations

from typing import Callable

from repro.arch.isa import ShiftPolicy
from repro.core.metrics import SimulationResult
from repro.core.simulator import run_combined, simulate
from repro.errors import ExperimentError
from repro.kernels import validate_kernel_mode
from repro.predictors.base import BranchPredictor
from repro.predictors.sizing import make_predictor
from repro.profiling.accuracy import AccuracyProfile, measure_accuracy
from repro.profiling.collision_profile import (
    CollisionProfile,
    measure_collision_involvement,
)
from repro.profiling.profile import ProgramProfile
from repro.staticpred.hints import HintAssignment
from repro.utils.env import env_float, env_int, env_str
from repro.staticpred.iterative import select_static_iterative
from repro.staticpred.selection import (
    select_static_95,
    select_static_acc,
    select_static_collision,
    select_static_fac,
)
from repro.workloads.generator import SyntheticWorkload, build_workload
from repro.workloads.spec95 import PROGRAM_ORDER, get_spec
from repro.workloads.trace import BranchTrace

__all__ = [
    "PROGRAMS",
    "KIB",
    "ENV_KNOBS",
    "default_trace_length",
    "default_site_scale",
    "default_seed",
    "default_trace_suite",
    "ExperimentContext",
    "default_context",
]

PROGRAMS = PROGRAM_ORDER
KIB = 1024

#: The environment-knob contract: name -> (parser kind, default, what it
#: does).  This is the package's complete inventory of environment
#: inputs: every knob read anywhere in :mod:`repro` must be declared
#: here and read through the typed accessors in :mod:`repro.utils.env`.
#: Lint rule ENV001 enforces the contract in both directions -- an
#: accessor call naming an undeclared knob (or disagreeing with the
#: declared parser/default) is a finding, and so is a declared knob no
#: accessor ever reads.  Keeping the inventory machine-checked is what
#: lets KEY001 reason about which knobs can influence cached results.
ENV_KNOBS = {
    "REPRO_TRACE_LENGTH": ("int", 200_000, "branches per measurement trace"),
    "REPRO_EXPERIMENT_SITE_SCALE": ("float", 0.125, "static-branch scale for experiment workloads"),
    "REPRO_SEED": ("int", 42, "root seed for every workload and trace"),
    "REPRO_KERNEL": ("str", "auto", "simulation kernel mode (auto/fast/reference)"),
    "REPRO_TRACE_SUITE": ("str", None, "pinned trace suite name (unset = regenerate)"),
    "REPRO_TRACE_DIR": ("str", ".repro-traces", "root of the pinned-trace store"),
    "REPRO_CACHE_DIR": ("str", None, "persistent result-cache directory (unset = CLI default)"),
    "REPRO_CACHE_MAX_BYTES": ("int", 0, "result-store size budget in bytes (0 = unbounded)"),
    "REPRO_JOBS": ("int", 1, "runner worker count"),
    "REPRO_SITE_SCALE": ("float", 1.0, "global static-site scale for workload construction"),
    "REPRO_SERVICE_HOST": ("str", "127.0.0.1", "predictor-service bind/connect host"),
    "REPRO_SERVICE_PORT": ("int", 8177, "predictor-service TCP port"),
    "REPRO_SERVICE_BATCH_WINDOW_MS": ("float", 5.0, "batching window in milliseconds"),
    "REPRO_SERVICE_MAX_BATCH": ("int", 64, "max cells dispatched per batch"),
    "REPRO_SERVICE_QUEUE_LIMIT": ("int", 1024, "queued+in-flight bound before backpressure"),
    "REPRO_SERVICE_TIMEOUT_S": ("float", 60.0, "per-request service timeout in seconds"),
}


def default_trace_length() -> int:
    """Measurement-trace length in branches."""
    return env_int("REPRO_TRACE_LENGTH", 200_000, error=ExperimentError)


def default_site_scale() -> float:
    """Static-branch scale used by experiment workloads."""
    return env_float("REPRO_EXPERIMENT_SITE_SCALE", 0.125, error=ExperimentError)


def default_seed() -> int:
    """Root seed for experiment workloads."""
    return env_int("REPRO_SEED", 42, error=ExperimentError)


def default_kernel() -> str:
    """Simulation kernel mode (``auto``/``fast``/``reference``)."""
    kernel = env_str("REPRO_KERNEL", "auto")
    validate_kernel_mode(kernel)
    return kernel


def default_trace_suite() -> str | None:
    """Pinned trace suite name from the environment (None = regenerate)."""
    return env_str("REPRO_TRACE_SUITE")


class ExperimentContext:
    """Cached workloads, traces, profiles, and hint assignments."""

    def __init__(
        self,
        trace_length: int | None = None,
        site_scale: float | None = None,
        seed: int | None = None,
        kernel: str | None = None,
        trace_suite: "str | None" = None,
        trace_dir: str | None = None,
    ):
        self.trace_length = trace_length if trace_length is not None else default_trace_length()
        self.site_scale = site_scale if site_scale is not None else default_site_scale()
        self.seed = seed if seed is not None else default_seed()
        self.kernel = kernel if kernel is not None else default_kernel()
        # ``trace_suite`` accepts a suite name or a TraceSuite instance;
        # None (with REPRO_TRACE_SUITE unset) keeps the regeneration
        # path.  ``trace_dir`` overrides the store root (else
        # REPRO_TRACE_DIR / .repro-traces, resolved by the store).
        self.trace_suite = trace_suite if trace_suite is not None else default_trace_suite()
        self.trace_dir = trace_dir
        if self.trace_length <= 0:
            raise ExperimentError(f"trace_length must be positive, got {self.trace_length}")
        validate_kernel_mode(self.kernel)
        self._workloads: dict[tuple, SyntheticWorkload] = {}
        self._traces: dict[tuple, BranchTrace] = {}
        self._trace_digests: dict[tuple, str] = {}
        self._profiles: dict[tuple, ProgramProfile] = {}
        self._accuracies: dict[tuple, AccuracyProfile] = {}
        self._collision_profiles: dict[tuple, CollisionProfile] = {}
        self._hints: dict[tuple, HintAssignment] = {}

    def __reduce__(self):
        """Pickle as the defining knobs only.

        Everything a context memoizes is a pure function of
        ``(trace_length, site_scale, seed)`` -- plus, in replay mode,
        the pinned suite and store root -- so shipping a context to a
        :mod:`repro.runner` worker process transfers a few values and
        the worker rebuilds (and re-memoizes) traces on demand --
        bit-identical to the parent's, by the determinism contract.
        ``kernel`` rides along so workers honor the requested execution
        strategy; by the bit-identical kernel contract it is an
        execution detail, which is why it stays out of every cache key
        (see :meth:`repro.runner.cells.Cell.key_fields`).
        """
        return (ExperimentContext,
                (self.trace_length, self.site_scale, self.seed, self.kernel,
                 self.trace_suite, self.trace_dir))

    # -- workloads and traces -------------------------------------------

    def workload(self, program: str, input_name: str) -> SyntheticWorkload:
        """The (cached) workload for one program and input."""
        key = (program, input_name)
        workload = self._workloads.get(key)
        if workload is None:
            workload = build_workload(
                get_spec(program), input_name,
                root_seed=self.seed, site_scale=self.site_scale,
            )
            self._workloads[key] = workload
        return workload

    def trace(self, program: str, input_name: str = "ref",
              length: int | None = None) -> BranchTrace:
        """The (cached) trace for one program and input.

        In replay mode (``trace_suite`` set) the trace loads from the
        pinned store artifact instead of regenerating; a context knob
        combination the suite does not pin is an error, never a silent
        fallback to regeneration -- mixing pinned and regenerated
        streams inside one run would defeat the point of pinning.
        """
        if length is None:
            length = self.trace_length
        key = (program, input_name, length)
        trace = self._traces.get(key)
        if trace is None:
            if self.trace_suite is not None:
                trace = self._load_pinned(program, input_name, length)
            else:
                trace = self.workload(program, input_name).execute(length, run_seed=1)
            self._traces[key] = trace
        return trace

    # -- pinned replay (see repro.traces) --------------------------------

    def _pinned_spec(self, program: str, input_name: str, length: int):
        """Resolve context knobs to the suite's spec; error if unpinned."""
        from repro.traces import get_suite

        suite = get_suite(self.trace_suite)
        spec = suite.lookup(program, input_name, length, self.seed, self.site_scale)
        if spec is None:
            raise ExperimentError(
                f"trace suite {suite.name!r} pins no trace for "
                f"program={program!r} input={input_name!r} length={length} "
                f"seed={self.seed} site_scale={self.site_scale}; add a "
                "TraceSpec to the suite or unset REPRO_TRACE_SUITE"
            )
        return spec

    def _store(self):
        from repro.traces import TraceStore

        return TraceStore(self.trace_dir)

    def _load_pinned(self, program: str, input_name: str,
                     length: int) -> BranchTrace:
        spec = self._pinned_spec(program, input_name, length)
        store = self._store()
        trace = store.load(spec)
        self._trace_digests[(program, input_name, length)] = (
            store.content_digest(spec)
        )
        return trace

    def trace_digest(self, program: str, input_name: str = "ref",
                     length: int | None = None) -> str | None:
        """Content digest of the pinned trace, or None when regenerating.

        This is what :meth:`repro.runner.cells.Cell.key_fields` folds
        into the result-cache key in replay mode; reading it does not
        load the trace (the digest comes from the artifact manifest).
        """
        if self.trace_suite is None:
            return None
        if length is None:
            length = self.trace_length
        key = (program, input_name, length)
        digest = self._trace_digests.get(key)
        if digest is None:
            digest = self._store().content_digest(
                self._pinned_spec(program, input_name, length)
            )
            self._trace_digests[key] = digest
        return digest

    # -- profiles --------------------------------------------------------

    def profile(self, program: str, input_name: str = "ref") -> ProgramProfile:
        """Bias profile of the (cached) trace."""
        key = (program, input_name, self.trace_length)
        profile = self._profiles.get(key)
        if profile is None:
            profile = ProgramProfile.from_trace(self.trace(program, input_name))
            self._profiles[key] = profile
        return profile

    def accuracy(
        self,
        program: str,
        predictor_name: str,
        size_bytes: int,
        input_name: str = "ref",
        predictor_kwargs: dict | None = None,
    ) -> AccuracyProfile:
        """Per-branch accuracy of a fresh predictor over the cached trace."""
        kwargs = predictor_kwargs or {}
        key = (program, input_name, self.trace_length, predictor_name,
               size_bytes, tuple(sorted(kwargs.items())))
        accuracy = self._accuracies.get(key)
        if accuracy is None:
            predictor = make_predictor(predictor_name, size_bytes, **kwargs)
            accuracy = measure_accuracy(self.trace(program, input_name), predictor)
            self._accuracies[key] = accuracy
        return accuracy

    def collision_profile(
        self,
        program: str,
        predictor_name: str,
        size_bytes: int,
        input_name: str = "ref",
        predictor_kwargs: dict | None = None,
    ) -> CollisionProfile:
        """Per-branch collision involvement of a fresh predictor."""
        kwargs = predictor_kwargs or {}
        key = (program, input_name, self.trace_length, predictor_name,
               size_bytes, tuple(sorted(kwargs.items())))
        profile = self._collision_profiles.get(key)
        if profile is None:
            predictor = make_predictor(predictor_name, size_bytes, **kwargs)
            profile = measure_collision_involvement(
                self.trace(program, input_name), predictor
            )
            self._collision_profiles[key] = profile
        return profile

    # -- hint selection ---------------------------------------------------

    def hints(
        self,
        program: str,
        scheme: str,
        predictor_name: str | None = None,
        size_bytes: int | None = None,
        profile_input: str = "ref",
        cutoff: float = 0.95,
        factor: float = 1.05,
        predictor_kwargs: dict | None = None,
    ) -> HintAssignment:
        """Phase-one selection, memoized.

        ``profile_input`` names the profiling input: ``"ref"`` for the
        paper's self-trained setup, ``"train"`` for cross-training.
        """
        key = (program, scheme, predictor_name, size_bytes, profile_input,
               cutoff, factor, self.trace_length,
               tuple(sorted((predictor_kwargs or {}).items())))
        hints = self._hints.get(key)
        if hints is not None:
            return hints
        profile = self.profile(program, profile_input)
        if scheme == "none":
            hints = HintAssignment(program, "none")
        elif scheme == "static_95":
            hints = select_static_95(profile, cutoff=cutoff)
        elif scheme in ("static_acc", "static_fac"):
            if predictor_name is None or size_bytes is None:
                raise ExperimentError(
                    f"scheme {scheme!r} needs predictor_name and size_bytes"
                )
            accuracy = self.accuracy(
                program, predictor_name, size_bytes,
                input_name=profile_input, predictor_kwargs=predictor_kwargs,
            )
            if scheme == "static_acc":
                hints = select_static_acc(profile, accuracy)
            else:
                hints = select_static_fac(profile, accuracy, factor=factor)
        elif scheme == "static_collision":
            if predictor_name is None or size_bytes is None:
                raise ExperimentError(
                    "scheme 'static_collision' needs predictor_name and "
                    "size_bytes"
                )
            collisions = self.collision_profile(
                program, predictor_name, size_bytes,
                input_name=profile_input, predictor_kwargs=predictor_kwargs,
            )
            hints = select_static_collision(profile, collisions)
        elif scheme == "static_iter":
            if predictor_name is None or size_bytes is None:
                raise ExperimentError(
                    "scheme 'static_iter' needs predictor_name and size_bytes"
                )
            hints = select_static_iterative(
                self.trace(program, profile_input),
                self.predictor_factory(
                    predictor_name, size_bytes, **(predictor_kwargs or {})
                ),
                profile=profile,
            )
        else:
            raise ExperimentError(f"unknown scheme {scheme!r}")
        self._hints[key] = hints
        return hints

    # -- measurement -------------------------------------------------------

    def run(
        self,
        program: str,
        predictor_name: str,
        size_bytes: int,
        scheme: str = "none",
        shift_policy: ShiftPolicy = ShiftPolicy.NO_SHIFT,
        measure_input: str = "ref",
        profile_input: str = "ref",
        track_collisions: bool = False,
        cutoff: float = 0.95,
        factor: float = 1.05,
        predictor_kwargs: dict | None = None,
        hints: HintAssignment | None = None,
    ) -> SimulationResult:
        """One full configuration: (cached) selection + fresh measurement.

        Measurement results are deliberately *not* cached: predictors are
        stateful and cheap to rebuild, and the collision-tracking flag
        changes what a run records.
        """
        kwargs = predictor_kwargs or {}
        predictor = make_predictor(predictor_name, size_bytes, **kwargs)
        measure_trace = self.trace(program, measure_input)
        if scheme == "none" and hints is None:
            return simulate(
                measure_trace, predictor, scheme="none",
                track_collisions=track_collisions, kernel=self.kernel,
            )
        if hints is None:
            hints = self.hints(
                program, scheme,
                predictor_name=predictor_name, size_bytes=size_bytes,
                profile_input=profile_input, cutoff=cutoff, factor=factor,
                predictor_kwargs=predictor_kwargs,
            )
        return run_combined(
            measure_trace, predictor, hints,
            shift_policy=shift_policy, track_collisions=track_collisions,
            kernel=self.kernel,
        )

    def predictor_factory(
        self, predictor_name: str, size_bytes: int, **kwargs
    ) -> Callable[[], BranchPredictor]:
        """A factory closure for APIs that build predictors lazily."""
        return lambda: make_predictor(predictor_name, size_bytes, **kwargs)


_DEFAULT_CONTEXT: ExperimentContext | None = None


def default_context() -> ExperimentContext:
    """A process-wide shared context (used by benchmarks and the CLI)."""
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = ExperimentContext()
    return _DEFAULT_CONTEXT
