"""Table 5: branch behaviour, training versus reference input.

Paper: "The table shows that when input is changed from 'train' to 'ref'
two things can be noted (1) a different number of branches are executed
and (2) even though many branches are common to the executions with the
two inputs, the behavior of those branches changes widely at times."

Columns here mirror the paper's: coverage (branches seen under both
inputs), majority-direction change, and the small (<5%) / large (>50%)
bias-change buckets, each as static and dynamic (execution-weighted)
percentages.
"""

from __future__ import annotations

from repro.experiments.common import PROGRAMS, ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.profiling.drift import analyze_drift
from repro.profiling.profile import ProgramProfile
from repro.utils.tables import format_percent

__all__ = ["run"]


def run(ctx: ExperimentContext) -> ExperimentReport:
    """Regenerate Table 5 from train/ref profiles."""
    report = ExperimentReport(
        experiment_id="table5",
        title="Branch behaviour: training vs reference input (paper Table 5)",
    )
    table = report.add_table(
        "Train-to-ref drift (static% / dynamic%)",
        ["program", "coverage", "majority change", "bias change <5%",
         "bias change >50%"],
    )
    # Profiling needs no predictor simulation, so Table 5 can afford
    # longer runs; short traces would understate coverage purely through
    # sampling (the paper's profiling runs cover billions of branches).
    profile_length = ctx.trace_length * 3
    for program in PROGRAMS:
        drift = analyze_drift(
            ProgramProfile.from_trace(ctx.trace(program, "train", profile_length)),
            ProgramProfile.from_trace(ctx.trace(program, "ref", profile_length)),
            min_ref_executions=8,
        )
        table.rows.append(
            [
                program,
                f"{format_percent(drift.coverage_static)} / "
                f"{format_percent(drift.coverage_dynamic)}",
                f"{format_percent(drift.majority_change_static)} / "
                f"{format_percent(drift.majority_change_dynamic)}",
                f"{format_percent(drift.small_change_static)} / "
                f"{format_percent(drift.small_change_dynamic)}",
                f"{format_percent(drift.large_change_static)} / "
                f"{format_percent(drift.large_change_dynamic)}",
            ]
        )
        report.data[program] = drift
    report.notes.append(
        "Shape checks: coverage is high for every program except perl "
        "(its train input reaches much less of the interpreter); every "
        "program has a non-trivial tail of majority-direction reversals; "
        "most branches change bias by <5% (what makes the Section 5.1 "
        "merge-and-filter strategy viable)."
    )
    return report
