"""Figures 1-6: gshare size sweep with and without static prediction.

Paper: "Figures 1-6 show the effect of increasing branch predictor size
on MISP/KI with and without static prediction.  The base branch predictor
is a gshare.  The static prediction scheme chosen (static_ACC) selects
branches each of which has a bias greater than the prediction accuracy of
gshare for that branch.  Also plotted in the figures are the total
numbers of collisions observed."

One figure per program; this module runs the sweep for one program or
all six.  The paper's sizes are 1-64 Kbytes; because our workloads scale
static branch counts down 8x, the sweep covers 512 bytes - 32 Kbytes,
preserving the table-entries-per-static-branch ratio at each point.
"""

from __future__ import annotations

from repro.core.metrics import SimulationResult, improvement
from repro.experiments.common import KIB, PROGRAMS, ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.runner import Cell, execute_cells
from repro.utils.charts import render_line_chart
from repro.utils.tables import format_improvement

__all__ = ["run", "run_program", "cells", "cells_program",
           "synthesize", "synthesize_program", "SIZES"]

SIZES = (512, 1 * KIB, 2 * KIB, 4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB)
SCHEMES = ("none", "static_acc")
FIGURE_NUMBER = {program: i + 1 for i, program in enumerate(PROGRAMS)}


def _cell(program: str, size: int, scheme: str) -> Cell:
    return Cell.make(program, "gshare", size, scheme=scheme,
                     track_collisions=True)


def cells_program(ctx: ExperimentContext, program: str) -> list[Cell]:
    """Declared cell list for one program's figure."""
    return [_cell(program, size, scheme)
            for size in SIZES for scheme in SCHEMES]


def cells(ctx: ExperimentContext) -> list[Cell]:
    """Declared cell list for all six figures."""
    return [cell for program in PROGRAMS
            for cell in cells_program(ctx, program)]


def run_program(ctx: ExperimentContext, program: str) -> ExperimentReport:
    """Regenerate one program's figure (gshare sweep + collisions)."""
    results = execute_cells(ctx, cells_program(ctx, program))
    return synthesize_program(ctx, program, results)


def synthesize_program(
    ctx: ExperimentContext,
    program: str,
    results: dict[Cell, SimulationResult],
) -> ExperimentReport:
    """Build one program's report from already-executed cell results."""
    figure = FIGURE_NUMBER.get(program, 0)
    report = ExperimentReport(
        experiment_id=f"figure{figure}",
        title=f"gshare size sweep for {program} (paper Figure {figure})",
    )
    table = report.add_table(
        f"{program}: MISP/KI and collisions vs gshare size",
        [
            "size (bytes)",
            "MISP/KI none",
            "MISP/KI static_acc",
            "improvement",
            "collisions none",
            "collisions static_acc",
            "destructive none",
            "destructive static_acc",
        ],
    )
    misp_none: list[float] = []
    misp_static: list[float] = []
    collisions_none: list[float] = []
    collisions_static: list[float] = []
    for size in SIZES:
        base = results[_cell(program, size, "none")]
        static = results[_cell(program, size, "static_acc")]
        assert base.collisions is not None and static.collisions is not None
        table.rows.append(
            [
                size,
                round(base.misp_per_ki, 2),
                round(static.misp_per_ki, 2),
                format_improvement(improvement(base, static)),
                base.collisions.collisions,
                static.collisions.collisions,
                base.collisions.destructive,
                static.collisions.destructive,
            ]
        )
        misp_none.append(base.misp_per_ki)
        misp_static.append(static.misp_per_ki)
        collisions_none.append(float(base.collisions.collisions))
        collisions_static.append(float(static.collisions.collisions))

    labels = [f"{s // KIB}K" if s >= KIB else f"{s}B" for s in SIZES]
    report.charts.append(
        render_line_chart(
            labels,
            {"none": misp_none, "static_acc": misp_static},
            title=f"{program}: MISP/KI vs gshare size",
            y_label="MISP/KI",
        )
    )
    report.charts.append(
        render_line_chart(
            labels,
            {"none": collisions_none, "static_acc": collisions_static},
            title=f"{program}: collisions vs gshare size",
            y_label="collisions",
        )
    )
    report.data["misp_none"] = misp_none
    report.data["misp_static"] = misp_static
    report.data["collisions_none"] = collisions_none
    report.data["collisions_static"] = collisions_static
    report.notes.append(
        "Shape checks: static prediction reduces MISP/KI at every size; "
        "the improvement shrinks as the predictor grows; collisions "
        "generally drop with static prediction (ijpeg's constructive-"
        "collision anomaly excepted)."
    )
    return report


def run(ctx: ExperimentContext) -> ExperimentReport:
    """Regenerate all six figures (1-6) into one combined report."""
    results = execute_cells(ctx, cells(ctx))
    return synthesize(ctx, results)


def synthesize(
    ctx: ExperimentContext, results: dict[Cell, SimulationResult]
) -> ExperimentReport:
    """Build the combined Figures 1-6 report from cell results."""
    combined = ExperimentReport(
        experiment_id="figures1-6",
        title="gshare size sweeps, all programs (paper Figures 1-6)",
    )
    for program in PROGRAMS:
        report = synthesize_program(ctx, program, results)
        combined.tables.extend(report.tables)
        combined.charts.extend(report.charts)
        combined.data[program] = report.data
    combined.notes.append(
        "See per-program notes; Figures 1-6 correspond to "
        + ", ".join(f"{p} (Fig {FIGURE_NUMBER[p]})" for p in PROGRAMS)
        + "."
    )
    return combined
