"""Figures 1-6: gshare size sweep with and without static prediction.

Paper: "Figures 1-6 show the effect of increasing branch predictor size
on MISP/KI with and without static prediction.  The base branch predictor
is a gshare.  The static prediction scheme chosen (static_ACC) selects
branches each of which has a bias greater than the prediction accuracy of
gshare for that branch.  Also plotted in the figures are the total
numbers of collisions observed."

One figure per program; this module runs the sweep for one program or
all six.  The paper's sizes are 1-64 Kbytes; because our workloads scale
static branch counts down 8x, the sweep covers 512 bytes - 32 Kbytes,
preserving the table-entries-per-static-branch ratio at each point.
"""

from __future__ import annotations

from repro.experiments.common import KIB, PROGRAMS, ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.utils.charts import render_line_chart

__all__ = ["run", "run_program", "SIZES"]

SIZES = (512, 1 * KIB, 2 * KIB, 4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB)
FIGURE_NUMBER = {program: i + 1 for i, program in enumerate(PROGRAMS)}


def run_program(ctx: ExperimentContext, program: str) -> ExperimentReport:
    """Regenerate one program's figure (gshare sweep + collisions)."""
    figure = FIGURE_NUMBER.get(program, 0)
    report = ExperimentReport(
        experiment_id=f"figure{figure}",
        title=f"gshare size sweep for {program} (paper Figure {figure})",
    )
    table = report.add_table(
        f"{program}: MISP/KI and collisions vs gshare size",
        [
            "size (bytes)",
            "MISP/KI none",
            "MISP/KI static_acc",
            "improvement",
            "collisions none",
            "collisions static_acc",
            "destructive none",
            "destructive static_acc",
        ],
    )
    misp_none: list[float] = []
    misp_static: list[float] = []
    collisions_none: list[float] = []
    collisions_static: list[float] = []
    for size in SIZES:
        base = ctx.run(program, "gshare", size, scheme="none",
                       track_collisions=True)
        static = ctx.run(program, "gshare", size, scheme="static_acc",
                         track_collisions=True)
        assert base.collisions is not None and static.collisions is not None
        improvement = 0.0
        if base.misp_per_ki:
            improvement = (base.misp_per_ki - static.misp_per_ki) / base.misp_per_ki
        table.rows.append(
            [
                size,
                round(base.misp_per_ki, 2),
                round(static.misp_per_ki, 2),
                f"{improvement * 100:+.1f}%",
                base.collisions.collisions,
                static.collisions.collisions,
                base.collisions.destructive,
                static.collisions.destructive,
            ]
        )
        misp_none.append(base.misp_per_ki)
        misp_static.append(static.misp_per_ki)
        collisions_none.append(float(base.collisions.collisions))
        collisions_static.append(float(static.collisions.collisions))

    labels = [f"{s // KIB}K" if s >= KIB else f"{s}B" for s in SIZES]
    report.charts.append(
        render_line_chart(
            labels,
            {"none": misp_none, "static_acc": misp_static},
            title=f"{program}: MISP/KI vs gshare size",
            y_label="MISP/KI",
        )
    )
    report.charts.append(
        render_line_chart(
            labels,
            {"none": collisions_none, "static_acc": collisions_static},
            title=f"{program}: collisions vs gshare size",
            y_label="collisions",
        )
    )
    report.data["misp_none"] = misp_none
    report.data["misp_static"] = misp_static
    report.data["collisions_none"] = collisions_none
    report.data["collisions_static"] = collisions_static
    report.notes.append(
        "Shape checks: static prediction reduces MISP/KI at every size; "
        "the improvement shrinks as the predictor grows; collisions "
        "generally drop with static prediction (ijpeg's constructive-"
        "collision anomaly excepted)."
    )
    return report


def run(ctx: ExperimentContext) -> ExperimentReport:
    """Regenerate all six figures (1-6) into one combined report."""
    combined = ExperimentReport(
        experiment_id="figures1-6",
        title="gshare size sweeps, all programs (paper Figures 1-6)",
    )
    for program in PROGRAMS:
        report = run_program(ctx, program)
        combined.tables.extend(report.tables)
        combined.charts.extend(report.charts)
        combined.data[program] = report.data
    combined.notes.append(
        "See per-program notes; Figures 1-6 correspond to "
        + ", ".join(f"{p} (Fig {FIGURE_NUMBER[p]})" for p in PROGRAMS)
        + "."
    )
    return combined
