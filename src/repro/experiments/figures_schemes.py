"""Figures 7-12: every predictor under each static scheme, per program.

Paper: "Figures 7-12 summarize the effect of two different static
prediction schemes on MISP/KI for our test programs.  There are 5 sets of
bars for 5 different dynamic prediction schemes.  Each set of bars
depicts MISP/KI for three different static prediction schemes: 1) No
static prediction, 2) Static_95 ... and 3) Static_Acc."

Key shapes: bimodal gains nothing from Static_95 (both target biased
branches); ghist gains the most (static prediction of biased branches
complements correlation -- "combining ghist with static_95 is effectively
like a gshare"); go/gcc prefer Static_Acc; ijpeg barely moves for any
scheme.  The paper does not state the figures' predictor size; this
reproduction uses 4 Kbytes, where aliasing pressure at our trace scale
best matches the regime the figures discuss.
"""

from __future__ import annotations

from repro.core.metrics import SimulationResult
from repro.experiments.common import KIB, PROGRAMS, ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.runner import Cell, execute_cells
from repro.utils.charts import render_bar_chart

__all__ = ["run", "run_program", "cells", "cells_program",
           "synthesize", "synthesize_program",
           "PREDICTORS", "SCHEMES", "PREDICTOR_SIZE"]

PREDICTORS = ("bimodal", "ghist", "gshare", "bimode", "2bcgskew")
SCHEMES = ("none", "static_95", "static_acc")
PREDICTOR_SIZE = 4 * KIB
FIGURE_NUMBER = {program: i + 7 for i, program in enumerate(PROGRAMS)}


def cells_program(
    ctx: ExperimentContext,
    program: str,
    size_bytes: int = PREDICTOR_SIZE,
) -> list[Cell]:
    """Declared cell list for one program's figure."""
    return [Cell.make(program, predictor, size_bytes, scheme=scheme)
            for predictor in PREDICTORS for scheme in SCHEMES]


def cells(ctx: ExperimentContext) -> list[Cell]:
    """Declared cell list for all six figures."""
    return [cell for program in PROGRAMS
            for cell in cells_program(ctx, program)]


def run_program(
    ctx: ExperimentContext,
    program: str,
    size_bytes: int = PREDICTOR_SIZE,
) -> ExperimentReport:
    """Regenerate one program's grouped-bar figure."""
    results = execute_cells(ctx, cells_program(ctx, program, size_bytes))
    return synthesize_program(ctx, program, results, size_bytes)


def synthesize_program(
    ctx: ExperimentContext,
    program: str,
    results: dict[Cell, SimulationResult],
    size_bytes: int = PREDICTOR_SIZE,
) -> ExperimentReport:
    """Build one program's report from already-executed cell results."""
    figure = FIGURE_NUMBER.get(program, 0)
    report = ExperimentReport(
        experiment_id=f"figure{figure}",
        title=f"Static schemes x dynamic predictors for {program} "
              f"(paper Figure {figure})",
    )
    table = report.add_table(
        f"{program}: MISP/KI by predictor and scheme ({size_bytes} bytes)",
        ["predictor"] + [f"MISP/KI {s}" for s in SCHEMES]
        + ["improve static_95", "improve static_acc"],
    )
    labels: list[str] = []
    values: list[float] = []
    misp: dict[str, dict[str, float]] = {}
    for predictor in PREDICTORS:
        row: list[object] = [predictor]
        misp[predictor] = {}
        for scheme in SCHEMES:
            result = results[Cell.make(program, predictor, size_bytes,
                                       scheme=scheme)]
            misp[predictor][scheme] = result.misp_per_ki
            row.append(round(result.misp_per_ki, 2))
            labels.append(f"{predictor}/{scheme}")
            values.append(result.misp_per_ki)
        base = misp[predictor]["none"]
        for scheme in ("static_95", "static_acc"):
            gain = 0.0 if not base else (base - misp[predictor][scheme]) / base
            row.append(f"{gain * 100:+.1f}%")
        table.rows.append(row)

    report.charts.append(
        render_bar_chart(
            labels, values,
            title=f"{program}: MISP/KI (lower is better), {size_bytes} bytes",
        )
    )
    report.data["misp"] = misp
    report.notes.append(
        "Shape checks: bimodal+static_95 is ~flat; ghist+static_95 "
        "improves substantially; predictors ordered 2bcgskew best."
    )
    return report


def run(ctx: ExperimentContext) -> ExperimentReport:
    """Regenerate all six figures (7-12) into one combined report."""
    results = execute_cells(ctx, cells(ctx))
    return synthesize(ctx, results)


def synthesize(
    ctx: ExperimentContext, results: dict[Cell, SimulationResult]
) -> ExperimentReport:
    """Build the combined Figures 7-12 report from cell results."""
    combined = ExperimentReport(
        experiment_id="figures7-12",
        title="Static schemes x dynamic predictors, all programs "
              "(paper Figures 7-12)",
    )
    for program in PROGRAMS:
        report = synthesize_program(ctx, program, results)
        combined.tables.extend(report.tables)
        combined.charts.extend(report.charts)
        combined.data[program] = report.data["misp"]
    combined.notes.append(
        "Figures 7-12 correspond to "
        + ", ".join(f"{p} (Fig {FIGURE_NUMBER[p]})" for p in PROGRAMS)
        + "; note the paper uses a different Y scale per figure."
    )
    return combined
