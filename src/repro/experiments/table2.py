"""Table 2: highly biased branches versus prediction accuracy.

Paper: "Table 2 shows the prediction accuracies of various branch
prediction schemes for our test programs.  Also shown is the dynamic
percentage of highly biased branches (taken/not taken bias > 95%)."

The shape claim is the correlation: "the more the percentage of highly
biased branches in a program, the higher the prediction accuracy of any
dynamic predictor for that program" -- for *every* scheme, despite their
different principles.
"""

from __future__ import annotations

from repro.core.metrics import SimulationResult
from repro.experiments.common import KIB, PROGRAMS, ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.runner import Cell, execute_cells
from repro.utils.tables import format_percent
from repro.workloads.spec95 import get_spec
from repro.workloads.stats import dynamic_highly_biased_fraction

__all__ = ["run", "cells", "synthesize", "PREDICTORS", "PREDICTOR_SIZE"]

PREDICTORS = ("bimodal", "ghist", "gshare", "bimode", "2bcgskew")
PREDICTOR_SIZE = 8 * KIB


def cells(ctx: ExperimentContext) -> list[Cell]:
    """Declared cell list: every (program, predictor) at 8 Kbytes."""
    return [Cell.make(program, predictor, PREDICTOR_SIZE)
            for program in PROGRAMS for predictor in PREDICTORS]


def run(ctx: ExperimentContext) -> ExperimentReport:
    """Regenerate Table 2 (ref input, 8 Kbyte predictors)."""
    results = execute_cells(ctx, cells(ctx))
    return synthesize(ctx, results)


def synthesize(
    ctx: ExperimentContext, results: dict[Cell, SimulationResult]
) -> ExperimentReport:
    """Build Table 2 from cell results (bias fractions come from the
    context's cached traces -- profiling, not simulation)."""
    report = ExperimentReport(
        experiment_id="table2",
        title="Highly biased branches and prediction accuracy (paper Table 2)",
    )
    table = report.add_table(
        "Bias vs accuracy (ref input, 8KB predictors)",
        ["program", "biased>95%", "paper biased>95%"] + list(PREDICTORS),
    )
    accuracies: dict[str, dict[str, float]] = {}
    biased: dict[str, float] = {}
    for program in PROGRAMS:
        spec = get_spec(program)
        trace = ctx.trace(program, "ref")
        fraction = dynamic_highly_biased_fraction(trace)
        biased[program] = fraction
        row: list[object] = [
            program,
            format_percent(fraction),
            format_percent(spec.paper_highly_biased or 0.0),
        ]
        accuracies[program] = {}
        for predictor in PREDICTORS:
            result = results[Cell.make(program, predictor, PREDICTOR_SIZE)]
            accuracies[program][predictor] = result.accuracy
            row.append(format_percent(result.accuracy))
        table.rows.append(row)

    report.data["accuracy"] = accuracies
    report.data["biased_fraction"] = biased

    # The paper's claim as a measurable: rank programs by biased fraction
    # and report how monotone each predictor's accuracy is in that order.
    order = sorted(PROGRAMS, key=lambda p: biased[p])
    inversions_table = report.add_table(
        "Monotonicity of accuracy in biased-fraction order",
        ["predictor", "rank inversions (0 = perfectly monotone)"],
    )
    for predictor in PREDICTORS:
        values = [accuracies[p][predictor] for p in order]
        inversions = sum(
            1
            for i in range(len(values))
            for j in range(i + 1, len(values))
            if values[i] > values[j]
        )
        inversions_table.rows.append([predictor, inversions])
    report.notes.append(
        "Shape check: accuracy rises with the highly-biased fraction for "
        "every predictor (few rank inversions); the paper notes compress "
        "as the one exception."
    )
    return report
