"""Extra reportable experiments beyond the paper's tables and figures.

* :func:`run_pipeline_impact` -- the paper's introduction in numbers:
  convert each program's MISP/KI improvement under static hints into an
  IPC delta with the trace-driven front-end model, at a shallow and a
  deep pipeline ("as processor pipelines get increasingly deeper this
  performance degradation is becoming increasingly significant").
* :func:`run_classification` -- the Chang-style class breakdown per
  program with per-class bimodal and gshare accuracy, the view that
  explains *why* Static_95 complements some predictors and duplicates
  others.
"""

from __future__ import annotations

from repro.analysis.classification import BiasClass, classify_branches
from repro.core.combined import CombinedPredictor
from repro.experiments.common import KIB, PROGRAMS, ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.pipeline.frontend import FrontEndSimulator
from repro.predictors.sizing import make_predictor

__all__ = ["run_pipeline_impact", "run_classification"]

PIPELINE_PREDICTOR = "gshare"
PIPELINE_SIZE = 4 * KIB
PIPELINE_DEPTHS = (7, 20)
"""Redirect penalties: Alpha-21264-class and deep-modern-class."""


def run_pipeline_impact(ctx: ExperimentContext) -> ExperimentReport:
    """IPC effect of static hints at two pipeline depths."""
    report = ExperimentReport(
        experiment_id="pipeline-impact",
        title="Front-end IPC impact of static hints "
              f"({PIPELINE_PREDICTOR} {PIPELINE_SIZE // KIB}KB + static_acc)",
    )
    table = report.add_table(
        "IPC: dynamic alone vs with static_acc hints",
        ["program", "penalty (cycles)", "IPC dynamic", "IPC +static",
         "speedup", "redirect overhead dyn -> static"],
    )
    for program in PROGRAMS:
        trace = ctx.trace(program, "ref")
        hints = ctx.hints(program, "static_acc",
                          predictor_name=PIPELINE_PREDICTOR,
                          size_bytes=PIPELINE_SIZE)
        report.data[program] = {}
        for penalty in PIPELINE_DEPTHS:
            frontend = FrontEndSimulator(fetch_width=4,
                                         redirect_penalty=penalty,
                                         taken_bubble=1)
            base = frontend.run(
                trace, make_predictor(PIPELINE_PREDICTOR, PIPELINE_SIZE)
            )
            combined = frontend.run(
                trace,
                CombinedPredictor(
                    make_predictor(PIPELINE_PREDICTOR, PIPELINE_SIZE), hints
                ),
            )
            speedup = base.cycles / combined.cycles if combined.cycles else 1.0
            table.rows.append(
                [
                    program,
                    penalty,
                    round(base.ipc, 3),
                    round(combined.ipc, 3),
                    f"{speedup:.3f}x",
                    f"{base.redirect_overhead:.1%} -> "
                    f"{combined.redirect_overhead:.1%}",
                ]
            )
            report.data[program][penalty] = speedup
    report.notes.append(
        "Shape check: the same hint set buys a larger speedup at the "
        "deeper pipeline for every program -- the paper's motivating "
        "trend."
    )
    return report


def run_classification(ctx: ExperimentContext) -> ExperimentReport:
    """Chang-style class breakdown with per-class predictor accuracy."""
    report = ExperimentReport(
        experiment_id="classification",
        title="Branch classification by bias, with per-class accuracy "
              "(Chang et al., basis of Static_95)",
    )
    size = 8 * KIB
    for program in PROGRAMS:
        profile = ctx.profile(program, "ref")
        bimodal = ctx.accuracy(program, "bimodal", size)
        gshare = ctx.accuracy(program, "gshare", size)
        by_bimodal = classify_branches(profile, bimodal)
        by_gshare = classify_branches(profile, gshare)
        table = report.add_table(
            f"{program}: class breakdown (accuracy at {size // KIB}KB)",
            ["class", "static branches", "dynamic share",
             "bimodal accuracy", "gshare accuracy"],
        )
        for bias_class in BiasClass:
            bimodal_stats = by_bimodal.stats(bias_class)
            gshare_stats = by_gshare.stats(bias_class)
            table.rows.append(
                [
                    bias_class.value,
                    bimodal_stats.static_branches,
                    f"{by_bimodal.dynamic_fraction(bias_class):.1%}",
                    f"{bimodal_stats.predictor_accuracy:.1%}"
                    if bimodal_stats.predictor_measured else "-",
                    f"{gshare_stats.predictor_accuracy:.1%}"
                    if gshare_stats.predictor_measured else "-",
                ]
            )
        report.data[program] = {
            "breakdown": by_bimodal,
            "highly_biased": by_bimodal.highly_biased_dynamic_fraction(),
        }
    report.notes.append(
        "Reading: bimodal is already near-perfect on the highly biased "
        "tails (so Static_95 duplicates it) while the middle classes are "
        "where history predictors earn their keep -- the class-level "
        "version of the paper's complementary-principles argument."
    )
    return report
