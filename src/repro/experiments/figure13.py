"""Figure 13: the effect of cross-training on profile-based static
prediction.

Paper: gshare 16 Kbytes + static prediction (bias > 95), four bars per
program:

1. no static prediction;
2. self-trained (profile and measure on the same ``ref`` input -- the
   upper bound used throughout Section 5);
3. naive cross-training (profile on ``train``, measure on ``ref``);
4. cross-training with a merged profile from which branches whose bias
   changes by more than 5% between inputs are removed (the Spike
   database flow of Section 5.1).

Shape: naive cross-training severely degrades perl and m88ksim (their
hot branches reverse behaviour between inputs) and the filtered merge
rescues them.

Note on bar 4: the paper merges profiles across inputs and filters
unstable branches -- deployment would only have per-input profiles, so
this models "collect profiles from several runs, keep the stable part".
The runner models it as the ``static_95_stable`` cell scheme.
"""

from __future__ import annotations

from repro.core.metrics import SimulationResult
from repro.experiments.common import KIB, PROGRAMS, ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.runner import STABLE_SCHEME, Cell, execute_cells
from repro.utils.charts import render_bar_chart

__all__ = ["run", "cells", "synthesize", "GSHARE_SIZE"]

GSHARE_SIZE = 16 * KIB
BARS = ("none", "self", "cross-naive", "cross-filtered")


def _bar_cell(program: str, bar: str) -> Cell:
    """The cell behind one of the figure's four bars."""
    if bar == "none":
        return Cell.make(program, "gshare", GSHARE_SIZE)
    if bar == "self":
        return Cell.make(program, "gshare", GSHARE_SIZE, scheme="static_95")
    if bar == "cross-naive":
        return Cell.make(program, "gshare", GSHARE_SIZE, scheme="static_95",
                         profile_input="train")
    if bar == "cross-filtered":
        return Cell.make(program, "gshare", GSHARE_SIZE, scheme=STABLE_SCHEME)
    raise ValueError(f"unknown bar {bar!r}")


def cells(ctx: ExperimentContext) -> list[Cell]:
    """Declared cell list: four training modes per program."""
    return [_bar_cell(program, bar) for program in PROGRAMS for bar in BARS]


def run(ctx: ExperimentContext) -> ExperimentReport:
    """Regenerate Figure 13."""
    results = execute_cells(ctx, cells(ctx))
    return synthesize(ctx, results)


def synthesize(
    ctx: ExperimentContext, results: dict[Cell, SimulationResult]
) -> ExperimentReport:
    """Build Figure 13 from cell results."""
    report = ExperimentReport(
        experiment_id="figure13",
        title="Cross-training and profile-based static prediction "
              "(paper Figure 13)",
    )
    table = report.add_table(
        f"gshare {GSHARE_SIZE // KIB}KB + static_95: MISP/KI per training mode",
        ["program"] + list(BARS),
    )
    chart_labels: list[str] = []
    chart_values: list[float] = []
    data: dict[str, dict[str, float]] = {}
    for program in PROGRAMS:
        bar_misp = {
            bar: results[_bar_cell(program, bar)].misp_per_ki for bar in BARS
        }
        table.rows.append(
            [program] + [round(bar_misp[bar], 2) for bar in BARS]
        )
        data[program] = bar_misp
        for bar in BARS:
            chart_labels.append(f"{program}/{bar}")
            chart_values.append(bar_misp[bar])

    report.charts.append(
        render_bar_chart(
            chart_labels, chart_values,
            title=f"Figure 13: MISP/KI, gshare {GSHARE_SIZE // KIB}KB + "
                  "static_95 (lower is better)",
        )
    )
    report.data["misp"] = data
    report.notes.append(
        "Shape checks: naive cross-training degrades perl and m88ksim "
        "sharply relative to self-training; the filtered merge pulls them "
        "back near (or below) the no-static baseline."
    )
    return report
