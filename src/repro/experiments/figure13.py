"""Figure 13: the effect of cross-training on profile-based static
prediction.

Paper: gshare 16 Kbytes + static prediction (bias > 95), four bars per
program:

1. no static prediction;
2. self-trained (profile and measure on the same ``ref`` input -- the
   upper bound used throughout Section 5);
3. naive cross-training (profile on ``train``, measure on ``ref``);
4. cross-training with a merged profile from which branches whose bias
   changes by more than 5% between inputs are removed (the Spike
   database flow of Section 5.1).

Shape: naive cross-training severely degrades perl and m88ksim (their
hot branches reverse behaviour between inputs) and the filtered merge
rescues them.

Note on bar 4: the paper merges profiles across inputs and filters
unstable branches -- deployment would only have per-input profiles, so
this models "collect profiles from several runs, keep the stable part".
"""

from __future__ import annotations

from repro.core.simulator import run_combined, simulate
from repro.experiments.common import KIB, PROGRAMS, ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.predictors.sizing import make_predictor
from repro.profiling.database import ProfileDatabase
from repro.staticpred.selection import select_static_95
from repro.utils.charts import render_bar_chart

__all__ = ["run", "GSHARE_SIZE"]

GSHARE_SIZE = 16 * KIB
BARS = ("none", "self", "cross-naive", "cross-filtered")


def run(ctx: ExperimentContext) -> ExperimentReport:
    """Regenerate Figure 13."""
    report = ExperimentReport(
        experiment_id="figure13",
        title="Cross-training and profile-based static prediction "
              "(paper Figure 13)",
    )
    table = report.add_table(
        f"gshare {GSHARE_SIZE // KIB}KB + static_95: MISP/KI per training mode",
        ["program"] + list(BARS),
    )
    chart_labels: list[str] = []
    chart_values: list[float] = []
    data: dict[str, dict[str, float]] = {}
    for program in PROGRAMS:
        ref_trace = ctx.trace(program, "ref")

        results: dict[str, float] = {}
        base = simulate(ref_trace, make_predictor("gshare", GSHARE_SIZE),
                        scheme="none")
        results["none"] = base.misp_per_ki

        # Bar 2: self-trained -- profile the measurement input itself.
        self_hints = select_static_95(ctx.profile(program, "ref"))
        results["self"] = run_combined(
            ref_trace, make_predictor("gshare", GSHARE_SIZE), self_hints
        ).misp_per_ki

        # Bar 3: naive cross-training -- profile train, measure ref.
        naive_hints = select_static_95(ctx.profile(program, "train"))
        results["cross-naive"] = run_combined(
            ref_trace, make_predictor("gshare", GSHARE_SIZE), naive_hints
        ).misp_per_ki

        # Bar 4: merged profile with the >5% bias-change filter.
        database = ProfileDatabase()
        database.record(ctx.profile(program, "train"))
        database.record(ctx.profile(program, "ref"))
        stable_profile = database.stable_filtered(program)
        filtered_hints = select_static_95(stable_profile)
        results["cross-filtered"] = run_combined(
            ref_trace, make_predictor("gshare", GSHARE_SIZE), filtered_hints
        ).misp_per_ki

        table.rows.append(
            [program] + [round(results[bar], 2) for bar in BARS]
        )
        data[program] = results
        for bar in BARS:
            chart_labels.append(f"{program}/{bar}")
            chart_values.append(results[bar])

    report.charts.append(
        render_bar_chart(
            chart_labels, chart_values,
            title=f"Figure 13: MISP/KI, gshare {GSHARE_SIZE // KIB}KB + "
                  "static_95 (lower is better)",
        )
    )
    report.data["misp"] = data
    report.notes.append(
        "Shape checks: naive cross-training degrades perl and m88ksim "
        "sharply relative to self-training; the filtered merge pulls them "
        "back near (or below) the no-static baseline."
    )
    return report
