"""Structured experiment results with text rendering.

Experiments return an :class:`ExperimentReport` holding named tables
(rows of plain values) and pre-rendered charts, plus free-form notes
recording the paper's expected shape for the experiment.  ``render()``
produces the text the benchmark harness prints and EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.utils.tables import render_table

__all__ = ["ReportTable", "ExperimentReport"]


@dataclass(slots=True)
class ReportTable:
    """One table of an experiment report."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def render(self) -> str:
        return render_table(self.headers, self.rows, title=self.title)

    def column(self, name: str) -> list[object]:
        """All values of a named column (for tests over report shapes)."""
        index = list(self.headers).index(name)
        return [row[index] for row in self.rows]


@dataclass(slots=True)
class ExperimentReport:
    """Full result of one experiment run."""

    experiment_id: str
    title: str
    tables: list[ReportTable] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)
    """Structured results for programmatic consumers (tests, examples)."""

    def add_table(self, title: str, headers: Sequence[str]) -> ReportTable:
        """Create, register, and return a new table."""
        table = ReportTable(title=title, headers=headers)
        self.tables.append(table)
        return table

    def table(self, title: str) -> ReportTable:
        """Look up a registered table by title."""
        for table in self.tables:
            if table.title == title:
                return table
        known = ", ".join(t.title for t in self.tables)
        raise KeyError(f"no table {title!r} in report; have: {known}")

    def render(self) -> str:
        """Render the whole report as text."""
        lines = [f"== {self.experiment_id}: {self.title} ==", ""]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        for chart in self.charts:
            lines.append(chart)
            lines.append("")
        if self.notes:
            lines.append("Notes:")
            lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines).rstrip() + "\n"
