"""Registry mapping experiment ids to runners.

Ids follow the paper: ``table1`` .. ``table5``, ``figure1`` ..
``figure13`` (figures 1-6 are the per-program gshare sweeps, 7-12 the
per-program scheme comparisons), plus the grouped ids ``figures1-6`` and
``figures7-12`` and the ``ablations`` extras.

Simulation-shaped experiments additionally register a *cell provider*
(their declared :class:`~repro.runner.cells.Cell` list) and a
*synthesizer* (report construction from executed results); the parallel
runner (``repro run``) uses those to merge, deduplicate, and schedule
cells across every requested experiment at once.  Profiling-only
experiments (``table1``, ``table5``) and aggregates over other runners
(``summary``) have no cells and fall back to their serial runner.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.experiments import (
    ablations,
    extras,
    figure13,
    figures_gshare,
    figures_schemes,
    summary,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.common import PROGRAMS, ExperimentContext, default_context
from repro.experiments.report import ExperimentReport

__all__ = [
    "EXPERIMENT_IDS",
    "GROUPED_EXPERIMENT_IDS",
    "get_cells",
    "get_experiment",
    "run_experiment",
    "synthesize",
]

Runner = Callable[[ExperimentContext], ExperimentReport]
CellProvider = Callable[[ExperimentContext], list]
Synthesizer = Callable[[ExperimentContext, dict], ExperimentReport]


def _program_figure(module, program: str) -> Runner:
    return lambda ctx: module.run_program(ctx, program)


def _program_cells(module, program: str) -> CellProvider:
    return lambda ctx: module.cells_program(ctx, program)


def _program_synthesize(module, program: str) -> Synthesizer:
    return lambda ctx, results: module.synthesize_program(ctx, program, results)


_RUNNERS: dict[str, Runner] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "figures1-6": figures_gshare.run,
    "figures7-12": figures_schemes.run,
    "figure13": figure13.run,
    "ablations": ablations.run,
    "ablation-agree": ablations.run_agree,
    "ablation-cutoff": ablations.run_cutoff_sweep,
    "ablation-history": ablations.run_history_sweep,
    "ablation-selection": ablations.run_selection_shootout,
    "pipeline-impact": extras.run_pipeline_impact,
    "classification": extras.run_classification,
    "summary": summary.run_all,
}

#: Cell provider + synthesizer per simulation-shaped experiment id.
#: Ids absent here run through their serial runner only.
_CELL_RUNNERS: dict[str, tuple[CellProvider, Synthesizer]] = {
    "table2": (table2.cells, table2.synthesize),
    "table3": (table3.cells, table3.synthesize),
    "table4": (table4.cells, table4.synthesize),
    "figures1-6": (figures_gshare.cells, figures_gshare.synthesize),
    "figures7-12": (figures_schemes.cells, figures_schemes.synthesize),
    "figure13": (figure13.cells, figure13.synthesize),
    "ablations": (ablations.cells, ablations.synthesize),
    "ablation-agree": (ablations.cells_agree, ablations.synthesize_agree),
    "ablation-cutoff": (ablations.cells_cutoff, ablations.synthesize_cutoff),
    "ablation-history": (ablations.cells_history, ablations.synthesize_history),
    "ablation-selection": (ablations.cells_shootout, ablations.synthesize_shootout),
}

for _i, _program in enumerate(PROGRAMS):
    _RUNNERS[f"figure{_i + 1}"] = _program_figure(figures_gshare, _program)
    _RUNNERS[f"figure{_i + 7}"] = _program_figure(figures_schemes, _program)
    _CELL_RUNNERS[f"figure{_i + 1}"] = (
        _program_cells(figures_gshare, _program),
        _program_synthesize(figures_gshare, _program),
    )
    _CELL_RUNNERS[f"figure{_i + 7}"] = (
        _program_cells(figures_schemes, _program),
        _program_synthesize(figures_schemes, _program),
    )

EXPERIMENT_IDS = tuple(sorted(_RUNNERS))

GROUPED_EXPERIMENT_IDS = frozenset({
    "figures1-6", "figures7-12", "ablations", "summary",
})
"""Ids that aggregate other experiments and persist no golden of their
own: the per-program/per-ablation members under them each have a
``benchmarks/results/<id>.txt`` golden, so a grouped golden would only
duplicate bytes already regression-checked.  The ``repro lint`` REG001
rule reads this set; adding a grouped id here is a declared contract,
not a silent exemption."""


def get_experiment(experiment_id: str) -> Runner:
    """The runner for an experiment id; raises on unknown ids."""
    try:
        return _RUNNERS[experiment_id]
    except KeyError:
        known = ", ".join(EXPERIMENT_IDS)
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        ) from None


def get_cells(experiment_id: str) -> CellProvider | None:
    """The cell provider for an id, or ``None`` if it is not cell-shaped.

    Raises on unknown ids (same contract as :func:`get_experiment`).
    """
    get_experiment(experiment_id)  # id validation
    entry = _CELL_RUNNERS.get(experiment_id)
    return entry[0] if entry is not None else None


def synthesize(
    experiment_id: str, ctx: ExperimentContext, results: dict
) -> ExperimentReport:
    """Build an experiment's report from already-executed cell results."""
    entry = _CELL_RUNNERS.get(experiment_id)
    if entry is None:
        raise ExperimentError(
            f"experiment {experiment_id!r} declares no cells; "
            "use run_experiment instead"
        )
    return entry[1](ctx, results)


def run_experiment(
    experiment_id: str, ctx: ExperimentContext | None = None
) -> ExperimentReport:
    """Run one experiment, using the shared default context by default."""
    runner = get_experiment(experiment_id)
    return runner(ctx if ctx is not None else default_context())
