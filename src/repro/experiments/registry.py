"""Registry mapping experiment ids to runners.

Ids follow the paper: ``table1`` .. ``table5``, ``figure1`` ..
``figure13`` (figures 1-6 are the per-program gshare sweeps, 7-12 the
per-program scheme comparisons), plus the grouped ids ``figures1-6`` and
``figures7-12`` and the ``ablations`` extras.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.experiments import (
    ablations,
    extras,
    figure13,
    figures_gshare,
    figures_schemes,
    summary,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.common import PROGRAMS, ExperimentContext, default_context
from repro.experiments.report import ExperimentReport

__all__ = [
    "EXPERIMENT_IDS",
    "GROUPED_EXPERIMENT_IDS",
    "get_experiment",
    "run_experiment",
]

Runner = Callable[[ExperimentContext], ExperimentReport]


def _program_figure(module, program: str) -> Runner:
    return lambda ctx: module.run_program(ctx, program)


_RUNNERS: dict[str, Runner] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "figures1-6": figures_gshare.run,
    "figures7-12": figures_schemes.run,
    "figure13": figure13.run,
    "ablations": ablations.run,
    "ablation-agree": ablations.run_agree,
    "ablation-cutoff": ablations.run_cutoff_sweep,
    "ablation-history": ablations.run_history_sweep,
    "ablation-selection": ablations.run_selection_shootout,
    "pipeline-impact": extras.run_pipeline_impact,
    "classification": extras.run_classification,
    "summary": summary.run_all,
}
for _i, _program in enumerate(PROGRAMS):
    _RUNNERS[f"figure{_i + 1}"] = _program_figure(figures_gshare, _program)
    _RUNNERS[f"figure{_i + 7}"] = _program_figure(figures_schemes, _program)

EXPERIMENT_IDS = tuple(sorted(_RUNNERS))

GROUPED_EXPERIMENT_IDS = frozenset({
    "figures1-6", "figures7-12", "ablations", "summary",
})
"""Ids that aggregate other experiments and persist no golden of their
own: the per-program/per-ablation members under them each have a
``benchmarks/results/<id>.txt`` golden, so a grouped golden would only
duplicate bytes already regression-checked.  The ``repro lint`` REG001
rule reads this set; adding a grouped id here is a declared contract,
not a silent exemption."""


def get_experiment(experiment_id: str) -> Runner:
    """The runner for an experiment id; raises on unknown ids."""
    try:
        return _RUNNERS[experiment_id]
    except KeyError:
        known = ", ".join(EXPERIMENT_IDS)
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        ) from None


def run_experiment(
    experiment_id: str, ctx: ExperimentContext | None = None
) -> ExperimentReport:
    """Run one experiment, using the shared default context by default."""
    runner = get_experiment(experiment_id)
    return runner(ctx if ctx is not None else default_context())
