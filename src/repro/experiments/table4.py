"""Table 4: shifting statically predicted outcomes into global history.

Paper: "For predictors that use a global history of branch outcomes for
indexing, shifting or not shifting outcomes of statically predicted
branches will change aliasing.  So we experimented with optionally
shifting those outcomes in the global history register."  Table 4 tabulates
percentage improvements for 2bcgskew at 32 and 64 Kbytes, for both static
schemes, with and without shifting.

Shape: not every program benefits from shifting, but whenever a static
scheme *degrades* the predictor, shifting rescues it -- the statically
predicted branches' outcomes were carrying correlation information the
dynamic side needed (the paper's contribution #1).
"""

from __future__ import annotations

from repro.arch.isa import ShiftPolicy
from repro.core.metrics import SimulationResult, improvement
from repro.experiments.common import KIB, PROGRAMS, ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.runner import Cell, execute_cells
from repro.utils.tables import format_improvement

__all__ = ["run", "cells", "synthesize", "SIZES"]

SIZES = (32 * KIB, 64 * KIB)


def cells(ctx: ExperimentContext) -> list[Cell]:
    """Declared cell list: baseline plus every scheme x shift variant."""
    out: list[Cell] = []
    for program in PROGRAMS:
        for size in SIZES:
            out.append(Cell.make(program, "2bcgskew", size))
            for scheme in ("static_95", "static_acc"):
                for shift in (ShiftPolicy.NO_SHIFT, ShiftPolicy.SHIFT):
                    out.append(Cell.make(program, "2bcgskew", size,
                                         scheme=scheme, shift_policy=shift))
    return out


def run(ctx: ExperimentContext) -> ExperimentReport:
    """Regenerate Table 4."""
    results = execute_cells(ctx, cells(ctx))
    return synthesize(ctx, results)


def synthesize(
    ctx: ExperimentContext, results: dict[Cell, SimulationResult]
) -> ExperimentReport:
    """Build Table 4 from cell results."""
    report = ExperimentReport(
        experiment_id="table4",
        title="2bcgskew: effect of shifting history for statically "
              "predicted branches (paper Table 4)",
    )
    table = report.add_table(
        "MISPs/KI improvement over plain 2bcgskew",
        ["program", "size (bytes)", "static_95", "static_95 shift",
         "static_acc", "static_acc shift"],
    )
    data: dict[tuple[str, int], dict[str, float]] = {}
    for program in PROGRAMS:
        for size in SIZES:
            base = results[Cell.make(program, "2bcgskew", size)]
            cell: dict[str, float] = {}
            row: list[object] = [program, size]
            for scheme in ("static_95", "static_acc"):
                for shift in (ShiftPolicy.NO_SHIFT, ShiftPolicy.SHIFT):
                    result = results[Cell.make(program, "2bcgskew", size,
                                               scheme=scheme,
                                               shift_policy=shift)]
                    gain = improvement(base, result)
                    key = scheme + ("+shift" if shift is ShiftPolicy.SHIFT else "")
                    cell[key] = gain
                    row.append(format_improvement(gain))
            table.rows.append(row)
            data[(program, size)] = cell
    report.data["improvements"] = data
    report.notes.append(
        "Shape checks: shifting rescues the cases where a static scheme "
        "degrades MISP/KI (paper: ijpeg Static_Acc -1.4% -> +5.8% with "
        "shift); go and gcc improve with shift under both schemes even at "
        "64 Kbytes."
    )
    return report
