"""Async client for the predictor service.

A :class:`ServiceClient` owns one connection and supports *pipelining*:
any number of requests may be in flight at once, each stamped with a
counter-assigned ``tag``, and a background reader task routes responses
back to the matching waiter.  This is what lets the load generator's
open-loop mode issue requests on a clock instead of waiting for the
previous reply, over a handful of connections instead of thousands.

Responses are returned as decoded message dicts -- the client does not
raise on ``rejected``/``error`` responses, because to a load generator
(and to any retrying caller) load-shed is data, not an exception.  The
:meth:`ServiceClient.submit_result` helper converts to raise-on-error
for callers that do want exceptions.
"""

from __future__ import annotations

import asyncio
import itertools

from repro.core.metrics import SimulationResult
from repro.errors import ServiceError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    RESPONSE_TYPES,
    ProtocolError,
    decode,
    encode,
    request,
)

__all__ = ["ServiceClient", "wait_healthy"]


class ServiceClient:
    """One pipelined connection to a running predictor service."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._tags = itertools.count(1)
        self._pending: dict[str, asyncio.Future] = {}
        self._streams: dict[str, asyncio.Queue] = {}
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> ServiceClient:
        try:
            reader, writer = await asyncio.open_connection(
                host, port, limit=MAX_LINE_BYTES + 1024
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to the service at {host}:{port}: {exc}"
            ) from exc
        return cls(reader, writer)

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> ServiceClient:
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- request primitives ------------------------------------------------

    async def call(self, kind: str, **fields) -> dict:
        """One request, one response (matched by tag)."""
        tag = str(next(self._tags))
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[tag] = future
        try:
            await self._send(request(kind, tag=tag, **fields))
            return await future
        finally:
            self._pending.pop(tag, None)

    async def stream(self, cells: list[dict]) -> list[dict]:
        """Submit a cell list; responses in completion order, end trimmed."""
        tag = str(next(self._tags))
        queue: asyncio.Queue = asyncio.Queue()
        self._streams[tag] = queue
        try:
            await self._send(request("stream", tag=tag, cells=cells))
            messages: list[dict] = []
            while True:
                message = await queue.get()
                if isinstance(message, Exception):
                    raise message
                if message["type"] == "stream-end":
                    return messages
                messages.append(message)
        finally:
            self._streams.pop(tag, None)

    # -- conveniences ------------------------------------------------------

    async def submit(self, cell: dict, wait: bool = True) -> dict:
        """Submit one wire-format cell; returns the raw response message."""
        return await self.call("submit", cell=cell, wait=wait)

    async def submit_result(self, cell: dict) -> SimulationResult:
        """Submit and decode, raising :class:`ServiceError` on anything
        but a ``result`` response."""
        message = await self.submit(cell)
        kind = message["type"]
        if kind == "rejected":
            raise ServiceError(
                f"service rejected the request; retry after "
                f"{message.get('retry_after')}s"
            )
        if kind != "result":
            raise ServiceError(
                f"service error: {message.get('error', kind)}"
            )
        return SimulationResult.from_dict(message["result"])

    async def health(self) -> dict:
        return await self.call("health")

    async def stats(self) -> dict:
        return await self.call("stats")

    async def shutdown(self) -> dict:
        return await self.call("shutdown")

    # -- response routing --------------------------------------------------

    async def _send(self, message: dict) -> None:
        payload = encode(message)
        async with self._write_lock:
            self._writer.write(payload)
            await self._writer.drain()

    async def _read_loop(self) -> None:
        failure: Exception = ServiceError("connection closed by the service")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    message = decode(line, kinds=RESPONSE_TYPES)
                except ProtocolError as exc:
                    failure = exc
                    break
                self._route(message)
        except (ConnectionResetError, ValueError) as exc:
            failure = ServiceError(f"connection lost: {exc}")
        self._fail_waiters(failure)

    def _route(self, message: dict) -> None:
        tag = message.get("tag")
        queue = self._streams.get(tag)
        if queue is not None:
            queue.put_nowait(message)
            return
        future = self._pending.get(tag)
        if future is not None and not future.done():
            future.set_result(message)

    def _fail_waiters(self, failure: Exception) -> None:
        for tag in list(self._pending):
            future = self._pending.pop(tag)
            if not future.done():
                future.set_exception(failure)
        for tag in list(self._streams):
            self._streams.pop(tag).put_nowait(failure)


async def wait_healthy(
    host: str, port: int, timeout_s: float = 30.0, interval_s: float = 0.2
) -> dict:
    """Poll the health endpoint until the service answers ``ok``.

    The CI service job (and any supervisor) uses this to sequence
    "start the server in the background, then aim load at it" without
    racing the bind.  The budget is spent in wall-clock-free style: a
    fixed number of ``interval_s`` sleeps rather than a deadline clock,
    so the loop stays deterministic under the lint rules.
    """
    attempts = max(1, int(timeout_s / max(interval_s, 0.01)))
    failure: Exception | None = None
    for _ in range(attempts):
        try:
            client = await ServiceClient.connect(host, port)
        except ServiceError as exc:
            failure = exc
            await asyncio.sleep(interval_s)
            continue
        try:
            report = await asyncio.wait_for(client.health(), interval_s * 10)
        except (ServiceError, asyncio.TimeoutError) as exc:
            failure = exc
            await asyncio.sleep(interval_s)
            continue
        finally:
            await client.close()
        if report.get("status") == "ok":
            return report
        await asyncio.sleep(interval_s)
    raise ServiceError(
        f"service at {host}:{port} did not become healthy within "
        f"{timeout_s:.0f}s: {failure}"
    )
