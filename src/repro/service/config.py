"""Service configuration: the ``REPRO_SERVICE_*`` knob surface.

One dataclass holds every tunable the service layer has, and
:meth:`ServiceConfig.from_env` is the *only* place the knobs are read --
through the typed accessors of :mod:`repro.utils.env`, with defaults
matching the ``ENV_KNOBS`` registry declarations literally (lint rule
ENV001 cross-checks both directions).  CLI flags override per field via
:meth:`ServiceConfig.override`, so precedence is flag > environment >
registry default, same as the rest of the CLI.

None of these knobs can influence a simulated *result* -- they shape
scheduling, placement, and load shedding only -- which is why none of
them appear in cache keys (KEY001 reasons over ``ExperimentContext``
knobs; these never enter the context).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ServiceError
from repro.utils.env import env_float, env_int, env_str

__all__ = ["ServiceConfig"]


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Resolved service tunables (see module docstring for precedence)."""

    host: str = "127.0.0.1"
    port: int = 8177
    window_s: float = 0.005
    max_batch: int = 64
    queue_limit: int = 1024
    timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.window_s < 0:
            raise ServiceError(
                f"batch window must be >= 0, got {self.window_s}"
            )
        if self.max_batch < 1:
            raise ServiceError(f"max batch must be >= 1, got {self.max_batch}")
        if self.queue_limit < 1:
            raise ServiceError(
                f"queue limit must be >= 1, got {self.queue_limit}"
            )
        if self.timeout_s <= 0:
            raise ServiceError(
                f"request timeout must be positive, got {self.timeout_s}"
            )

    @classmethod
    def from_env(cls) -> ServiceConfig:
        """The environment-resolved configuration.

        The window knob is declared in milliseconds (the natural unit to
        type in a shell) and converted to seconds here, once, so every
        internal consumer works in seconds like ``asyncio`` does.
        """
        return cls(
            host=env_str("REPRO_SERVICE_HOST", "127.0.0.1"),
            port=env_int("REPRO_SERVICE_PORT", 8177, error=ServiceError),
            window_s=env_float(
                "REPRO_SERVICE_BATCH_WINDOW_MS", 5.0, error=ServiceError
            ) / 1000.0,
            max_batch=env_int(
                "REPRO_SERVICE_MAX_BATCH", 64, error=ServiceError
            ),
            queue_limit=env_int(
                "REPRO_SERVICE_QUEUE_LIMIT", 1024, error=ServiceError
            ),
            timeout_s=env_float(
                "REPRO_SERVICE_TIMEOUT_S", 60.0, error=ServiceError
            ),
        )

    def override(self, **fields) -> ServiceConfig:
        """A copy with the non-``None`` entries of ``fields`` applied."""
        present = {k: v for k, v in fields.items() if v is not None}
        return replace(self, **present) if present else self
