"""The batching scheduler: window coalescing over the runner.

``submit(cell)`` is the whole client-facing surface.  Its fast path is
memoized: a cell already seen (in the scheduler's in-memory memo, or in
the persistent :class:`~repro.runner.cache.ResultCache`) resolves
inline, without touching the queue -- this is what makes a warm server
answer in microseconds, and it is the hit counted by
``SchedulerStats.cache_hits``.  A miss enters a bounded queue; the
dispatcher task wakes on the first enqueue, sleeps one coalescing
window so concurrent submissions pile up behind it, then drains up to
``max_batch`` entries into one
:meth:`~repro.runner.engine.CellExecutor.execute` call.  The executor
dedupes identical cells within the batch and fans the rest out across
its persistent worker pool, so N clients asking the same question cost
one simulation.

Backpressure is reject-not-buffer: when queued + in-flight work reaches
``queue_limit``, ``submit`` raises :class:`QueueFullError` carrying a
``retry_after`` estimate (queue depth in batches x the window), and the
server turns that into a ``rejected`` response.  An unbounded queue
would instead convert overload into unbounded memory and timeout churn.

Batches dispatch strictly one at a time (the executor and its summary
are not thread-safe); concurrency lives in the worker pool underneath,
not in overlapping dispatches.  Draining is therefore simple: refuse
new submissions, let the dispatcher run the queue dry, then close the
pool.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass

from repro.core.metrics import SimulationResult
from repro.errors import ServiceError
from repro.runner.cells import Cell
from repro.runner.engine import CellExecutor

__all__ = [
    "BatchingScheduler",
    "DrainingError",
    "QueueFullError",
    "RequestTimeoutError",
    "SchedulerStats",
]

#: In-memory memo bound (distinct cells).  The memo exists to keep the
#: warm path off the disk store; past this many distinct cells the
#: oldest entries fall back to store lookups, which is a latency
#: regression, not a correctness one.
MEMO_LIMIT = 65_536


class QueueFullError(ServiceError):
    """Load shed: the queue is at its bound; retry after ``retry_after``."""

    def __init__(self, retry_after: float):
        super().__init__(
            f"service queue is full; retry after {retry_after:.3f}s"
        )
        self.retry_after = retry_after


class RequestTimeoutError(ServiceError):
    """A submission exceeded the per-request timeout while queued."""


class DrainingError(ServiceError):
    """The scheduler is draining for shutdown and accepts no new work."""


@dataclass(slots=True)
class SchedulerStats:
    """Service-level counters (distinct from the executor's summary).

    ``cache_hits`` counts *inline* resolutions only -- requests served
    without ever entering the queue.  The executor's own hit counters
    additionally see intra-batch dedup and store races, so the service
    hit-rate (what the load generator asserts on) is computed from
    these counters, not the store's.
    """

    submitted: int = 0
    completed: int = 0
    cache_hits: int = 0
    batches: int = 0
    batched_cells: int = 0
    rejected: int = 0
    timeouts: int = 0
    failures: int = 0

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
            "batches": self.batches,
            "batched_cells": self.batched_cells,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "failures": self.failures,
        }


class BatchingScheduler:
    """Coalesces cell submissions into executor batches (see module doc)."""

    def __init__(
        self,
        executor: CellExecutor,
        window_s: float = 0.005,
        max_batch: int = 64,
        queue_limit: int = 1024,
        timeout_s: float = 60.0,
    ):
        self.executor = executor
        self.window_s = window_s
        self.max_batch = max_batch
        self.queue_limit = queue_limit
        self.timeout_s = timeout_s
        self.stats = SchedulerStats()
        self._queue: deque[tuple[Cell, asyncio.Future]] = deque()
        self._inflight = 0
        self._memo: dict[Cell, SimulationResult] = {}
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._draining = False

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def depth(self) -> int:
        """Queued plus in-flight submissions (the backpressure gauge)."""
        return len(self._queue) + self._inflight

    async def start(self) -> None:
        if self._task is None:
            self._draining = False
            self._task = asyncio.create_task(self._run())

    async def stop(self) -> None:
        """Drain: refuse new work, run the queue dry, close the pool."""
        self._draining = True
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        await asyncio.to_thread(self.executor.close)

    async def submit(self, cell: Cell) -> SimulationResult:
        """One cell's result: memo hit inline, or batched simulation.

        Raises :class:`DrainingError` during shutdown,
        :class:`QueueFullError` past the queue bound, and
        :class:`RequestTimeoutError` past ``timeout_s`` -- the batch a
        timed-out cell rode in still completes and still feeds the
        memo, so the retry is a cache hit.
        """
        if self._draining:
            raise DrainingError("service is draining; no new submissions")
        self.stats.submitted += 1
        cached = self._lookup(cell)
        if cached is not None:
            self.stats.cache_hits += 1
            self.stats.completed += 1
            return cached
        if self.depth >= self.queue_limit:
            self.stats.rejected += 1
            raise QueueFullError(retry_after=self._retry_after())
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.append((cell, future))
        self._wake.set()
        try:
            result = await asyncio.wait_for(future, self.timeout_s)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            raise RequestTimeoutError(
                f"request exceeded the {self.timeout_s:.1f}s service timeout"
            ) from None
        except ServiceError:
            self.stats.failures += 1
            raise
        self.stats.completed += 1
        return result

    # -- internals ---------------------------------------------------------

    def _lookup(self, cell: Cell) -> SimulationResult | None:
        result = self._memo.get(cell)
        if result is None and self.executor.cache is not None:
            result = self.executor.cache.get_result(self.executor.ctx, cell)
            if result is not None:
                self._remember(cell, result)
        return result

    def _remember(self, cell: Cell, result: SimulationResult) -> None:
        if len(self._memo) >= MEMO_LIMIT:
            self._memo.pop(next(iter(self._memo)))
        self._memo[cell] = result

    def _retry_after(self) -> float:
        """Backpressure hint: estimated windows until the queue drains."""
        batches = max(1, -(-self.depth // self.max_batch))
        return max(self.window_s, 0.001) * batches

    async def _run(self) -> None:
        while True:
            if self._draining and not self._queue:
                break
            await self._wake.wait()
            if self._draining and not self._queue:
                break
            if not self._queue:
                self._wake.clear()
                continue
            if self.window_s > 0 and not self._draining:
                await asyncio.sleep(self.window_s)
            batch: list[tuple[Cell, asyncio.Future]] = []
            while self._queue and len(batch) < self.max_batch:
                batch.append(self._queue.popleft())
            if not self._queue and not self._draining:
                self._wake.clear()
            self._inflight += len(batch)
            try:
                await self._dispatch(batch)
            finally:
                self._inflight -= len(batch)

    async def _dispatch(
        self, batch: list[tuple[Cell, asyncio.Future]]
    ) -> None:
        """One executor call for one coalesced batch.

        Runs in a thread so the event loop keeps serving protocol
        traffic (health probes, stats, more submissions) while the pool
        simulates.  Futures whose waiters already timed out are simply
        skipped -- their results still land in the memo.
        """
        cells = list(dict.fromkeys(cell for cell, _ in batch))
        try:
            results = await asyncio.to_thread(self.executor.execute, cells)
        except Exception as exc:
            failure = ServiceError(f"batch execution failed: {exc}")
            for _, future in batch:
                if not future.done():
                    future.set_exception(failure)
            return
        self.stats.batches += 1
        self.stats.batched_cells += len(batch)
        for cell, result in results.items():
            self._remember(cell, result)
        for cell, future in batch:
            if not future.done():
                future.set_result(results[cell])
