"""Predictor-as-a-service: an async batching front-end over the runner.

The package turns the one-shot experiment runner into a long-running
server: clients submit experiment cells over a newline-delimited JSON
protocol (:mod:`~repro.service.protocol`), a batching scheduler
(:mod:`~repro.service.batching`) coalesces compatible cells within a
configurable window and dedupes them against the content-addressed
result cache, and a persistent :class:`~repro.runner.engine.CellExecutor`
pool simulates only what the cache has never seen.  A client library and
load generator (:mod:`~repro.service.client`,
:mod:`~repro.service.loadgen`) make the "heavy traffic" claim
measurable: p50/p90/p99 latency, requests/s, hit-rate, and error-rate,
gated in CI.

Layering (top to bottom; each layer only calls downward)::

    server    -- connections, message routing, request registry
    batching  -- window coalescing, bounded queue, backpressure, drain
    runner    -- persistent CellExecutor pool + sharded ResultCache

Everything here is stdlib ``asyncio``; the simulation work itself runs
in worker *processes* (the runner's pool), bridged off the event loop
with ``asyncio.to_thread``.
"""

from repro.service.batching import (
    BatchingScheduler,
    QueueFullError,
    RequestTimeoutError,
    SchedulerStats,
)
from repro.service.config import ServiceConfig
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError
from repro.service.server import PredictorService

__all__ = [
    "BatchingScheduler",
    "PredictorService",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueFullError",
    "RequestTimeoutError",
    "SchedulerStats",
    "ServiceConfig",
]
