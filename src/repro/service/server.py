"""The asyncio TCP server: connections, routing, request registry.

One connection may pipeline any number of requests: each incoming line
is handled in its own task, responses are serialized through a
per-connection write lock, and the client correlates by echoed ``tag``.
Everything protocol-shaped is decided here; everything scheduling-shaped
is the :class:`~repro.service.batching.BatchingScheduler`'s.

Async submissions (``submit`` with ``wait=false``) are registered in a
server-side table keyed by a counter-assigned ``request_id`` -- counters,
not UUIDs, deliberately: request ids never leave the process's lifetime,
and the determinism lint (DET002) bans entropy sources that could leak
into anything result-shaped.  Finished entries are evicted when polled
with ``result`` (or when the table passes its bound, oldest first).

Graceful shutdown drains: the listener closes (new connections refused),
the scheduler runs its queue dry, the worker pool shuts down, and the
final stats payload -- the same one the ``stats`` message serves -- is
persisted through the atomic-write seam so a supervisor can read the
run's counters after the process is gone.
"""

from __future__ import annotations

import asyncio
import itertools
import json

from repro.errors import ServiceError
from repro.experiments.common import ExperimentContext
from repro.predictors.sizing import PREDICTOR_NAMES
from repro.runner.cache import ResultCache
from repro.runner.engine import CellExecutor
from repro.service.batching import (
    BatchingScheduler,
    DrainingError,
    QueueFullError,
    RequestTimeoutError,
)
from repro.service.config import ServiceConfig
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    REQUEST_TYPES,
    ProtocolError,
    cell_from_wire,
    decode,
    encode,
    response,
)
from repro.utils.io import atomic_write_json
from repro.workloads.spec95 import PROGRAM_ORDER

__all__ = ["PredictorService"]

#: Bound on the async-submission table; past it the oldest *finished*
#: entries are evicted (pending ones are already bounded by the
#: scheduler's queue limit).
REGISTRY_LIMIT = 4096


def _salvage_tag(line: bytes) -> str | None:
    """Best-effort ``tag`` recovery from a line that may fail to decode,
    so even a protocol error (bad version, unknown type) is routed back
    to the pipelined client's matching waiter instead of being orphaned.
    """
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(message, dict):
        tag = message.get("tag")
        if isinstance(tag, str):
            return tag
    return None


class PredictorService:
    """The server object: lifecycle plus per-message handlers."""

    def __init__(
        self,
        ctx: ExperimentContext,
        config: ServiceConfig,
        jobs: int = 1,
        cache: ResultCache | None = None,
    ):
        self.config = config
        self.executor = CellExecutor(
            ctx, jobs=jobs, cache=cache, persistent=True
        )
        self.scheduler = BatchingScheduler(
            self.executor,
            window_s=config.window_s,
            max_batch=config.max_batch,
            queue_limit=config.queue_limit,
            timeout_s=config.timeout_s,
        )
        self.port: int | None = None
        self.connections = 0
        self._server: asyncio.AbstractServer | None = None
        self._ids = itertools.count(1)
        self._registry: dict[int, asyncio.Task] = {}
        self._shutdown = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the scheduler.

        ``self.port`` is the *bound* port afterwards -- with
        ``config.port == 0`` the OS picks one, which is what the tests
        and the in-process bench use to avoid clashing with a real
        deployment.
        """
        await self.scheduler.start()
        try:
            self._server = await asyncio.start_server(
                self._handle, self.config.host, self.config.port,
                limit=MAX_LINE_BYTES + 1024,
            )
        except OSError as exc:
            await self.scheduler.stop()
            raise ServiceError(
                f"cannot bind {self.config.host}:{self.config.port}: {exc}"
            ) from exc
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, stats_path: str | None = None) -> None:
        """Graceful drain (see module docstring)."""
        if self._server is not None:
            self._server.close()
            try:
                # 3.12 makes wait_closed also wait for open client
                # connections; a lingering idle client must not be able
                # to wedge the drain, so the wait is bounded.
                await asyncio.wait_for(self._server.wait_closed(), 5.0)
            except asyncio.TimeoutError:
                pass
            self._server = None
        for task in list(self._registry.values()):
            if not task.done():
                await asyncio.wait({task})
        await self.scheduler.stop()
        if stats_path is not None:
            atomic_write_json(stats_path, self.stats_payload(), indent=2)

    async def run(self, stats_path: str | None = None) -> None:
        """Serve until a ``shutdown`` request (or cancellation), then drain."""
        await self.start()
        try:
            await self._shutdown.wait()
        finally:
            await self.stop(stats_path=stats_path)

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def wait_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`request_shutdown`)."""
        await self._shutdown.wait()

    # -- connection handling -----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, ValueError):
                    # ValueError is how StreamReader reports a line past
                    # its buffer limit; either way the framing is gone.
                    break
                if not line:
                    break
                if len(line) > MAX_LINE_BYTES:
                    await self._send(writer, lock, response(
                        "error", error="message exceeds the line limit"))
                    break
                task = asyncio.ensure_future(
                    self._serve_message(line, writer, lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.wait(set(tasks))
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        message: dict,
    ) -> None:
        payload = encode(message)
        async with lock:
            writer.write(payload)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_message(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        tag = _salvage_tag(line)
        try:
            message = decode(line, kinds=REQUEST_TYPES)
            reply = await self._route(message, writer, lock)
        except ProtocolError as exc:
            reply = response("error", tag, error=str(exc), v=PROTOCOL_VERSION)
        except ServiceError as exc:
            reply = response("error", tag, error=str(exc))
        if reply is not None:
            await self._send(writer, lock, reply)

    async def _route(
        self,
        message: dict,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> dict | None:
        kind = message["type"]
        tag = message.get("tag")
        if kind == "submit":
            return await self._submit(message)
        if kind == "stream":
            await self._stream(message, writer, lock)
            return None
        if kind == "status":
            return self._status(message, with_result=False)
        if kind == "result":
            return self._status(message, with_result=True)
        if kind == "health":
            return self._health(tag)
        if kind == "stats":
            return response("stats", tag, **self.stats_payload())
        # kind == "shutdown" (decode() already rejected everything else)
        self.request_shutdown()
        return response("ok", tag, draining=True)

    # -- handlers ----------------------------------------------------------

    async def _submit(self, message: dict) -> dict:
        tag = message.get("tag")
        cell = cell_from_wire(message.get("cell"))
        wait = message.get("wait", True)
        if wait is not True and wait is not False:
            raise ProtocolError("'wait' must be a boolean when present")
        if not wait:
            request_id = next(self._ids)
            self._evict_registry()
            self._registry[request_id] = asyncio.ensure_future(
                self.scheduler.submit(cell)
            )
            return response("accepted", tag, request_id=request_id)
        before = self.scheduler.stats.cache_hits
        try:
            result = await self.scheduler.submit(cell)
        except QueueFullError as exc:
            return response("rejected", tag, retry_after=exc.retry_after)
        except (RequestTimeoutError, DrainingError) as exc:
            return response("error", tag, error=str(exc))
        return response(
            "result", tag,
            result=result.to_dict(),
            cached=self.scheduler.stats.cache_hits > before,
        )

    async def _stream(
        self,
        message: dict,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        """One ``result`` line per cell, in completion order, then the end
        marker; a bad cell fails the whole stream up front (before any
        work is queued) rather than half way through."""
        tag = message.get("tag")
        payloads = message.get("cells")
        if not isinstance(payloads, list) or not payloads:
            raise ProtocolError("'cells' must be a non-empty list")
        cells = [cell_from_wire(payload) for payload in payloads]

        async def one(index: int, cell) -> dict:
            try:
                result = await self.scheduler.submit(cell)
            except QueueFullError as exc:
                return response("rejected", tag, index=index,
                                retry_after=exc.retry_after)
            except ServiceError as exc:
                return response("error", tag, index=index, error=str(exc))
            return response("result", tag, index=index,
                            result=result.to_dict())

        pending = {
            asyncio.ensure_future(one(index, cell))
            for index, cell in enumerate(cells)
        }
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                await self._send(writer, lock, task.result())
        await self._send(writer, lock,
                         response("stream-end", tag, count=len(cells)))

    def _status(self, message: dict, with_result: bool) -> dict:
        tag = message.get("tag")
        request_id = message.get("request_id")
        if not isinstance(request_id, int):
            raise ProtocolError("'request_id' must be an integer")
        task = self._registry.get(request_id)
        if task is None:
            return response("error", tag, request_id=request_id,
                            error=f"unknown request_id {request_id}")
        if not task.done():
            return response("status", tag, request_id=request_id,
                            state="pending")
        if not with_result:
            state = "failed" if task.exception() is not None else "done"
            return response("status", tag, request_id=request_id, state=state)
        del self._registry[request_id]
        error = task.exception()
        if error is not None:
            return response("error", tag, request_id=request_id,
                            error=str(error))
        return response("result", tag, request_id=request_id,
                        result=task.result().to_dict())

    def _health(self, tag: str | None) -> dict:
        return response(
            "health", tag,
            v=PROTOCOL_VERSION,
            status="draining" if self.scheduler.draining else "ok",
            programs=len(PROGRAM_ORDER),
            predictors=len(PREDICTOR_NAMES),
            queue_depth=self.scheduler.depth,
        )

    def _evict_registry(self) -> None:
        if len(self._registry) < REGISTRY_LIMIT:
            return
        for request_id in list(self._registry):
            task = self._registry[request_id]
            if task.done():
                del self._registry[request_id]
                if len(self._registry) < REGISTRY_LIMIT:
                    return

    # -- observability -----------------------------------------------------

    def stats_payload(self) -> dict:
        """The counters the ``stats`` message serves (and drain persists)."""
        summary = self.executor.summary
        payload = {
            "scheduler": self.scheduler.stats.to_dict(),
            "executor": {
                "jobs": summary.jobs,
                "cells": summary.cells,
                "batches": summary.batches,
                "simulated": summary.simulated,
                "branches_simulated": summary.branches_simulated,
            },
            "connections": self.connections,
        }
        cache = self.executor.cache
        if cache is not None:
            payload["store"] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "bytes": cache.store_bytes(),
            }
        return payload
