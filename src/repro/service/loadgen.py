"""Load generator: measured traffic against a running service.

Two driving modes, the classic pair:

* **closed loop** -- ``concurrency`` workers, each holding one
  pipelined connection, each issuing its next request the moment the
  previous one completes.  Throughput is whatever the server sustains;
  latency excludes queueing at the client.
* **open loop** -- requests are *scheduled* at a fixed ``rate``
  (requests/s), issued over round-robin connections regardless of how
  fast responses come back.  This is the honest overload probe: a
  server that cannot keep up accumulates latency (or sheds load via
  ``rejected``) instead of quietly slowing the generator down.

Every request is timed; the :class:`LatencyReport` aggregates p50/p90/
p99, requests/s, the *service-side* hit-rate (scheduler counters
sampled before and after the run, so executor-internal cache traffic
does not pollute it), and error/rejection counts.  The report renders
as a human table and as JSON written through the atomic seam -- CI
parses the JSON to gate on warm hit-rate 1.0 and zero errors.

All clock reads here are observability (latency *is* the observable);
none of them can reach a simulated result, hence the DET002 allows.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
import time

from repro.errors import ServiceError
from repro.experiments.common import KIB
from repro.service.client import ServiceClient, wait_healthy
from repro.utils.io import atomic_write_json

__all__ = [
    "LatencyReport",
    "default_mix",
    "percentile",
    "run_loadgen",
]

_MIX_PREDICTORS = ("bimodal", "gshare", "ghist")
_MIX_SIZES = (1 * KIB, 2 * KIB, 4 * KIB)


def default_mix(size: int = 4, program: str = "gcc") -> list[dict]:
    """``size`` distinct wire-format cells, deterministically ordered.

    The mix walks the predictor x table-size grid the paper's sweeps
    walk, so a "warm" service run is exactly the memoized steady state
    a real sweep would reach.
    """
    if size < 1:
        raise ServiceError(f"mix size must be >= 1, got {size}")
    grid = [
        {"program": program, "predictor": predictor, "size_bytes": size_bytes}
        for size_bytes in _MIX_SIZES
        for predictor in _MIX_PREDICTORS
    ]
    if size > len(grid):
        raise ServiceError(
            f"mix size {size} exceeds the {len(grid)}-cell grid"
        )
    return grid[:size]


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolated quantile (``q`` in [0, 1]) of ``samples``."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = (len(ordered) - 1) * q
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


@dataclass(frozen=True, slots=True)
class LatencyReport:
    """One load-generation run, aggregated."""

    mode: str
    requests: int
    concurrency: int
    rate: float | None
    duration_s: float
    completed: int
    errors: int
    rejected: int
    hit_rate: float | None
    p50_ms: float
    p90_ms: float
    p99_ms: float

    @property
    def requests_per_second(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    @property
    def error_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.errors / self.requests

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "requests": self.requests,
            "concurrency": self.concurrency,
            "rate": self.rate,
            "duration_s": self.duration_s,
            "completed": self.completed,
            "errors": self.errors,
            "rejected": self.rejected,
            "hit_rate": self.hit_rate,
            "error_rate": self.error_rate,
            "requests_per_second": self.requests_per_second,
            "p50_ms": self.p50_ms,
            "p90_ms": self.p90_ms,
            "p99_ms": self.p99_ms,
        }

    def write_json(self, path: str) -> None:
        atomic_write_json(path, self.to_dict(), indent=2)

    def describe(self) -> str:
        """The human table."""
        hit = "n/a" if self.hit_rate is None else f"{self.hit_rate:.1%}"
        rate = "-" if self.rate is None else f"{self.rate:,.0f}/s"
        rows = [
            ("mode", f"{self.mode} (target {rate})" if self.rate is not None
             else self.mode),
            ("requests", f"{self.requests} over {self.concurrency} conn(s)"),
            ("completed", f"{self.completed} "
             f"({self.errors} errors, {self.rejected} rejected)"),
            ("duration", f"{self.duration_s:.3f}s"),
            ("throughput", f"{self.requests_per_second:,.0f} requests/s"),
            ("hit-rate", hit),
            ("p50 / p90 / p99", f"{self.p50_ms:.3f} / {self.p90_ms:.3f} / "
             f"{self.p99_ms:.3f} ms"),
        ]
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {value}"
                         for label, value in rows)


async def run_loadgen(
    host: str,
    port: int,
    requests: int = 200,
    concurrency: int = 8,
    mode: str = "closed",
    rate: float | None = None,
    mix: list[dict] | None = None,
    wait_health_s: float | None = None,
) -> LatencyReport:
    """Drive one measured run (see module docstring for the modes)."""
    if requests < 1:
        raise ServiceError(f"requests must be >= 1, got {requests}")
    if concurrency < 1:
        raise ServiceError(f"concurrency must be >= 1, got {concurrency}")
    if mode not in ("closed", "open"):
        raise ServiceError(f"mode must be 'closed' or 'open', got {mode!r}")
    if mode == "open" and (rate is None or rate <= 0):
        raise ServiceError("open-loop mode needs a positive --rate")
    cells = mix if mix is not None else default_mix()

    if wait_health_s is not None:
        await wait_healthy(host, port, timeout_s=wait_health_s)

    clients = [
        await ServiceClient.connect(host, port) for _ in range(concurrency)
    ]
    latencies_ms: list[float] = []
    outcomes = {"result": 0, "rejected": 0, "error": 0}

    async def one(client: ServiceClient, index: int) -> None:
        cell = cells[index % len(cells)]
        start = time.perf_counter()  # repro: allow[DET002] -- observability only, latency is the measurement
        try:
            message = await client.submit(cell)
        except ServiceError:
            outcomes["error"] += 1
            return
        elapsed = time.perf_counter() - start  # repro: allow[DET002] -- observability only
        kind = message["type"]
        outcomes[kind if kind in outcomes else "error"] += 1
        if kind == "result":
            latencies_ms.append(elapsed * 1000.0)

    stats_before = await clients[0].stats()
    run_start = time.perf_counter()  # repro: allow[DET002] -- observability only
    if mode == "closed":
        pending = iter(range(requests))

        async def worker(client: ServiceClient) -> None:
            for index in pending:
                await one(client, index)

        await asyncio.gather(*(worker(client) for client in clients))
    else:
        interval = 1.0 / rate
        tasks = []
        for index in range(requests):
            tasks.append(asyncio.ensure_future(
                one(clients[index % concurrency], index)
            ))
            if index + 1 < requests:
                await asyncio.sleep(interval)
        await asyncio.gather(*tasks)
    duration = time.perf_counter() - run_start  # repro: allow[DET002] -- observability only
    stats_after = await clients[0].stats()

    for client in clients:
        await client.close()

    return LatencyReport(
        mode=mode,
        requests=requests,
        concurrency=concurrency,
        rate=rate,
        duration_s=duration,
        completed=outcomes["result"],
        errors=outcomes["error"],
        rejected=outcomes["rejected"],
        hit_rate=_hit_rate_delta(stats_before, stats_after),
        p50_ms=percentile(latencies_ms, 0.50),
        p90_ms=percentile(latencies_ms, 0.90),
        p99_ms=percentile(latencies_ms, 0.99),
    )


def _hit_rate_delta(before: dict, after: dict) -> float | None:
    """Scheduler-level hit-rate across the run, from stats snapshots.

    Inline cache hits over completed submissions -- the executor's own
    counters would double-count store lookups made *inside* a batch, so
    they are deliberately not used here.
    """
    try:
        hits = (after["scheduler"]["cache_hits"]
                - before["scheduler"]["cache_hits"])
        completed = (after["scheduler"]["completed"]
                     - before["scheduler"]["completed"])
    except (KeyError, TypeError):
        return None
    if completed <= 0:
        return None
    return hits / completed
