"""The service wire protocol: versioned newline-delimited JSON.

One message per line, UTF-8 JSON, ``\\n``-terminated.  Every request
carries ``{"v": PROTOCOL_VERSION, "type": <request type>, ...}`` and an
optional client ``tag`` (an opaque string the server echoes verbatim in
the matching response, which is what lets a client pipeline several
in-flight requests over one connection).  Responses carry ``type`` and
the echoed ``tag``; the protocol version is negotiated only one way --
a request with the wrong ``v`` is rejected with an ``error`` response
naming the server's version, so old clients fail loudly instead of
misparsing.

Request types
-------------

``submit``
    One experiment cell (``cell``: see :func:`cell_to_wire`).  With
    ``wait`` true (the default) the response is the cell's ``result``;
    with ``wait`` false an ``accepted`` response carries a server
    ``request_id`` for later ``status``/``result`` polls.  A full queue
    produces ``rejected`` with ``retry_after`` seconds.
``status`` / ``result``
    Poll a previously accepted ``request_id``.
``stream``
    A list of cells; the server responds with one ``result`` message
    per cell *in completion order* (each tagged with the cell's index
    as ``index``), then ``stream-end``.
``health``
    Liveness probe; the response carries the protocol version and the
    server's registered program/predictor counts.
``stats``
    Service counters (requests, batches, cache hits, rejections) plus
    the executor's run summary and store counters.
``shutdown``
    Graceful drain: in-flight batches complete, queued requests are
    served, new connections are refused, then the process exits.

The cell representation on the wire is pure data (strings, ints,
floats, bools) validated against the same registries the CLI uses --
an unknown program or predictor is a :class:`ProtocolError` at decode
time, *before* anything reaches the scheduler.
"""

from __future__ import annotations

import json

from repro.arch.isa import ShiftPolicy
from repro.errors import ServiceError
from repro.predictors.sizing import PREDICTOR_NAMES
from repro.runner.cells import STABLE_SCHEME, Cell
from repro.staticpred.selection import SELECTION_SCHEMES
from repro.workloads.spec95 import PROGRAM_ORDER

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "ProtocolError",
    "encode",
    "decode",
    "request",
    "response",
    "cell_to_wire",
    "cell_from_wire",
]

PROTOCOL_VERSION = 1
"""Bumped on any incompatible message-shape change; requests carrying a
different ``v`` are answered with an ``error`` naming this value."""

MAX_LINE_BYTES = 1 << 20
"""Upper bound on one encoded message; longer lines are a protocol
error (and protect the server from unbounded buffering)."""

REQUEST_TYPES = (
    "submit", "status", "result", "stream", "health", "stats", "shutdown",
)

RESPONSE_TYPES = (
    "accepted", "rejected", "status", "result", "error",
    "health", "stats", "stream-end", "ok",
)

_WIRE_SCHEMES = SELECTION_SCHEMES + (STABLE_SCHEME,)
_SHIFT_POLICIES = {policy.value: policy for policy in ShiftPolicy}
_INPUTS = ("train", "ref")
_SCALARS = (int, float, str, bool)


class ProtocolError(ServiceError):
    """A message failed to parse or validate against the protocol."""


def encode(message: dict) -> bytes:
    """One message as a complete wire line (JSON + newline).

    ``json.dumps`` never emits raw newlines, so the line framing cannot
    be broken by payload content; non-serializable payloads are caller
    bugs surfaced as :class:`ProtocolError`.
    """
    try:
        text = json.dumps(message, separators=(",", ":"), sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable message: {exc}") from exc
    line = text.encode("utf-8") + b"\n"
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"encoded message is {len(line)} bytes; the protocol caps "
            f"lines at {MAX_LINE_BYTES}"
        )
    return line


def decode(line: bytes | str, *, kinds: tuple[str, ...] | None = None) -> dict:
    """Parse and shape-check one wire line.

    ``kinds`` restricts the accepted ``type`` values (the server passes
    :data:`REQUEST_TYPES`, clients :data:`RESPONSE_TYPES`); requests
    additionally carry a matching protocol version.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"message line is {len(line)} bytes; the protocol caps "
                f"lines at {MAX_LINE_BYTES}"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"message is not UTF-8: {exc}") from exc
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    kind = message.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("message carries no string 'type' field")
    if kinds is not None and kind not in kinds:
        raise ProtocolError(
            f"unknown message type {kind!r}; expected one of "
            f"{', '.join(kinds)}"
        )
    if kinds is REQUEST_TYPES:
        version = message.get("v")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: request carries v={version!r}, "
                f"this server speaks v={PROTOCOL_VERSION}"
            )
    tag = message.get("tag")
    if tag is not None and not isinstance(tag, str):
        raise ProtocolError("'tag' must be a string when present")
    return message


def request(kind: str, **fields) -> dict:
    """Build a request message (adds the protocol version)."""
    if kind not in REQUEST_TYPES:
        raise ProtocolError(f"unknown request type {kind!r}")
    return {"v": PROTOCOL_VERSION, "type": kind, **fields}


def response(kind: str, tag: str | None = None, **fields) -> dict:
    """Build a response message (echoing the request's ``tag``)."""
    if kind not in RESPONSE_TYPES:
        raise ProtocolError(f"unknown response type {kind!r}")
    message = {"type": kind, **fields}
    if tag is not None:
        message["tag"] = tag
    return message


# -- cell (de)serialization ------------------------------------------------

def cell_to_wire(cell: Cell) -> dict:
    """A cell as pure wire data (the inverse of :func:`cell_from_wire`)."""
    payload = {
        "program": cell.program,
        "predictor": cell.predictor,
        "size_bytes": cell.size_bytes,
        "scheme": cell.scheme,
        "shift_policy": cell.shift_policy.value,
        "measure_input": cell.measure_input,
        "profile_input": cell.profile_input,
        "cutoff": cell.cutoff,
        "factor": cell.factor,
        "track_collisions": cell.track_collisions,
    }
    if cell.predictor_kwargs:
        payload["predictor_kwargs"] = dict(cell.predictor_kwargs)
    return payload


def _require(payload: dict, key: str, allowed: tuple, default=None):
    value = payload.get(key, default)
    if value not in allowed:
        raise ProtocolError(
            f"cell field {key!r} must be one of {', '.join(map(str, allowed))}; "
            f"got {value!r}"
        )
    return value


def cell_from_wire(payload: dict) -> Cell:
    """Validate wire data into a :class:`~repro.runner.cells.Cell`.

    Validation happens here, at the protocol boundary, so a malformed
    submission is a clean ``error`` response instead of a worker-side
    exception half way through a batch.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"cell must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - {
        "program", "predictor", "size_bytes", "scheme", "shift_policy",
        "measure_input", "profile_input", "cutoff", "factor",
        "track_collisions", "predictor_kwargs",
    })
    if unknown:
        raise ProtocolError(f"unknown cell field(s): {', '.join(unknown)}")

    program = _require(payload, "program", PROGRAM_ORDER)
    predictor = _require(payload, "predictor", PREDICTOR_NAMES)
    scheme = _require(payload, "scheme", _WIRE_SCHEMES, default="none")
    shift_value = _require(payload, "shift_policy",
                           tuple(sorted(_SHIFT_POLICIES)),
                           default=ShiftPolicy.NO_SHIFT.value)
    measure_input = _require(payload, "measure_input", _INPUTS, default="ref")
    profile_input = _require(payload, "profile_input", _INPUTS, default="ref")

    size_bytes = payload.get("size_bytes")
    if not isinstance(size_bytes, int) or isinstance(size_bytes, bool) \
            or size_bytes <= 0:
        raise ProtocolError(
            f"cell field 'size_bytes' must be a positive integer, got "
            f"{size_bytes!r}"
        )
    cutoff = payload.get("cutoff", 0.95)
    factor = payload.get("factor", 1.05)
    for name, value in (("cutoff", cutoff), ("factor", factor)):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ProtocolError(
                f"cell field {name!r} must be a number, got {value!r}"
            )
    track = payload.get("track_collisions", False)
    if not isinstance(track, bool):
        raise ProtocolError(
            f"cell field 'track_collisions' must be a boolean, got {track!r}"
        )
    kwargs = payload.get("predictor_kwargs") or {}
    if not isinstance(kwargs, dict):
        raise ProtocolError("cell field 'predictor_kwargs' must be an object")
    for key, value in sorted(kwargs.items()):
        if not isinstance(key, str) or not isinstance(value, _SCALARS):
            raise ProtocolError(
                f"predictor_kwargs entries must map strings to scalars; "
                f"got {key!r}={value!r}"
            )
    return Cell.make(
        program, predictor, size_bytes,
        predictor_kwargs=kwargs or None,
        scheme=scheme,
        shift_policy=_SHIFT_POLICIES[shift_value],
        measure_input=measure_input,
        profile_input=profile_input,
        cutoff=float(cutoff),
        factor=float(factor),
        track_collisions=track,
    )
