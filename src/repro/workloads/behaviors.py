"""Per-branch outcome models.

Each static branch site in a synthetic workload owns one *behaviour*
object that produces its sequence of taken/not-taken outcomes.  The
behaviour classes model the branch populations the branch-prediction
literature identifies, and each maps onto a capability of the predictors
under study:

``BiasedBehavior``
    Bernoulli outcomes with a fixed taken probability.  High-bias
    instances (p near 0 or 1) are the "easy" branches that bimodal
    predictors and ``Static_95`` capture; p near 0.5 models data-dependent
    branches that nothing predicts well.
``LoopBehavior``
    Taken ``trip - 1`` times, then not-taken (a loop back edge).  History
    predictors with enough history learn the exit; bimodal mispredicts
    the exit every iteration of the outer loop.
``PatternBehavior``
    A short repeating taken/not-taken pattern; perfectly learnable by
    history predictors whose history covers the period.
``CorrelatedBehavior``
    Outcome is a boolean function (parity) of selected recent *global*
    outcomes plus noise -- the "branch correlation" principle that ghist
    and gshare exploit and bimodal cannot.
``PhasedBehavior``
    Bias switches between phases during a run, modelling branches whose
    behaviour is input- or phase-dependent; these are what make
    profile-guided static prediction risky (Section 5.1 of the paper).

Behaviour instances are *stateful and per-site*: two sites never share a
behaviour object.  They are created from picklable, declarative factory
specs so workload definitions stay data-only.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from random import Random

from repro.errors import ConfigurationError

__all__ = [
    "BranchBehavior",
    "BiasedBehavior",
    "MarkovBiasedBehavior",
    "LoopBehavior",
    "PatternBehavior",
    "CorrelatedBehavior",
    "PhasedBehavior",
    "BehaviorFactory",
    "BiasedFactory",
    "LoopFactory",
    "PatternFactory",
    "CorrelatedFactory",
    "PhasedFactory",
]


class BranchBehavior(abc.ABC):
    """Produces one branch site's outcome stream.

    ``outcome(history, rng)`` receives the current *global* outcome
    history (low bit = most recent branch outcome in the whole program,
    regardless of which site produced it) so correlated behaviours can
    react to it, plus the workload's RNG stream.
    """

    __slots__ = ()

    @abc.abstractmethod
    def outcome(self, history: int, rng: Random) -> bool:
        """Return the next outcome for this site (True = taken)."""

    @abc.abstractmethod
    def expected_bias(self) -> float:
        """Long-run ``max(P(taken), P(not taken))`` for calibration/tests."""


class BiasedBehavior(BranchBehavior):
    """Independent Bernoulli outcomes with fixed taken probability."""

    __slots__ = ("p_taken",)

    def __init__(self, p_taken: float):
        if not 0.0 <= p_taken <= 1.0:
            raise ConfigurationError(f"p_taken must be in [0, 1], got {p_taken}")
        self.p_taken = p_taken

    def outcome(self, history: int, rng: Random) -> bool:
        return rng.random() < self.p_taken

    def expected_bias(self) -> float:
        return max(self.p_taken, 1.0 - self.p_taken)

    def __repr__(self) -> str:
        return f"BiasedBehavior(p_taken={self.p_taken:.3f})"


class MarkovBiasedBehavior(BranchBehavior):
    """Bursty biased outcomes: a two-regime Markov chain.

    Real "95% taken" branches are rarely independent coin flips -- the 5%
    minority outcomes cluster (an error path fires for a while, a guard
    trips on one phase of the data).  This behaviour emits its current
    regime's direction and switches regimes with small probabilities
    chosen so the stationary taken-rate equals ``p_taken`` and minority
    runs average ``burst_length`` executions.

    Burstiness matters for *other* branches too: a history window over
    bursty predecessors shows a handful of distinct patterns (all-modal,
    all-minority, one boundary) instead of ``2**k`` noise patterns, which
    is what lets global-history predictors train within realistic trace
    lengths -- the same reason they work on real hardware.
    """

    __slots__ = ("p_taken", "burst_length", "_majority", "_in_minority",
                 "_enter_minority", "_leave_minority")

    def __init__(self, p_taken: float, burst_length: float = 6.0):
        if not 0.0 <= p_taken <= 1.0:
            raise ConfigurationError(f"p_taken must be in [0, 1], got {p_taken}")
        if burst_length < 1.0:
            raise ConfigurationError(
                f"burst_length must be >= 1, got {burst_length}"
            )
        self.p_taken = p_taken
        self.burst_length = burst_length
        self._majority = p_taken >= 0.5
        minority_fraction = min(p_taken, 1.0 - p_taken)
        leave = 1.0 / burst_length
        if minority_fraction >= 1.0 - 1e-12:
            enter = 1.0
        else:
            # Stationary minority occupancy = enter / (enter + leave).
            enter = leave * minority_fraction / (1.0 - minority_fraction)
        self._enter_minority = min(1.0, enter)
        self._leave_minority = leave
        self._in_minority = False

    def outcome(self, history: int, rng: Random) -> bool:
        if self._in_minority:
            if rng.random() < self._leave_minority:
                self._in_minority = False
        elif rng.random() < self._enter_minority:
            self._in_minority = True
        return self._majority ^ self._in_minority

    def expected_bias(self) -> float:
        return max(self.p_taken, 1.0 - self.p_taken)

    def __repr__(self) -> str:
        return (
            f"MarkovBiasedBehavior(p_taken={self.p_taken:.3f}, "
            f"burst_length={self.burst_length:.1f})"
        )


class LoopBehavior(BranchBehavior):
    """A loop back edge: taken ``trip - 1`` consecutive times, then not.

    ``jitter`` > 0 resamples the trip count around the mean at each loop
    entry (uniform in ``[trip - jitter, trip + jitter]``), which keeps the
    exit point from being perfectly periodic -- long-history predictors
    still do well, but not perfectly, matching real loop behaviour.
    """

    __slots__ = ("trip", "jitter", "_remaining")

    def __init__(self, trip: int, jitter: int = 0):
        if trip < 2:
            raise ConfigurationError(f"loop trip count must be >= 2, got {trip}")
        if jitter < 0 or jitter >= trip - 1:
            raise ConfigurationError(
                f"jitter must be in [0, trip - 2], got {jitter} for trip {trip}"
            )
        self.trip = trip
        self.jitter = jitter
        self._remaining = 0

    def _sample_trip(self, rng: Random) -> int:
        if self.jitter == 0:
            return self.trip
        return rng.randint(self.trip - self.jitter, self.trip + self.jitter)

    def outcome(self, history: int, rng: Random) -> bool:
        if self._remaining == 0:
            self._remaining = self._sample_trip(rng)
        self._remaining -= 1
        # Last iteration of the trip falls through (not taken).
        return self._remaining != 0

    def expected_bias(self) -> float:
        return (self.trip - 1) / self.trip

    def __repr__(self) -> str:
        return f"LoopBehavior(trip={self.trip}, jitter={self.jitter})"


class PatternBehavior(BranchBehavior):
    """A fixed repeating taken/not-taken pattern (e.g. T T N T T N)."""

    __slots__ = ("pattern", "_position")

    def __init__(self, pattern: tuple[bool, ...]):
        if len(pattern) < 2:
            raise ConfigurationError("pattern must have at least two outcomes")
        if all(pattern) or not any(pattern):
            raise ConfigurationError(
                "a constant pattern should be a BiasedBehavior instead"
            )
        self.pattern = tuple(bool(b) for b in pattern)
        self._position = 0

    def outcome(self, history: int, rng: Random) -> bool:
        value = self.pattern[self._position]
        self._position = (self._position + 1) % len(self.pattern)
        return value

    def expected_bias(self) -> float:
        taken = sum(self.pattern) / len(self.pattern)
        return max(taken, 1.0 - taken)

    def __repr__(self) -> str:
        text = "".join("T" if b else "N" for b in self.pattern)
        return f"PatternBehavior({text})"


class CorrelatedBehavior(BranchBehavior):
    """Outcome is the parity of selected recent global outcomes plus noise.

    ``history_mask`` selects which of the last outcomes feed the parity
    (bit 0 = most recent).  ``noise`` is the probability of flipping the
    deterministic outcome; with noise 0 the branch is perfectly
    predictable by a global-history predictor whose history covers the
    mask, while its *bias* hovers near 50% so bimodal predictors are
    helpless.  ``invert`` flips the function so populations of correlated
    branches are not all identical.
    """

    __slots__ = ("history_mask", "noise", "invert")

    def __init__(self, history_mask: int, noise: float = 0.0, invert: bool = False):
        if history_mask <= 0:
            raise ConfigurationError(
                f"history_mask must select at least one bit, got {history_mask}"
            )
        if not 0.0 <= noise <= 0.5:
            raise ConfigurationError(f"noise must be in [0, 0.5], got {noise}")
        self.history_mask = history_mask
        self.noise = noise
        self.invert = invert

    def outcome(self, history: int, rng: Random) -> bool:
        parity = bin(history & self.history_mask).count("1") & 1
        value = bool(parity) ^ self.invert
        if self.noise and rng.random() < self.noise:
            value = not value
        return value

    def expected_bias(self) -> float:
        # Parity of (approximately independent) history bits is close to a
        # fair coin marginally, so the long-run bias is near 0.5.
        return 0.5

    def __repr__(self) -> str:
        return (
            f"CorrelatedBehavior(mask={self.history_mask:#x}, "
            f"noise={self.noise:.2f}, invert={self.invert})"
        )


@dataclass(frozen=True, slots=True)
class Phase:
    """One phase of a :class:`PhasedBehavior`: ``length`` executions at
    taken-probability ``p_taken``."""

    length: int
    p_taken: float


class PhasedBehavior(BranchBehavior):
    """Bias switches between phases as the branch executes.

    Cycles through its phases.  A branch that is 95% taken for 5000
    executions and then 5% taken for the next 5000 has a *whole-run* bias
    near 50% but is easy for any adaptive dynamic predictor -- exactly the
    branch class where static prediction goes wrong.
    """

    __slots__ = ("phases", "_phase_index", "_remaining")

    def __init__(self, phases: tuple[Phase, ...]):
        if len(phases) < 2:
            raise ConfigurationError("a phased behaviour needs at least two phases")
        for phase in phases:
            if phase.length <= 0:
                raise ConfigurationError(f"phase length must be positive: {phase}")
            if not 0.0 <= phase.p_taken <= 1.0:
                raise ConfigurationError(f"phase p_taken must be in [0, 1]: {phase}")
        self.phases = tuple(phases)
        self._phase_index = 0
        self._remaining = phases[0].length

    def outcome(self, history: int, rng: Random) -> bool:
        if self._remaining == 0:
            self._phase_index = (self._phase_index + 1) % len(self.phases)
            self._remaining = self.phases[self._phase_index].length
        self._remaining -= 1
        return rng.random() < self.phases[self._phase_index].p_taken

    def expected_bias(self) -> float:
        total = sum(p.length for p in self.phases)
        p_taken = sum(p.length * p.p_taken for p in self.phases) / total
        return max(p_taken, 1.0 - p_taken)

    def __repr__(self) -> str:
        return f"PhasedBehavior({len(self.phases)} phases)"


# ---------------------------------------------------------------------------
# Declarative factories
# ---------------------------------------------------------------------------


class BehaviorFactory(abc.ABC):
    """Declarative spec that instantiates per-site behaviour objects.

    Factories draw per-site parameters (e.g. the exact taken probability
    within a band) from the workload RNG so a population of sites sharing
    a factory is varied but reproducible.
    """

    @abc.abstractmethod
    def instantiate(self, rng: Random) -> BranchBehavior:
        """Create one site's behaviour."""

    @abc.abstractmethod
    def is_highly_biased(self, cutoff: float = 0.95) -> bool:
        """Whether sites from this factory count as highly biased.

        Used by calibration tests that check a workload's dynamic
        highly-biased fraction against the paper's Table 2.
        """


@dataclass(frozen=True, slots=True)
class BiasedFactory(BehaviorFactory):
    """Biased branches with per-site bias drawn in [lo, hi].

    ``taken_fraction`` controls what share of the sites are mostly-taken
    versus mostly-not-taken (real programs skew toward taken branches).
    ``burst_length`` selects the bursty Markov model
    (:class:`MarkovBiasedBehavior`); ``None`` selects independent
    Bernoulli draws (:class:`BiasedBehavior`), appropriate for genuinely
    data-dependent branches whose minority outcomes do not cluster.
    """

    lo: float
    hi: float
    taken_fraction: float = 0.6
    burst_length: float | None = None

    def __post_init__(self) -> None:
        if not 0.5 <= self.lo <= self.hi <= 1.0:
            raise ConfigurationError(
                f"bias band must satisfy 0.5 <= lo <= hi <= 1, got [{self.lo}, {self.hi}]"
            )
        if self.burst_length is not None and self.burst_length < 1.0:
            raise ConfigurationError(
                f"burst_length must be >= 1 or None, got {self.burst_length}"
            )

    def instantiate(self, rng: Random) -> BranchBehavior:
        bias = rng.uniform(self.lo, self.hi)
        if rng.random() >= self.taken_fraction:
            bias = 1.0 - bias
        if self.burst_length is None:
            return BiasedBehavior(bias)
        # Per-site burst length jitter keeps sites from sharing periods.
        burst = max(1.0, self.burst_length * rng.uniform(0.6, 1.5))
        return MarkovBiasedBehavior(bias, burst)

    def is_highly_biased(self, cutoff: float = 0.95) -> bool:
        midpoint = (self.lo + self.hi) / 2.0
        return midpoint > cutoff


@dataclass(frozen=True, slots=True)
class LoopFactory(BehaviorFactory):
    """Loop back edges with per-site mean trip count in [lo, hi]."""

    lo: int
    hi: int
    jitter_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 2 <= self.lo <= self.hi:
            raise ConfigurationError(
                f"trip band must satisfy 2 <= lo <= hi, got [{self.lo}, {self.hi}]"
            )

    def instantiate(self, rng: Random) -> BranchBehavior:
        trip = rng.randint(self.lo, self.hi)
        jitter = min(max(0, int(trip * self.jitter_fraction)), trip - 2)
        return LoopBehavior(trip, jitter)

    def is_highly_biased(self, cutoff: float = 0.95) -> bool:
        mean_trip = (self.lo + self.hi) / 2.0
        return (mean_trip - 1.0) / mean_trip > cutoff


@dataclass(frozen=True, slots=True)
class PatternFactory(BehaviorFactory):
    """Repeating patterns with per-site period in [lo, hi]."""

    lo: int = 2
    hi: int = 6

    def __post_init__(self) -> None:
        if not 2 <= self.lo <= self.hi:
            raise ConfigurationError(
                f"period band must satisfy 2 <= lo <= hi, got [{self.lo}, {self.hi}]"
            )

    def instantiate(self, rng: Random) -> BranchBehavior:
        period = rng.randint(self.lo, self.hi)
        # Draw random patterns until one is non-constant (constant
        # patterns are rejected by PatternBehavior).
        while True:
            pattern = tuple(rng.random() < 0.5 for _ in range(period))
            if any(pattern) and not all(pattern):
                return PatternBehavior(pattern)

    def is_highly_biased(self, cutoff: float = 0.95) -> bool:
        # A non-constant pattern of period <= 20 can never exceed 95% bias.
        return False


@dataclass(frozen=True, slots=True)
class CorrelatedFactory(BehaviorFactory):
    """History-correlated branches.

    Each site draws ``taps`` distinct history positions within the first
    ``depth`` bits; the outcome is the (possibly inverted, possibly noisy)
    parity of those positions.
    """

    depth: int = 8
    taps: int = 2
    noise_lo: float = 0.0
    noise_hi: float = 0.10

    def __post_init__(self) -> None:
        if not 1 <= self.taps <= self.depth:
            raise ConfigurationError(
                f"need 1 <= taps <= depth, got taps={self.taps} depth={self.depth}"
            )
        if not 0.0 <= self.noise_lo <= self.noise_hi <= 0.5:
            raise ConfigurationError(
                f"noise band must satisfy 0 <= lo <= hi <= 0.5, "
                f"got [{self.noise_lo}, {self.noise_hi}]"
            )

    def instantiate(self, rng: Random) -> BranchBehavior:
        positions = rng.sample(range(self.depth), self.taps)
        mask = 0
        for position in positions:
            mask |= 1 << position
        noise = rng.uniform(self.noise_lo, self.noise_hi)
        return CorrelatedBehavior(mask, noise=noise, invert=rng.random() < 0.5)

    def is_highly_biased(self, cutoff: float = 0.95) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class PhasedFactory(BehaviorFactory):
    """Phase-changing branches: high bias within a phase, direction flips
    between phases.

    ``phase_length`` executions per phase; each site alternates between a
    mostly-taken and a mostly-not-taken phase with within-phase bias drawn
    in ``[bias_lo, bias_hi]``.
    """

    phase_length: int = 4000
    bias_lo: float = 0.85
    bias_hi: float = 0.98

    def __post_init__(self) -> None:
        if self.phase_length <= 0:
            raise ConfigurationError(
                f"phase_length must be positive, got {self.phase_length}"
            )
        if not 0.5 <= self.bias_lo <= self.bias_hi <= 1.0:
            raise ConfigurationError(
                f"bias band must satisfy 0.5 <= lo <= hi <= 1, "
                f"got [{self.bias_lo}, {self.bias_hi}]"
            )

    def instantiate(self, rng: Random) -> BranchBehavior:
        bias = rng.uniform(self.bias_lo, self.bias_hi)
        # Jitter phase lengths so site phase changes are not synchronized.
        length_a = max(1, int(self.phase_length * rng.uniform(0.7, 1.3)))
        length_b = max(1, int(self.phase_length * rng.uniform(0.7, 1.3)))
        return PhasedBehavior(
            (Phase(length_a, bias), Phase(length_b, 1.0 - bias))
        )

    def is_highly_biased(self, cutoff: float = 0.95) -> bool:
        # Whole-run bias is near 50% because the direction flips.
        return False


def geometric_gap(mean: float, rng: Random) -> int:
    """Sample an instruction gap (branch included) with the given mean.

    Used by the workload executor to hit a target CBRs/KI: if a program
    executes one conditional branch every ``mean`` instructions, its
    branch density is ``1000 / mean`` CBRs/KI.  The gap is at least 1 (the
    branch itself).
    """
    if mean < 1.0:
        raise ConfigurationError(f"mean instructions per branch must be >= 1, got {mean}")
    if mean == 1.0:
        return 1
    u = rng.random()
    # Exponential with mean (mean - 1) for the non-branch instructions;
    # the + 0.5 makes the rounded value's expectation match the mean.
    return 1 + int(-(mean - 1.0) * math.log(1.0 - u) + 0.5)
