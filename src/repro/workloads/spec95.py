"""Calibrated workload specifications for the six SPECINT95 programs.

The paper evaluates go, gcc, perl, m88ksim, compress, and ijpeg.  Each
:class:`WorkloadSpec` here is calibrated against the paper's published
per-program statistics:

* **static branch count** -- Table 1's "#Conditional Branches (static)"
  column, reproduced exactly (scaled by ``REPRO_SITE_SCALE`` if the
  environment asks for cheaper runs);
* **CBRs/KI** -- Table 1's dynamic branch density per input;
* **behaviour mix** -- chosen so the *dynamic* fraction of highly biased
  (bias > 95%) branch executions approximates Table 2's first column
  (go 15.9%, compress 49.1%, ijpeg 51.2%, gcc 53.9%, perl 71.4%,
  m88ksim 85.5%), and so the residual population has the character the
  paper describes (go: weakly biased and correlated, hence hard for every
  predictor; ijpeg: loop-dominated pixel kernels; compress: noisy
  data-dependent branches; perl/gcc: correlated control flow);
* **drift** -- chosen so train-to-ref behaviour change matches Table 5's
  qualitative structure: high coverage except perl, a non-trivial tail of
  majority-direction reversals everywhere, and -- for perl and m88ksim --
  *frequently executed* branches whose bias changes widely, which is what
  makes naive cross-training blow up for exactly those two programs in
  Figure 13.

The absolute dynamic instruction counts of the paper (0.5--63 billion)
are not reproduced; trace lengths are an experiment parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping, Sequence

from repro.errors import ConfigurationError, WorkloadError
from repro.utils.env import env_float
from repro.workloads.behaviors import (
    BehaviorFactory,
    BiasedFactory,
    CorrelatedFactory,
    LoopFactory,
    PatternFactory,
    PhasedFactory,
)

__all__ = ["DriftSpec", "WorkloadSpec", "SPEC95_PROGRAMS", "get_spec", "site_scale"]


def site_scale() -> float:
    """Global scale factor for static site counts.

    ``REPRO_SITE_SCALE=0.25`` builds workloads with a quarter of the
    paper's static branches; useful for quick local iteration.  Defaults
    to 1.0 (paper-faithful static counts).
    """
    value = env_float("REPRO_SITE_SCALE", 1.0, error=WorkloadError)
    if value <= 0:
        raise WorkloadError(f"REPRO_SITE_SCALE must be positive, got {value}")
    return value


@dataclass(frozen=True, slots=True)
class DriftSpec:
    """Train-to-ref behaviour drift (Table 5 structure).

    Fractions are of static sites.  ``hot_drift`` additionally boosts the
    reverse/shift probability for sites in the hottest routines -- the
    perl/m88ksim failure mode of Section 5.1.
    """

    reverse_fraction: float = 0.02
    shift_fraction: float = 0.05
    jitter_fraction: float = 0.55
    hot_drift: bool = False
    hot_reverse_boost: float = 0.0
    hot_shift_boost: float = 0.0

    def __post_init__(self) -> None:
        total = self.reverse_fraction + self.shift_fraction + self.jitter_fraction
        if total > 1.0 + 1e-9:
            raise ConfigurationError(
                f"drift fractions sum to {total}, must be <= 1"
            )
        for name in ("reverse_fraction", "shift_fraction", "jitter_fraction",
                     "hot_reverse_boost", "hot_shift_boost"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Full parameterization of one synthetic SPECINT95 stand-in."""

    name: str
    static_branches: int
    """Paper Table 1 static conditional-branch count (before scaling)."""
    static_instructions: int
    """Paper Table 1 static instruction count (reported, not simulated)."""
    cbrs_per_ki: Mapping[str, float]
    """Dynamic branch density per input, Table 1."""
    mix: Sequence[tuple[BehaviorFactory, float]]
    """Behaviour factories with site fractions summing to 1."""
    drift: DriftSpec = field(default_factory=DriftSpec)
    train_coverage: float = 0.98
    """Fraction of (cold) routines reachable by the train input."""
    routine_size_lo: int = 4
    routine_size_hi: int = 18
    zipf_exponent: float = 1.10
    paper_highly_biased: float | None = None
    """Table 2's dynamic highly-biased fraction, for calibration checks."""

    def __post_init__(self) -> None:
        if self.static_branches <= 0:
            raise ConfigurationError(f"{self.name}: static_branches must be positive")
        for input_name in ("train", "ref"):
            if input_name not in self.cbrs_per_ki:
                raise ConfigurationError(
                    f"{self.name}: cbrs_per_ki missing input {input_name!r}"
                )
            if not 0 < self.cbrs_per_ki[input_name] <= 1000:
                raise ConfigurationError(
                    f"{self.name}: CBRs/KI must be in (0, 1000], got "
                    f"{self.cbrs_per_ki[input_name]}"
                )
        if not 0 < self.train_coverage <= 1.0:
            raise ConfigurationError(
                f"{self.name}: train_coverage must be in (0, 1], got "
                f"{self.train_coverage}"
            )
        if not 2 <= self.routine_size_lo <= self.routine_size_hi:
            raise ConfigurationError(
                f"{self.name}: routine sizes must satisfy 2 <= lo <= hi"
            )

    def site_count(self, scale: float | None = None) -> int:
        """Static branch count after applying a site scale.

        ``scale=None`` uses the global ``REPRO_SITE_SCALE`` environment
        value (default 1.0, the paper's static counts).
        """
        if scale is None:
            scale = site_scale()
        elif scale <= 0:
            raise ConfigurationError(f"site scale must be positive, got {scale}")
        return max(16, int(self.static_branches * scale))

    def highly_biased_mix_fraction(self, cutoff: float = 0.95) -> float:
        """Fraction of sites drawn from highly biased factories."""
        return sum(
            fraction
            for factory, fraction in self.mix
            if factory.is_highly_biased(cutoff)
        )


def _mapping(**kwargs: float) -> Mapping[str, float]:
    return MappingProxyType(dict(**kwargs))


# Shared factory instances.  The high-bias band [0.97, 0.999] keeps every
# site from these factories above the 95% cutoff used by Table 2 and by
# the Static_95 selection scheme.
_HIGH_BIAS = BiasedFactory(lo=0.97, hi=0.999, burst_length=24.0)
_MEDIUM_BIAS = BiasedFactory(lo=0.75, hi=0.90, burst_length=16.0)
_WEAK_BIAS = BiasedFactory(lo=0.52, hi=0.72, burst_length=12.0)
_NOISY = BiasedFactory(lo=0.5, hi=0.62)
_LONG_LOOP = LoopFactory(lo=24, hi=96)       # bias > 95%: counts as highly biased
_SHORT_LOOP = LoopFactory(lo=3, hi=9)        # bias 66-88%: not highly biased
_PATTERN = PatternFactory(lo=2, hi=4)
_CORRELATED = CorrelatedFactory(depth=8, taps=2, noise_lo=0.0, noise_hi=0.04)
_CORRELATED_DEEP = CorrelatedFactory(depth=11, taps=3, noise_lo=0.01, noise_hi=0.06)
_PHASED = PhasedFactory(phase_length=4000, bias_lo=0.85, bias_hi=0.98)


SPEC95_PROGRAMS: dict[str, WorkloadSpec] = {
    # go: very few highly biased branches (15.9%), lots of weakly biased
    # and correlated decision logic; the hardest program for every
    # predictor in Table 2 (75.7%-83.1% accuracy).
    "go": WorkloadSpec(
        name="go",
        static_branches=7777,
        static_instructions=76_000,
        cbrs_per_ki=_mapping(train=113.0, ref=117.0),
        mix=(
            (_HIGH_BIAS, 0.19),
            (_MEDIUM_BIAS, 0.06),
            (_WEAK_BIAS, 0.10),
            (_NOISY, 0.09),
            (_CORRELATED, 0.26),
            (_CORRELATED_DEEP, 0.18),
            (_SHORT_LOOP, 0.08),
            (_PATTERN, 0.04),
        ),
        drift=DriftSpec(reverse_fraction=0.03, shift_fraction=0.08,
                        jitter_fraction=0.55),
        train_coverage=0.97,
        paper_highly_biased=0.159,
    ),
    # gcc: largest static branch count by far (38852), highest branch
    # density (155-156 CBRs/KI), a majority of highly biased branches but
    # a deep tail of correlated compiler control flow.  The paper's
    # aliasing poster child: every predictor keeps improving with size.
    "gcc": WorkloadSpec(
        name="gcc",
        static_branches=38852,
        static_instructions=314_000,
        cbrs_per_ki=_mapping(train=155.0, ref=156.0),
        mix=(
            (_HIGH_BIAS, 0.60),
            (_MEDIUM_BIAS, 0.07),
            (_WEAK_BIAS, 0.02),
            (_CORRELATED, 0.16),
            (_CORRELATED_DEEP, 0.08),
            (_SHORT_LOOP, 0.04),
            (_PATTERN, 0.03),
        ),
        drift=DriftSpec(reverse_fraction=0.012, shift_fraction=0.04,
                        jitter_fraction=0.62),
        train_coverage=0.98,
        zipf_exponent=1.12,   # flatter than the small codes: wide hot set
        paper_highly_biased=0.539,
    ),
    # perl: interpreter dispatch -- highly biased type checks (71.4%) plus
    # correlated opcode sequences; the train input covers much less of the
    # program than ref, and some hot branches flip behaviour across
    # inputs (the Figure 13 cross-training failure).
    "perl": WorkloadSpec(
        name="perl",
        static_branches=9569,
        static_instructions=95_000,
        cbrs_per_ki=_mapping(train=112.0, ref=122.0),
        mix=(
            (_HIGH_BIAS, 0.78),
            (_MEDIUM_BIAS, 0.02),
            (_CORRELATED, 0.12),
            (_PATTERN, 0.02),
            (_SHORT_LOOP, 0.03),
            (_PHASED, 0.03),
        ),
        drift=DriftSpec(reverse_fraction=0.03, shift_fraction=0.03,
                        jitter_fraction=0.50, hot_drift=True,
                        hot_reverse_boost=0.15, hot_shift_boost=0.02),
        train_coverage=0.70,
        paper_highly_biased=0.714,
    ),
    # m88ksim: CPU simulator with overwhelmingly biased branches (85.5%);
    # the easiest program (96.6%-98.9% accuracy).  Like perl, some hot
    # branches change behaviour between inputs.
    "m88ksim": WorkloadSpec(
        name="m88ksim",
        static_branches=5365,
        static_instructions=57_000,
        cbrs_per_ki=_mapping(train=108.0, ref=115.0),
        mix=(
            (_HIGH_BIAS, 0.805),
            (_LONG_LOOP, 0.05),
            (_MEDIUM_BIAS, 0.04),
            (_CORRELATED, 0.07),
            (_PATTERN, 0.015),
            (_PHASED, 0.02),
        ),
        drift=DriftSpec(reverse_fraction=0.02, shift_fraction=0.03,
                        jitter_fraction=0.60, hot_drift=True,
                        hot_reverse_boost=0.12, hot_shift_boost=0.02),
        train_coverage=0.97,
        paper_highly_biased=0.855,
    ),
    # compress: tiny program (2238 static branches) whose residual
    # branches are noisy data-dependent comparisons on input bytes --
    # biased enough to be half highly-biased (49.1%) yet with mediocre
    # accuracy for every predictor (the Table 2 outlier).
    "compress": WorkloadSpec(
        name="compress",
        static_branches=2238,
        static_instructions=20_000,
        cbrs_per_ki=_mapping(train=108.0, ref=123.0),
        mix=(
            (_HIGH_BIAS, 0.67),
            (_NOISY, 0.03),
            (_WEAK_BIAS, 0.06),
            (_MEDIUM_BIAS, 0.02),
            (_CORRELATED, 0.12),
            (_CORRELATED_DEEP, 0.05),
            (_SHORT_LOOP, 0.03),
            (_PATTERN, 0.02),
        ),
        drift=DriftSpec(reverse_fraction=0.02, shift_fraction=0.05,
                        jitter_fraction=0.60),
        train_coverage=0.98,
        zipf_exponent=1.25,   # small hot set: compress lives in one loop nest
        paper_highly_biased=0.491,
    ),
    # ijpeg: pixel kernels -- loop-dominated (51.2% highly biased counting
    # long loops), the lowest branch density in the suite (61-69 CBRs/KI),
    # and by the paper's analysis the least aliasing-limited program.
    "ijpeg": WorkloadSpec(
        name="ijpeg",
        static_branches=5290,
        static_instructions=62_000,
        cbrs_per_ki=_mapping(train=69.0, ref=61.0),
        mix=(
            (_HIGH_BIAS, 0.32),
            (_LONG_LOOP, 0.02),
            (_SHORT_LOOP, 0.24),
            (_MEDIUM_BIAS, 0.17),
            (_PATTERN, 0.16),
            (_NOISY, 0.04),
            (_CORRELATED, 0.05),
        ),
        drift=DriftSpec(reverse_fraction=0.015, shift_fraction=0.04,
                        jitter_fraction=0.65),
        train_coverage=0.98,
        zipf_exponent=1.12,
        paper_highly_biased=0.512,
    ),
}

PROGRAM_ORDER = ("go", "gcc", "perl", "m88ksim", "compress", "ijpeg")
"""Canonical ordering used by the paper's tables."""


def get_spec(name: str) -> WorkloadSpec:
    """Look up a workload spec by program name.

    >>> get_spec("gcc").static_branches
    38852
    """
    try:
        return SPEC95_PROGRAMS[name]
    except KeyError:
        known = ", ".join(sorted(SPEC95_PROGRAMS))
        raise WorkloadError(f"unknown program {name!r}; known programs: {known}") from None
