"""Synthetic workloads standing in for the paper's SPECINT95 binaries.

The paper drives its predictors with Atom-instrumented Alpha binaries of
six SPECINT95 programs.  Those binaries (and their billion-instruction
runs) are not reproducible here, so this subpackage generates *synthetic
branch traces* whose statistical structure is calibrated to the paper's
published per-program numbers:

* Table 1 -- static conditional-branch counts and dynamic branch density
  (CBRs/KI) for the ``train`` and ``ref`` inputs;
* Table 2 -- the fraction of dynamic branch executions coming from highly
  biased (bias > 95%) branches;
* Table 5 -- how branch behaviour drifts between the ``train`` and ``ref``
  inputs (majority-direction reversals, small and large bias changes).

The pieces:

* :mod:`repro.workloads.behaviors` -- per-branch outcome models (biased,
  loop, pattern, history-correlated, noisy, phased);
* :mod:`repro.workloads.generator` -- assembles a static
  :class:`~repro.arch.program.Program`, behaviour instances, and a
  routine-based execution engine that emits branch traces;
* :mod:`repro.workloads.spec95` -- the six calibrated workload specs;
* :mod:`repro.workloads.trace` -- the trace data structure and file I/O;
* :mod:`repro.workloads.stats` -- trace characterization used by Table 1
  and Table 2.
"""

from repro.workloads.generator import SyntheticWorkload, build_workload
from repro.workloads.spec95 import (
    SPEC95_PROGRAMS,
    WorkloadSpec,
    get_spec,
)
from repro.workloads.trace import BranchTrace

__all__ = [
    "SyntheticWorkload",
    "build_workload",
    "BranchTrace",
    "WorkloadSpec",
    "SPEC95_PROGRAMS",
    "get_spec",
]
