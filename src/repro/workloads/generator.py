"""Synthetic program construction and trace generation.

A :class:`SyntheticWorkload` couples a static
:class:`~repro.arch.program.Program` with per-site behaviour plans and a
routine-based execution engine.  The model:

* Sites are partitioned into **routines** (short fixed sequences of
  branch sites, standing in for the branch footprint of a procedure),
  and routines compose into **paths** (call-chain stand-ins).  Executing
  the workload repeatedly picks a path from a Zipf-weighted distribution
  -- real programs spend most of their time in a small hot set -- runs
  it end to end, and tends to re-run the same path several times in a
  row (temporal locality).  Loop-behaviour sites re-execute (with
  optional body sites) while taken.  Together these give branches the
  repeatable global-history contexts that history predictors exploit on
  real code.
* Each site's outcome comes from its behaviour model
  (:mod:`repro.workloads.behaviors`), which may read the running global
  outcome history (correlated branches).
* The instruction gap between branches is sampled to hit the workload's
  target CBRs/KI (branch density, Table 1 of the paper).

``train`` versus ``ref`` inputs share the same static program and routine
structure; they differ in branch density, execution seed, optional
routine coverage (the ``train`` input may never reach some routines), and
per-site **behaviour drift** (Section 5.1 / Table 5 of the paper).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from random import Random
from typing import Sequence

from repro.arch.program import Program
from repro.errors import ConfigurationError, WorkloadError
from repro.utils.hotpath import hot_path
from repro.utils.rng import derive_rng, derive_seed, rng_from_seed
from repro.workloads.behaviors import (
    BehaviorFactory,
    BiasedBehavior,
    BranchBehavior,
    CorrelatedBehavior,
    LoopBehavior,
    MarkovBiasedBehavior,
    PatternBehavior,
    PhasedBehavior,
)
from repro.workloads.trace import BranchTrace

__all__ = [
    "DriftKind",
    "SitePlan",
    "Routine",
    "SyntheticWorkload",
    "build_workload",
]

_HISTORY_MASK = (1 << 64) - 1

TRAIN = "train"
REF = "ref"
VALID_INPUTS = (TRAIN, REF)


# ---------------------------------------------------------------------------
# Behaviour drift (train -> ref input change)
# ---------------------------------------------------------------------------


class DriftKind:
    """How one site's behaviour changes from the train to the ref input.

    String constants rather than an Enum: they appear in hot per-site
    dispatch and in workload spec literals.
    """

    NONE = "none"
    JITTER = "jitter"    # bias change < 5%
    SHIFT = "shift"      # bias change in roughly [20%, 45%], same majority
    REVERSE = "reverse"  # majority direction flips (bias change > 50%)

    ALL = (NONE, JITTER, SHIFT, REVERSE)


def apply_drift(behavior: BranchBehavior, kind: str, rng: Random) -> BranchBehavior:
    """Return the ref-input variant of a train-input behaviour.

    The transformation is type-aware: Bernoulli branches move their taken
    probability, loops change trip counts, patterns/correlations invert.
    Unknown combinations fall back to leaving the behaviour unchanged,
    which only weakens drift (never corrupts a trace).
    """
    if kind == DriftKind.NONE:
        return behavior

    if isinstance(behavior, (BiasedBehavior, MarkovBiasedBehavior)):
        p = behavior.p_taken
        if kind == DriftKind.JITTER:
            delta = rng.uniform(-0.04, 0.04)
            new_p = min(1.0, max(0.0, p + delta))
        elif kind == DriftKind.SHIFT:
            magnitude = rng.uniform(0.20, 0.45)
            if p >= 0.5:
                new_p = max(0.5, p - magnitude)
            else:
                new_p = min(0.5, p + magnitude)
        else:  # REVERSE
            new_p = 1.0 - p
        if isinstance(behavior, MarkovBiasedBehavior):
            return MarkovBiasedBehavior(new_p, behavior.burst_length)
        return BiasedBehavior(new_p)

    if isinstance(behavior, LoopBehavior):
        if kind == DriftKind.JITTER:
            trip = max(2, behavior.trip + rng.choice((-1, 1)))
            return LoopBehavior(trip, min(behavior.jitter, trip - 2))
        if kind == DriftKind.SHIFT:
            trip = max(2, behavior.trip // 4 + 1)
            return LoopBehavior(trip, min(behavior.jitter, trip - 2))
        if kind == DriftKind.REVERSE:
            # A loop that stops looping: model as a mostly-not-taken branch.
            return BiasedBehavior(1.0 - behavior.expected_bias())

    if isinstance(behavior, PatternBehavior):
        if kind in (DriftKind.SHIFT, DriftKind.REVERSE):
            return PatternBehavior(tuple(not b for b in behavior.pattern))
        return behavior

    if isinstance(behavior, CorrelatedBehavior):
        if kind in (DriftKind.SHIFT, DriftKind.REVERSE):
            return CorrelatedBehavior(
                behavior.history_mask, noise=behavior.noise, invert=not behavior.invert
            )
        return behavior

    if isinstance(behavior, PhasedBehavior):
        return behavior

    return behavior


@dataclass(frozen=True, slots=True)
class SitePlan:
    """Recipe for one site's behaviour on both inputs.

    ``factory`` plus ``behavior_seed`` determine the train behaviour;
    ``drift_kind`` plus ``drift_seed`` determine how it mutates for the
    ref input.  Keeping the plan declarative lets every :meth:`execute`
    call build fresh (stateless-at-start) behaviour instances.
    """

    factory: BehaviorFactory
    behavior_seed: int
    drift_kind: str
    drift_seed: int

    def build(self, input_name: str) -> BranchBehavior:
        """Instantiate this site's behaviour for the given input."""
        behavior = self.factory.instantiate(rng_from_seed(self.behavior_seed))
        if input_name == REF:
            behavior = apply_drift(
                behavior, self.drift_kind, rng_from_seed(self.drift_seed)
            )
        return behavior


@dataclass(frozen=True, slots=True)
class Routine:
    """A fixed sequence of branch-site executions.

    ``items`` entries are either ``(PLAIN, site_index)`` or
    ``(LOOP, site_index, body)`` where ``body`` is a tuple of site indices
    re-executed on every taken iteration of the loop branch.
    """

    PLAIN = 0
    LOOP = 1

    items: tuple[tuple, ...]

    def site_indices(self) -> list[int]:
        """All sites mentioned by this routine (loop bodies included)."""
        sites: list[int] = []
        for item in self.items:
            sites.append(item[1])
            if item[0] == Routine.LOOP:
                sites.extend(item[2])
        return sites


class SyntheticWorkload:
    """A runnable synthetic program for one benchmark and input.

    Instances are cheap to keep around; :meth:`execute` builds fresh
    behaviour state per run so repeated executions with the same run seed
    are bit-identical.
    """

    def __init__(
        self,
        name: str,
        input_name: str,
        program: Program,
        site_plans: Sequence[SitePlan],
        routines: Sequence[Routine],
        paths: Sequence[tuple[int, ...]],
        path_weights: Sequence[float],
        mean_instructions_per_branch: float,
        root_seed: int,
        path_repeat_mean: float = 5.0,
    ):
        if input_name not in VALID_INPUTS:
            raise ConfigurationError(
                f"input_name must be one of {VALID_INPUTS}, got {input_name!r}"
            )
        if len(site_plans) != len(program):
            raise ConfigurationError(
                f"{len(site_plans)} site plans for {len(program)} sites"
            )
        if len(paths) != len(path_weights):
            raise ConfigurationError("paths and weights must align")
        if mean_instructions_per_branch < 1.0:
            raise ConfigurationError(
                "mean instructions per branch must be >= 1, got "
                f"{mean_instructions_per_branch}"
            )
        self.name = name
        self.input_name = input_name
        self.program = program
        self.site_plans = list(site_plans)
        self.routines = list(routines)
        self.paths = [tuple(path) for path in paths]
        self.mean_instructions_per_branch = mean_instructions_per_branch
        self.root_seed = root_seed
        if path_repeat_mean < 1.0:
            raise ConfigurationError(
                f"path_repeat_mean must be >= 1, got {path_repeat_mean}"
            )
        self.path_repeat_mean = path_repeat_mean

        # Flatten each active path's routines into one item tuple so the
        # execution loop runs straight through a path with no per-routine
        # dispatch.
        active = [(path, w) for path, w in zip(self.paths, path_weights) if w > 0.0]
        if not active:
            raise ConfigurationError("workload has no path with positive weight")
        self._active_paths = [
            tuple(item for routine_id in path for item in routines[routine_id].items)
            for path, _ in active
        ]
        cumulative: list[float] = []
        total = 0.0
        for _, weight in active:
            total += weight
            cumulative.append(total)
        self._cumulative_weights = cumulative
        self._total_weight = total

    def build_behaviors(self) -> list[BranchBehavior]:
        """Instantiate fresh behaviour objects for every site."""
        return [plan.build(self.input_name) for plan in self.site_plans]

    @hot_path
    def execute(self, n_branches: int, run_seed: int = 0) -> BranchTrace:
        """Run the workload until ``n_branches`` branches have executed.

        The returned trace is fully determined by the workload identity
        and ``run_seed``.
        """
        if n_branches <= 0:
            raise WorkloadError(f"n_branches must be positive, got {n_branches}")
        rng = derive_rng(self.root_seed, self.name, self.input_name, "exec", run_seed)
        rand = rng.random
        log = math.log
        behaviors = self.build_behaviors()
        addresses = self.program.addresses

        site_indices: list[int] = []
        out_addresses: list[int] = []
        outcomes: list[bool] = []
        gaps: list[int] = []
        append_site = site_indices.append
        append_addr = out_addresses.append
        append_outcome = outcomes.append
        append_gap = gaps.append

        mean_extra = self.mean_instructions_per_branch - 1.0
        history = 0
        count = 0
        cumulative = self._cumulative_weights
        total_weight = self._total_weight
        paths = self._active_paths
        plain = Routine.PLAIN

        # Temporal locality: a picked path repeats a geometric number of
        # times (real programs re-run the same hot call chain in bursts),
        # which keeps path-entry history contexts repeatable.
        repeat_continue = 1.0 - 1.0 / self.path_repeat_mean
        repeats_left = 0
        items: tuple = ()
        while count < n_branches:
            if repeats_left > 0 and rand() < repeat_continue:
                repeats_left -= 1
            else:
                items = paths[bisect_right(cumulative, rand() * total_weight)]
                repeats_left = 12  # cap on consecutive repeats
            for item in items:
                site = item[1]
                if item[0] == plain:
                    taken = behaviors[site].outcome(history, rng)
                    history = ((history << 1) | taken) & _HISTORY_MASK
                    append_site(site)
                    append_addr(addresses[site])
                    append_outcome(taken)
                    if mean_extra > 0.0:
                        append_gap(1 + int(-mean_extra * log(1.0 - rand()) + 0.5))
                    else:
                        append_gap(1)
                    count += 1
                    if count >= n_branches:
                        break
                else:
                    body = item[2]
                    while True:
                        taken = behaviors[site].outcome(history, rng)
                        history = ((history << 1) | taken) & _HISTORY_MASK
                        append_site(site)
                        append_addr(addresses[site])
                        append_outcome(taken)
                        if mean_extra > 0.0:
                            append_gap(1 + int(-mean_extra * log(1.0 - rand()) + 0.5))
                        else:
                            append_gap(1)
                        count += 1
                        if count >= n_branches or not taken:
                            break
                        for body_site in body:
                            b_taken = behaviors[body_site].outcome(history, rng)
                            history = ((history << 1) | b_taken) & _HISTORY_MASK
                            append_site(body_site)
                            append_addr(addresses[body_site])
                            append_outcome(b_taken)
                            if mean_extra > 0.0:
                                append_gap(1 + int(-mean_extra * log(1.0 - rand()) + 0.5))
                            else:
                                append_gap(1)
                            count += 1
                            if count >= n_branches:
                                break
                        if count >= n_branches:
                            break
                    if count >= n_branches:
                        break

        return BranchTrace(
            program_name=self.name,
            input_name=self.input_name,
            site_indices=site_indices,
            addresses=out_addresses,
            outcomes=outcomes,
            gaps=gaps,
        )


# ---------------------------------------------------------------------------
# Workload construction from a spec
# ---------------------------------------------------------------------------


def _build_routines(
    n_sites: int,
    size_lo: int,
    size_hi: int,
    loop_sites: set[int],
    rng: Random,
) -> list[Routine]:
    """Partition sites into routines, wrapping loop sites as loop items."""
    routines: list[Routine] = []
    start = 0
    while start < n_sites:
        size = min(rng.randint(size_lo, size_hi), n_sites - start)
        members = list(range(start, start + size))
        items: list[tuple] = []
        i = 0
        while i < len(members):
            site = members[i]
            if site in loop_sites:
                # Give the loop up to two following non-loop sites as body.
                body: list[int] = []
                j = i + 1
                while j < len(members) and len(body) < 2 and members[j] not in loop_sites:
                    body.append(members[j])
                    j += 1
                items.append((Routine.LOOP, site, tuple(body)))
                i = j
            else:
                items.append((Routine.PLAIN, site))
                i += 1
        routines.append(Routine(items=tuple(items)))
        start += size
    return routines


def _zipf_weights(n: int, exponent: float, rng: Random) -> list[float]:
    """Zipf-like weights assigned in random rank order."""
    ranks = list(range(1, n + 1))
    rng.shuffle(ranks)
    return [1.0 / (rank ** exponent) for rank in ranks]


def _build_paths(
    n_routines: int,
    rng: Random,
    length_lo: int = 3,
    length_hi: int = 8,
    shared_extras: int = 2,
) -> list[tuple[int, ...]]:
    """Compose routines into execution paths (call-chain stand-ins).

    Real control flow is repetitive: the same chain of procedures runs
    again and again, which is what gives global-history predictors their
    repeatable contexts.  Each path is a fixed sequence of routines; the
    executor runs one whole path per pick, so a branch's history is
    dominated by the (deterministic) branches that precede it on its own
    path rather than by unrelated routines.

    Every routine appears in exactly one *base* path (coverage), and each
    path additionally ends with a few globally shared routines drawn from
    a small pool -- the "utility procedures called from everywhere" that
    give the same branch multiple calling contexts.
    """
    order = list(range(n_routines))
    rng.shuffle(order)
    # A small pool of shared routines modelling common utility code.
    shared_pool = order[: max(1, n_routines // 50)]
    paths: list[tuple[int, ...]] = []
    start = 0
    while start < n_routines:
        length = min(rng.randint(length_lo, length_hi), n_routines - start)
        members = order[start : start + length]
        for _ in range(shared_extras):
            members.append(rng.choice(shared_pool))
        paths.append(tuple(members))
        start += length
    return paths


def build_workload(
    spec,
    input_name: str,
    root_seed: int = 0,
    site_scale: float | None = None,
) -> SyntheticWorkload:
    """Construct the workload for one benchmark spec and input.

    The static program, routine structure, path weights, per-site
    behaviour factories and drift kinds depend only on ``(spec,
    root_seed, site_scale)``; the input selects branch density, behaviour
    drift application, and (for ``train``) path coverage.  See
    :class:`repro.workloads.spec95.WorkloadSpec` for the spec fields.

    ``site_scale`` overrides the global ``REPRO_SITE_SCALE`` environment
    scaling of static branch counts; experiments pass an explicit scale
    so their results do not depend on ambient environment state.
    """
    if input_name not in VALID_INPUTS:
        raise ConfigurationError(
            f"input_name must be one of {VALID_INPUTS}, got {input_name!r}"
        )
    n_sites = spec.site_count(site_scale)
    program = Program.synthesize(
        spec.name, n_sites, seed=_stable_seed(root_seed, spec.name, "program")
    )

    mix_rng = derive_rng(root_seed, spec.name, "mix")
    factories: list[BehaviorFactory] = []
    cumulative: list[float] = []
    total = 0.0
    for factory, fraction in spec.mix:
        total += fraction
        factories.append(factory)
        cumulative.append(total)
    if not math.isclose(total, 1.0, abs_tol=1e-6):
        raise ConfigurationError(
            f"behaviour mix fractions for {spec.name!r} sum to {total}, expected 1"
        )

    site_factories = [
        factories[min(bisect_right(cumulative, mix_rng.random() * total), len(factories) - 1)]
        for _ in range(n_sites)
    ]

    loop_sites = {
        i
        for i, factory in enumerate(site_factories)
        if type(factory).__name__ == "LoopFactory"
    }

    routine_rng = derive_rng(root_seed, spec.name, "routines")
    routines = _build_routines(
        n_sites, spec.routine_size_lo, spec.routine_size_hi, loop_sites, routine_rng
    )
    paths = _build_paths(len(routines), routine_rng)
    weights = _zipf_weights(len(paths), spec.zipf_exponent, routine_rng)

    # Hot paths: top fraction by weight, used to steer drift for
    # programs whose frequently executed branches change behaviour.
    order = sorted(range(len(paths)), key=lambda i: weights[i], reverse=True)
    hot_path_ids = set(order[: max(1, len(order) // 20)])
    hot_sites: set[int] = set()
    for path_id in hot_path_ids:
        for routine_id in paths[path_id]:
            hot_sites.update(routines[routine_id].site_indices())

    drift_rng = derive_rng(root_seed, spec.name, "drift")
    site_plans: list[SitePlan] = []
    drift = spec.drift
    for i, factory in enumerate(site_factories):
        reverse_p = drift.reverse_fraction
        shift_p = drift.shift_fraction
        if drift.hot_drift and i in hot_sites:
            reverse_p += drift.hot_reverse_boost
            shift_p += drift.hot_shift_boost
        roll = drift_rng.random()
        if roll < reverse_p:
            kind = DriftKind.REVERSE
        elif roll < reverse_p + shift_p:
            kind = DriftKind.SHIFT
        elif roll < reverse_p + shift_p + drift.jitter_fraction:
            kind = DriftKind.JITTER
        else:
            kind = DriftKind.NONE
        site_plans.append(
            SitePlan(
                factory=factory,
                behavior_seed=_stable_seed(root_seed, spec.name, "beh", i),
                drift_kind=kind,
                drift_seed=_stable_seed(root_seed, spec.name, "drift", i),
            )
        )

    path_weights = list(weights)
    if input_name == TRAIN and spec.train_coverage < 1.0:
        # The train input never reaches some (mostly cold) paths: zero
        # out the weight of a random subset, excluding the hot set so the
        # train run still exercises the program's core.
        coverage_rng = derive_rng(root_seed, spec.name, "coverage")
        for i in range(len(path_weights)):
            if i in hot_path_ids:
                continue
            if coverage_rng.random() > spec.train_coverage:
                path_weights[i] = 0.0

    mean_gap = 1000.0 / spec.cbrs_per_ki[input_name]
    return SyntheticWorkload(
        name=spec.name,
        input_name=input_name,
        program=program,
        site_plans=site_plans,
        routines=routines,
        paths=paths,
        path_weights=path_weights,
        mean_instructions_per_branch=mean_gap,
        root_seed=root_seed,
    )


def _stable_seed(root: int, *names: object) -> int:
    """Alias kept short because seed derivation appears in hot spec loops."""
    return derive_seed(root, *names)
