"""Branch traces: the dynamic record of a workload execution.

A :class:`BranchTrace` is the column-oriented record of every conditional
branch executed by a synthetic workload, in order:

* ``site_indices[i]`` -- which static site executed (dense site id);
* ``addresses[i]``    -- that site's instruction address (denormalized
  from the program for fast simulation loops);
* ``outcomes[i]``     -- the resolved direction (True = taken);
* ``gaps[i]``         -- instructions retired by this record *including*
  the branch itself, so ``sum(gaps)`` is the total dynamic instruction
  count and MISPs/KI has a denominator.

Traces are plain Python lists rather than numpy arrays because the
predictor simulation loop reads them element-by-element; list indexing is
several times faster than numpy scalar access in CPython.  Trace files use
a compact, versioned text format so profiles and experiments can be
re-run without regenerating workloads.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterator, TextIO

from repro.errors import TraceFormatError
from repro.utils.hotpath import hot_path

__all__ = ["BranchRecord", "BranchTrace"]

_FORMAT_HEADER = "repro-trace v1"


@dataclass(frozen=True, slots=True)
class BranchRecord:
    """One executed conditional branch (row view of a trace)."""

    site_index: int
    address: int
    taken: bool
    gap: int


@dataclass(slots=True)
class BranchTrace:
    """Column-oriented branch trace.

    Invariants (enforced by :meth:`validate`):
    the four columns have equal length, gaps are >= 1, and addresses are
    4-byte aligned.
    """

    program_name: str
    input_name: str
    site_indices: list[int] = field(default_factory=list)
    addresses: list[int] = field(default_factory=list)
    outcomes: list[bool] = field(default_factory=list)
    gaps: list[int] = field(default_factory=list)
    _arrays: tuple | None = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.site_indices)

    def __iter__(self) -> Iterator[BranchRecord]:
        for i in range(len(self.site_indices)):
            yield BranchRecord(
                site_index=self.site_indices[i],
                address=self.addresses[i],
                taken=self.outcomes[i],
                gap=self.gaps[i],
            )

    @property
    def instruction_count(self) -> int:
        """Total dynamic instructions (branches + non-branches)."""
        return sum(self.gaps)

    @property
    def branch_count(self) -> int:
        """Total dynamic conditional branches."""
        return len(self.site_indices)

    def cbrs_per_ki(self) -> float:
        """Dynamic conditional branches per thousand instructions."""
        instructions = self.instruction_count
        if instructions == 0:
            return 0.0
        return 1000.0 * self.branch_count / instructions

    def taken_rate(self) -> float:
        """Fraction of dynamic branches that were taken."""
        if not self.outcomes:
            return 0.0
        return sum(self.outcomes) / len(self.outcomes)

    def sites_executed(self) -> set[int]:
        """Set of static site indices that executed at least once."""
        return set(self.site_indices)

    @hot_path
    def validate(self) -> None:
        """Check structural invariants; raise :class:`TraceFormatError`."""
        n = len(self.site_indices)
        if not (len(self.addresses) == len(self.outcomes) == len(self.gaps) == n):
            raise TraceFormatError(
                f"ragged trace columns: sites={len(self.site_indices)} "
                f"addresses={len(self.addresses)} outcomes={len(self.outcomes)} "
                f"gaps={len(self.gaps)}"
            )
        for i, gap in enumerate(self.gaps):
            if gap < 1:
                raise TraceFormatError(f"record {i} has gap {gap} < 1")
        for i, address in enumerate(self.addresses):
            # repro: allow[BIT001] -- alignment validation, not table indexing
            if address % 4 != 0:
                raise TraceFormatError(
                    f"record {i} has unaligned address {address:#x}"
                )

    def arrays(self) -> tuple:
        """The ``(addresses, outcomes)`` columns as numpy arrays, memoized.

        Fast simulation kernels (:mod:`repro.kernels`) consume whole
        columns at once; memoizing the conversion means its cost is
        paid once per trace, not once per simulated cell.  Addresses
        convert to ``int64`` (they are small, aligned instruction
        addresses), outcomes to numpy bools.  Callers must treat the
        returned arrays as read-only views of the trace.
        """
        import numpy

        if self._arrays is None or self._arrays[0].shape[0] != len(self.addresses):
            self._arrays = (
                numpy.asarray(self.addresses, dtype=numpy.int64),
                numpy.asarray(self.outcomes, dtype=numpy.bool_),
            )
        return self._arrays

    def slice(self, start: int, stop: int) -> "BranchTrace":
        """Return a sub-trace covering records ``[start, stop)``.

        Used by phase-split experiments (e.g. warming up a predictor on a
        prefix, measuring on the rest).
        """
        return BranchTrace(
            program_name=self.program_name,
            input_name=self.input_name,
            site_indices=self.site_indices[start:stop],
            addresses=self.addresses[start:stop],
            outcomes=self.outcomes[start:stop],
            gaps=self.gaps[start:stop],
        )

    # -- file I/O ----------------------------------------------------------

    @hot_path
    def dump(self, stream: TextIO) -> None:
        """Write the trace to a text stream.

        Format: a header line, a metadata line, then one line per record
        with ``site_index address taken gap`` (address in hex, taken as
        0/1).
        """
        stream.write(_FORMAT_HEADER + "\n")
        stream.write(f"{self.program_name} {self.input_name} {len(self)}\n")
        write = stream.write
        for i in range(len(self.site_indices)):
            write(
                f"{self.site_indices[i]} {self.addresses[i]:x} "
                f"{1 if self.outcomes[i] else 0} {self.gaps[i]}\n"
            )

    def dumps(self) -> str:
        """Serialize the trace to a string."""
        buffer = io.StringIO()
        self.dump(buffer)
        return buffer.getvalue()

    def save(self, path: str) -> None:
        """Write the trace to a file."""
        with open(path, "w", encoding="ascii") as stream:
            self.dump(stream)

    @classmethod
    @hot_path
    def load_stream(cls, stream: TextIO) -> "BranchTrace":
        """Read a trace written by :meth:`dump`."""
        header = stream.readline().rstrip("\n")
        if header != _FORMAT_HEADER:
            raise TraceFormatError(f"bad trace header: {header!r}")
        meta = stream.readline().split()
        if len(meta) != 3:
            raise TraceFormatError(f"bad trace metadata line: {meta!r}")
        program_name, input_name, count_text = meta
        try:
            count = int(count_text)
        except ValueError as exc:
            raise TraceFormatError(f"bad record count: {count_text!r}") from exc
        trace = cls(program_name=program_name, input_name=input_name)
        for line_no, line in enumerate(stream, start=3):
            parts = line.split()
            if len(parts) != 4:
                raise TraceFormatError(f"line {line_no}: expected 4 fields, got {parts!r}")
            try:
                trace.site_indices.append(int(parts[0]))
                trace.addresses.append(int(parts[1], 16))
                trace.outcomes.append(parts[2] == "1")
                trace.gaps.append(int(parts[3]))
            except ValueError as exc:
                raise TraceFormatError(f"line {line_no}: {exc}") from exc
        if len(trace) != count:
            raise TraceFormatError(
                f"trace declared {count} records but contains {len(trace)}"
            )
        trace.validate()
        return trace

    @classmethod
    def loads(cls, text: str) -> "BranchTrace":
        """Parse a trace from a string."""
        return cls.load_stream(io.StringIO(text))

    @classmethod
    def load(cls, path: str) -> "BranchTrace":
        """Read a trace from a file."""
        with open(path, "r", encoding="ascii") as stream:
            return cls.load_stream(stream)

    # -- binary (npz) I/O --------------------------------------------------

    def save_npz(self, path: str) -> None:
        """Write the trace as a compressed numpy archive.

        For long traces the binary form is ~20x smaller and ~50x faster
        to load than the text format; the text format remains the
        interchange/debugging representation.
        """
        import numpy

        numpy.savez_compressed(
            path,
            program_name=numpy.array(self.program_name),
            input_name=numpy.array(self.input_name),
            site_indices=numpy.asarray(self.site_indices, dtype=numpy.int32),
            addresses=numpy.asarray(self.addresses, dtype=numpy.uint64),
            outcomes=numpy.asarray(self.outcomes, dtype=numpy.bool_),
            gaps=numpy.asarray(self.gaps, dtype=numpy.int32),
        )

    @classmethod
    def load_npz(cls, path: str) -> "BranchTrace":
        """Read a trace written by :meth:`save_npz`.

        Columns come back as plain Python lists (the simulation loop's
        native representation).
        """
        import numpy

        try:
            with numpy.load(path) as data:
                trace = cls(
                    program_name=str(data["program_name"]),
                    input_name=str(data["input_name"]),
                    site_indices=[int(v) for v in data["site_indices"]],
                    addresses=[int(v) for v in data["addresses"]],
                    outcomes=[bool(v) for v in data["outcomes"]],
                    gaps=[int(v) for v in data["gaps"]],
                )
        except (OSError, KeyError, ValueError) as exc:
            raise TraceFormatError(f"cannot read npz trace {path!r}: {exc}") from exc
        trace.validate()
        return trace
