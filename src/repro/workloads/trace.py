"""Branch traces: the dynamic record of a workload execution.

A :class:`BranchTrace` is the column-oriented record of every conditional
branch executed by a synthetic workload, in order:

* ``site_indices[i]`` -- which static site executed (dense site id);
* ``addresses[i]``    -- that site's instruction address (denormalized
  from the program for fast simulation loops);
* ``outcomes[i]``     -- the resolved direction (True = taken);
* ``gaps[i]``         -- instructions retired by this record *including*
  the branch itself, so ``sum(gaps)`` is the total dynamic instruction
  count and MISPs/KI has a denominator.

Traces are plain Python lists rather than numpy arrays because the
reference predictor simulation loop reads them element-by-element; list
indexing is several times faster than numpy scalar access in CPython.

Three interchangeable serializations share one content identity
(:meth:`BranchTrace.content_digest`):

* the versioned **text** format (``dump``/``load_stream``) -- the
  interchange/debugging representation;
* the compressed **npz** format (``save_npz``/``load_npz``) -- ~20x
  smaller and ~50x faster to load;
* the **memmap** format (``save_memmap``/``load_memmap``) -- a directory
  of raw ``.npy`` columns that :mod:`numpy` can map without reading,
  for traces too large to materialize as Python lists.

The trace-length code paths (``validate``, ``dump``, ``load_stream``)
run whole-column numpy passes; the scalar loops they replaced survive as
module-private ``_*_scalar`` reference implementations used as the
numpy-free fallback and as the bit-identity oracle in the test suite.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from typing import Iterator, TextIO

from repro.errors import TraceFormatError
from repro.utils.hotpath import hot_path

__all__ = ["BranchRecord", "BranchTrace"]

_FORMAT_HEADER = "repro-trace v1"
_MEMMAP_FORMAT = "repro-trace-memmap v1"
_MEMMAP_META = "meta.json"
_MEMMAP_COLUMNS = ("site_indices", "addresses", "outcomes", "gaps")
_DIGEST_HEADER = b"repro-trace-digest v1"


@dataclass(frozen=True, slots=True)
class BranchRecord:
    """One executed conditional branch (row view of a trace)."""

    site_index: int
    address: int
    taken: bool
    gap: int


def _require_clean_name(value: str, what: str) -> None:
    """Reject names the whitespace-delimited text format cannot carry.

    The metadata line is ``<program> <input> <count>``: a name containing
    any whitespace (or an empty name) would parse back as the wrong
    number of fields, so the asymmetry is rejected at *write* time with a
    clear error instead of surfacing as a confusing load failure later.
    """
    if not value or any(c.isspace() for c in value):
        raise TraceFormatError(
            f"{what} {value!r} cannot be written to the text trace format: "
            "names must be non-empty and contain no whitespace"
        )


def _npz_path(path: str) -> str:
    """The on-disk path ``numpy.savez_compressed`` actually writes.

    numpy silently appends ``.npz`` when the suffix is missing; doing the
    same normalization on both the save and load side keeps
    ``save_npz(p)`` / ``load_npz(p)`` a round-trip for every ``p``.
    """
    return path if path.endswith(".npz") else path + ".npz"


@dataclass(slots=True)
class BranchTrace:
    """Column-oriented branch trace.

    Invariants (enforced by :meth:`validate`):
    the four columns have equal length, gaps are >= 1, and addresses are
    4-byte aligned.
    """

    program_name: str
    input_name: str
    site_indices: list[int] = field(default_factory=list)
    addresses: list[int] = field(default_factory=list)
    outcomes: list[bool] = field(default_factory=list)
    gaps: list[int] = field(default_factory=list)
    _arrays: tuple | None = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.site_indices)

    def __iter__(self) -> Iterator[BranchRecord]:
        for i in range(len(self.site_indices)):
            yield BranchRecord(
                site_index=self.site_indices[i],
                address=self.addresses[i],
                taken=self.outcomes[i],
                gap=self.gaps[i],
            )

    @property
    def instruction_count(self) -> int:
        """Total dynamic instructions (branches + non-branches)."""
        return sum(self.gaps)

    @property
    def branch_count(self) -> int:
        """Total dynamic conditional branches."""
        return len(self.site_indices)

    def cbrs_per_ki(self) -> float:
        """Dynamic conditional branches per thousand instructions."""
        instructions = self.instruction_count
        if instructions == 0:
            return 0.0
        return 1000.0 * self.branch_count / instructions

    def taken_rate(self) -> float:
        """Fraction of dynamic branches that were taken."""
        if len(self.outcomes) == 0:
            return 0.0
        return sum(self.outcomes) / len(self.outcomes)

    def sites_executed(self) -> set[int]:
        """Set of static site indices that executed at least once."""
        return set(self.site_indices)

    @hot_path
    def validate(self) -> None:
        """Check structural invariants; raise :class:`TraceFormatError`.

        Whole-column numpy passes; the first offending record index is
        recovered from the violation mask so diagnostics match the
        scalar reference (:func:`_validate_scalar`) exactly.
        """
        n = len(self.site_indices)
        if not (len(self.addresses) == len(self.outcomes) == len(self.gaps) == n):
            raise TraceFormatError(
                f"ragged trace columns: sites={len(self.site_indices)} "
                f"addresses={len(self.addresses)} outcomes={len(self.outcomes)} "
                f"gaps={len(self.gaps)}"
            )
        if n == 0:
            return
        try:
            import numpy
        except ImportError:
            _validate_scalar(self)
            return
        try:
            gaps = numpy.asarray(self.gaps, dtype=numpy.int64)
            addresses = numpy.asarray(self.addresses, dtype=numpy.int64)
        except OverflowError:
            # Columns holding ints beyond int64 (pathological but legal
            # for the list representation) take the arbitrary-precision
            # scalar path.
            _validate_scalar(self)
            return
        bad = gaps < 1
        if bad.any():
            i = int(bad.argmax())
            raise TraceFormatError(f"record {i} has gap {self.gaps[i]} < 1")
        # repro: allow[BIT001] -- alignment validation, not table indexing
        bad = addresses % 4 != 0
        if bad.any():
            i = int(bad.argmax())
            raise TraceFormatError(
                f"record {i} has unaligned address {self.addresses[i]:#x}"
            )

    def arrays(self) -> tuple:
        """The ``(addresses, outcomes)`` columns as numpy arrays, memoized.

        Fast simulation kernels (:mod:`repro.kernels`) consume whole
        columns at once; memoizing the conversion means its cost is
        paid once per trace, not once per simulated cell.  Addresses
        convert to ``int64`` (they are small, aligned instruction
        addresses), outcomes to numpy bools.

        Contract: callers must treat the returned arrays as read-only
        views of the trace, and the trace columns as frozen once the
        first ``arrays()`` call has been made.  The memo is refreshed
        automatically when either column's *length* changes; a
        same-length in-place edit is invisible to the length guard, so
        code that must mutate columns after this call has to invalidate
        the memo explicitly via :meth:`invalidate_arrays`.
        """
        import numpy

        if (
            self._arrays is None
            or self._arrays[0].shape[0] != len(self.addresses)
            or self._arrays[1].shape[0] != len(self.outcomes)
        ):
            self._arrays = (
                numpy.asarray(self.addresses, dtype=numpy.int64),
                numpy.asarray(self.outcomes, dtype=numpy.bool_),
            )
        return self._arrays

    def invalidate_arrays(self) -> None:
        """Drop the memoized :meth:`arrays` columns.

        Required after any in-place column mutation that preserves
        length (e.g. flipping an outcome): the memo guard can only see
        length changes, never content changes.
        """
        self._arrays = None

    def slice(self, start: int, stop: int) -> "BranchTrace":
        """Return a sub-trace covering records ``[start, stop)``.

        Used by phase-split experiments (e.g. warming up a predictor on a
        prefix, measuring on the rest).
        """
        return BranchTrace(
            program_name=self.program_name,
            input_name=self.input_name,
            site_indices=self.site_indices[start:stop],
            addresses=self.addresses[start:stop],
            outcomes=self.outcomes[start:stop],
            gaps=self.gaps[start:stop],
        )

    # -- content identity --------------------------------------------------

    def content_digest(self) -> str:
        """SHA-256 over the trace's canonical byte representation.

        Format-independent: the same trace produces the same digest
        whether it was generated in memory or round-tripped through the
        text, npz, or memmap serialization.  Columns hash as explicit
        little-endian fixed-width arrays so the digest is stable across
        platforms; the pinned trace suites (:mod:`repro.traces`) store
        this value in artifact manifests and fold it into result-cache
        keys.
        """
        import hashlib

        import numpy

        digest = hashlib.sha256()
        digest.update(_DIGEST_HEADER)
        digest.update(
            f"\n{self.program_name}\n{self.input_name}\n{len(self)}\n".encode("utf-8")
        )
        digest.update(numpy.asarray(self.site_indices, dtype="<i8").tobytes())
        digest.update(numpy.asarray(self.addresses, dtype="<i8").tobytes())
        digest.update(numpy.asarray(self.outcomes, dtype=numpy.bool_).tobytes())
        digest.update(numpy.asarray(self.gaps, dtype="<i8").tobytes())
        return digest.hexdigest()

    # -- file I/O ----------------------------------------------------------

    @hot_path
    def dump(self, stream: TextIO) -> None:
        """Write the trace to a text stream.

        Format: a header line, a metadata line, then one line per record
        with ``site_index address taken gap`` (address in hex, taken as
        0/1).  Record lines are rendered with whole-column numpy string
        formatting and written in one pass; output is byte-identical to
        the scalar reference (:func:`_dump_records_scalar`).
        """
        _require_clean_name(self.program_name, "program name")
        _require_clean_name(self.input_name, "input name")
        stream.write(_FORMAT_HEADER + "\n")
        stream.write(f"{self.program_name} {self.input_name} {len(self)}\n")
        if not self.site_indices:
            return
        try:
            import numpy
        except ImportError:
            _dump_records_scalar(self, stream)
            return
        try:
            sites = numpy.asarray(self.site_indices, dtype=numpy.int64)
            addresses = numpy.asarray(self.addresses, dtype=numpy.int64)
            outcomes = numpy.asarray(self.outcomes, dtype=numpy.int64)
            gaps = numpy.asarray(self.gaps, dtype=numpy.int64)
        except OverflowError:
            _dump_records_scalar(self, stream)
            return
        lines = numpy.char.add(
            numpy.char.add(
                numpy.char.mod("%d ", sites), numpy.char.mod("%x ", addresses)
            ),
            numpy.char.add(
                numpy.char.mod("%d ", outcomes), numpy.char.mod("%d", gaps)
            ),
        )
        stream.write("\n".join(lines.tolist()))
        stream.write("\n")

    def dumps(self) -> str:
        """Serialize the trace to a string."""
        buffer = io.StringIO()
        self.dump(buffer)
        return buffer.getvalue()

    def save(self, path: str) -> None:
        """Write the trace to a file."""
        with open(path, "w", encoding="ascii") as stream:
            self.dump(stream)

    @classmethod
    @hot_path
    def load_stream(cls, stream: TextIO) -> "BranchTrace":
        """Read a trace written by :meth:`dump`.

        The record block is read in one pass and parsed with
        whole-column conversions (:func:`_parse_records`); trailing
        blank lines are tolerated.  Malformed input falls back to the
        scalar reference parser so error messages (including line
        numbers) are identical to the historical per-line loop.
        """
        header = stream.readline().rstrip("\n")
        if header != _FORMAT_HEADER:
            raise TraceFormatError(f"bad trace header: {header!r}")
        meta = stream.readline().split()
        if len(meta) != 3:
            raise TraceFormatError(f"bad trace metadata line: {meta!r}")
        program_name, input_name, count_text = meta
        try:
            count = int(count_text)
        except ValueError as exc:
            raise TraceFormatError(f"bad record count: {count_text!r}") from exc
        site_indices, addresses, outcomes, gaps = _parse_records(stream.read())
        trace = cls(
            program_name=program_name,
            input_name=input_name,
            site_indices=site_indices,
            addresses=addresses,
            outcomes=outcomes,
            gaps=gaps,
        )
        if len(trace) != count:
            raise TraceFormatError(
                f"trace declared {count} records but contains {len(trace)}"
            )
        trace.validate()
        return trace

    @classmethod
    def loads(cls, text: str) -> "BranchTrace":
        """Parse a trace from a string."""
        return cls.load_stream(io.StringIO(text))

    @classmethod
    def load(cls, path: str) -> "BranchTrace":
        """Read a trace from a file."""
        with open(path, "r", encoding="ascii") as stream:
            return cls.load_stream(stream)

    # -- binary (npz) I/O --------------------------------------------------

    def save_npz(self, path: str) -> str:
        """Write the trace as a compressed numpy archive.

        For long traces the binary form is ~20x smaller and ~50x faster
        to load than the text format; the text format remains the
        interchange/debugging representation.  numpy appends ``.npz``
        when ``path`` lacks the suffix; the normalized path actually
        written is returned, and :meth:`load_npz` applies the same
        normalization so ``save_npz(p)``/``load_npz(p)`` round-trips
        for any ``p``.
        """
        import numpy

        actual = _npz_path(path)
        numpy.savez_compressed(
            actual,
            program_name=numpy.array(self.program_name),
            input_name=numpy.array(self.input_name),
            site_indices=numpy.asarray(self.site_indices, dtype=numpy.int32),
            addresses=numpy.asarray(self.addresses, dtype=numpy.uint64),
            outcomes=numpy.asarray(self.outcomes, dtype=numpy.bool_),
            gaps=numpy.asarray(self.gaps, dtype=numpy.int32),
        )
        return actual

    @classmethod
    def load_npz(cls, path: str) -> "BranchTrace":
        """Read a trace written by :meth:`save_npz`.

        Accepts the same ``path`` that was passed to ``save_npz`` --
        with or without the ``.npz`` suffix numpy appends -- preferring
        the normalized name and falling back to the literal path when
        only that exists.  Columns come back as plain Python lists (the
        simulation loop's native representation).
        """
        import zipfile

        import numpy

        actual = _npz_path(path)
        if actual != path and not os.path.exists(actual) and os.path.exists(path):
            actual = path
        try:
            with numpy.load(actual) as data:
                trace = cls(
                    program_name=str(data["program_name"]),
                    input_name=str(data["input_name"]),
                    site_indices=[int(v) for v in data["site_indices"]],
                    addresses=[int(v) for v in data["addresses"]],
                    outcomes=[bool(v) for v in data["outcomes"]],
                    gaps=[int(v) for v in data["gaps"]],
                )
        except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
            # BadZipFile is listed explicitly: it derives from neither
            # OSError nor ValueError, and a truncated archive raises it.
            raise TraceFormatError(f"cannot read npz trace {actual!r}: {exc}") from exc
        trace.validate()
        return trace

    # -- memmap I/O --------------------------------------------------------

    def save_memmap(self, path: str) -> str:
        """Write the trace as a directory of raw ``.npy`` columns.

        The memmap format trades the npz format's compression for
        zero-copy loading: each column is a plain ``numpy.save`` file
        that ``load_memmap(..., materialize=False)`` maps read-only
        without reading, so multi-gigabranch traces never have to fit
        in memory as Python lists.  ``meta.json`` carries the names,
        length, and :meth:`content_digest`.
        """
        import numpy

        os.makedirs(path, exist_ok=True)
        numpy.save(
            os.path.join(path, "site_indices.npy"),
            numpy.asarray(self.site_indices, dtype=numpy.int32),
        )
        numpy.save(
            os.path.join(path, "addresses.npy"),
            numpy.asarray(self.addresses, dtype=numpy.uint64),
        )
        numpy.save(
            os.path.join(path, "outcomes.npy"),
            numpy.asarray(self.outcomes, dtype=numpy.bool_),
        )
        numpy.save(
            os.path.join(path, "gaps.npy"),
            numpy.asarray(self.gaps, dtype=numpy.int32),
        )
        meta = {
            "format": _MEMMAP_FORMAT,
            "program_name": self.program_name,
            "input_name": self.input_name,
            "length": len(self),
            "content_digest": self.content_digest(),
        }
        with open(os.path.join(path, _MEMMAP_META), "w", encoding="utf-8") as stream:
            json.dump(meta, stream, sort_keys=True, indent=2)
        return path

    @classmethod
    def load_memmap(cls, path: str, materialize: bool = True) -> "BranchTrace":
        """Read a trace written by :meth:`save_memmap`.

        With ``materialize=True`` (the default) columns convert to plain
        Python lists, matching every other loader.  With
        ``materialize=False`` the columns stay read-only numpy memmap
        arrays -- the whole-column consumers (:meth:`arrays`, the fast
        kernels, :meth:`validate`, :meth:`content_digest`) work
        unchanged and the trace is never fully resident; per-element
        access still works but is slower than lists, so the reference
        simulation loop should use materialized traces.
        """
        import numpy

        meta_path = os.path.join(path, _MEMMAP_META)
        try:
            with open(meta_path, "r", encoding="utf-8") as stream:
                meta = json.load(stream)
        except (OSError, ValueError) as exc:
            raise TraceFormatError(
                f"cannot read memmap trace {path!r}: {exc}"
            ) from exc
        if meta.get("format") != _MEMMAP_FORMAT:
            raise TraceFormatError(
                f"bad memmap trace format in {meta_path!r}: {meta.get('format')!r}"
            )
        columns = {}
        for name in _MEMMAP_COLUMNS:
            column_path = os.path.join(path, f"{name}.npy")
            try:
                columns[name] = numpy.load(column_path, mmap_mode="r")
            except (OSError, ValueError) as exc:
                raise TraceFormatError(
                    f"cannot read memmap trace column {column_path!r}: {exc}"
                ) from exc
        lengths = {name: int(column.shape[0]) for name, column in columns.items()}
        if len(set(lengths.values())) != 1 or next(iter(lengths.values())) != meta.get("length"):
            raise TraceFormatError(
                f"memmap trace {path!r} column lengths {lengths} do not match "
                f"declared length {meta.get('length')!r}"
            )
        if materialize:
            site_indices = [int(v) for v in columns["site_indices"]]
            addresses = [int(v) for v in columns["addresses"]]
            outcomes = [bool(v) for v in columns["outcomes"]]
            gaps = [int(v) for v in columns["gaps"]]
        else:
            site_indices = columns["site_indices"]
            addresses = columns["addresses"]
            outcomes = columns["outcomes"]
            gaps = columns["gaps"]
        trace = cls(
            program_name=str(meta.get("program_name", "")),
            input_name=str(meta.get("input_name", "")),
            site_indices=site_indices,
            addresses=addresses,
            outcomes=outcomes,
            gaps=gaps,
        )
        trace.validate()
        return trace


# ---------------------------------------------------------------------------
# Record-block parsing (text format)
# ---------------------------------------------------------------------------


def _parse_records(body: str) -> tuple[list[int], list[int], list[bool], list[int]]:
    """Parse the record block of the text format into four columns.

    Fast path: one flat whitespace split of the whole block plus
    whole-column numpy conversions.  The flat split only preserves line
    structure when every line is exactly four single-space-separated
    fields (the shape :meth:`BranchTrace.dump` writes), which is proven
    before trusting it: exactly three spaces per line, no
    leading/trailing space, and global character conservation
    (``sum(len(line)) == sum(len(token)) + 3 * lines``) together rule
    out any other whitespace or token-count aliasing across lines.
    Anything else -- unusual-but-legal whitespace, or malformed input
    needing an exact diagnostic -- takes the scalar reference parser,
    which is byte-for-byte the historical per-line loop.

    Trailing blank lines (a final ``\\n\\n``, editor-appended newlines)
    are tolerated; blank lines *between* records still fail with the
    usual ``expected 4 fields`` error at the right line number.
    """
    lines = body.split("\n")
    end = len(lines)
    while end > 0 and not lines[end - 1].strip():
        end -= 1
    lines = lines[:end]
    if not lines:
        return [], [], [], []
    tokens = body.split()
    if len(tokens) != 4 * len(lines):
        return _parse_records_scalar(lines)
    try:
        import numpy
    except ImportError:
        return _parse_records_scalar(lines)
    line_column = numpy.asarray(lines)
    canonical = (
        bool((numpy.char.count(line_column, " ") == 3).all())
        and not numpy.char.startswith(line_column, " ").any()
        and not numpy.char.endswith(line_column, " ").any()
        and int(numpy.char.str_len(line_column).sum())
        == sum(map(len, tokens)) + 3 * len(lines)
    )
    if not canonical:
        return _parse_records_scalar(lines)
    try:
        site_indices = numpy.asarray(tokens[0::4]).astype(numpy.int64).tolist()
        addresses = [int(token, 16) for token in tokens[1::4]]
        outcomes = (numpy.asarray(tokens[2::4]) == "1").tolist()
        gaps = numpy.asarray(tokens[3::4]).astype(numpy.int64).tolist()
    except (ValueError, OverflowError):
        # Some field does not convert (or converts differently at
        # arbitrary precision): the scalar parser either produces the
        # exact historical diagnostic or handles the value correctly.
        return _parse_records_scalar(lines)
    return site_indices, addresses, outcomes, gaps


# ---------------------------------------------------------------------------
# Scalar reference implementations
#
# The per-record loops the vectorized paths replaced.  They are the
# numpy-free fallback and the oracle the differential tests compare
# against; nothing on the hot path reaches them when numpy is available.
# ---------------------------------------------------------------------------


def _validate_scalar(trace: BranchTrace) -> None:
    """Per-record reference for :meth:`BranchTrace.validate` (column checks)."""
    for i, gap in enumerate(trace.gaps):  # repro: allow[PERF001] -- numpy-free fallback; the vectorized pass above is the hot path
        if gap < 1:
            raise TraceFormatError(f"record {i} has gap {gap} < 1")
    for i, address in enumerate(trace.addresses):  # repro: allow[PERF001] -- numpy-free fallback
        # repro: allow[BIT001] -- alignment validation, not table indexing
        if address % 4 != 0:
            raise TraceFormatError(
                f"record {i} has unaligned address {address:#x}"
            )


def _dump_records_scalar(trace: BranchTrace, stream: TextIO) -> None:
    """Per-record reference for the record block of :meth:`BranchTrace.dump`."""
    write = stream.write
    for i in range(len(trace.site_indices)):  # repro: allow[PERF001] -- numpy-free fallback; the vectorized pass above is the hot path
        write(
            f"{trace.site_indices[i]} {trace.addresses[i]:x} "
            f"{1 if trace.outcomes[i] else 0} {trace.gaps[i]}\n"
        )


def _parse_records_scalar(
    lines: list[str],
) -> tuple[list[int], list[int], list[bool], list[int]]:
    """Per-line reference parser for the text format's record block.

    Line numbers count from 3 (after the header and metadata lines),
    matching the historical stream loop, so every diagnostic it raises
    is byte-identical to the pre-vectorization behavior.
    """
    site_indices: list[int] = []
    addresses: list[int] = []
    outcomes: list[bool] = []
    gaps: list[int] = []
    for line_no, line in enumerate(lines, start=3):
        parts = line.split()
        if len(parts) != 4:
            raise TraceFormatError(
                f"line {line_no}: expected 4 fields, got {parts!r}"
            )
        try:
            site_indices.append(int(parts[0]))
            addresses.append(int(parts[1], 16))
            outcomes.append(parts[2] == "1")
            gaps.append(int(parts[3]))
        except ValueError as exc:
            raise TraceFormatError(f"line {line_no}: {exc}") from exc
    return site_indices, addresses, outcomes, gaps
