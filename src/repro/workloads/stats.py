"""Trace characterization: the measurements behind Tables 1 and 2.

These functions compute workload statistics directly from a trace:
dynamic branch density (CBRs/KI), per-site execution and taken counts,
and the dynamic fraction of executions coming from highly biased
branches (Table 2's first column).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.trace import BranchTrace

__all__ = [
    "SiteStats",
    "TraceCharacterization",
    "characterize",
    "dynamic_highly_biased_fraction",
    "bias_histogram",
]


@dataclass(slots=True)
class SiteStats:
    """Execution statistics for one static branch site within a trace."""

    executions: int = 0
    taken: int = 0

    @property
    def taken_rate(self) -> float:
        """Fraction of executions that were taken."""
        if self.executions == 0:
            return 0.0
        return self.taken / self.executions

    @property
    def bias(self) -> float:
        """``max(taken-rate, not-taken-rate)`` -- the paper's bias."""
        rate = self.taken_rate
        return max(rate, 1.0 - rate)

    @property
    def majority_taken(self) -> bool:
        """The majority direction (ties count as taken)."""
        return self.taken * 2 >= self.executions


@dataclass(slots=True)
class TraceCharacterization:
    """Aggregate statistics for a full trace."""

    program_name: str
    input_name: str
    branch_count: int
    instruction_count: int
    static_sites_executed: int
    cbrs_per_ki: float
    taken_rate: float
    site_stats: dict[int, SiteStats]

    def dynamic_highly_biased_fraction(self, cutoff: float = 0.95) -> float:
        """Fraction of *dynamic executions* from branches with bias > cutoff.

        This is the paper's Table 2 quantity: it weights each static
        branch by how often it executes, so one hot 99%-taken branch
        counts for all of its executions.
        """
        if self.branch_count == 0:
            return 0.0
        biased_executions = sum(
            stats.executions
            for stats in self.site_stats.values()
            if stats.bias > cutoff
        )
        return biased_executions / self.branch_count

    def static_highly_biased_fraction(self, cutoff: float = 0.95) -> float:
        """Fraction of *executed static sites* with bias > cutoff."""
        if not self.site_stats:
            return 0.0
        biased_sites = sum(
            1 for stats in self.site_stats.values() if stats.bias > cutoff
        )
        return biased_sites / len(self.site_stats)


def characterize(trace: BranchTrace) -> TraceCharacterization:
    """Compute per-site and aggregate statistics for a trace."""
    site_stats: dict[int, SiteStats] = {}
    taken_total = 0
    for site, taken in zip(trace.site_indices, trace.outcomes):
        stats = site_stats.get(site)
        if stats is None:
            stats = SiteStats()
            site_stats[site] = stats
        stats.executions += 1
        if taken:
            stats.taken += 1
            taken_total += 1
    branch_count = len(trace)
    instruction_count = trace.instruction_count
    return TraceCharacterization(
        program_name=trace.program_name,
        input_name=trace.input_name,
        branch_count=branch_count,
        instruction_count=instruction_count,
        static_sites_executed=len(site_stats),
        cbrs_per_ki=(1000.0 * branch_count / instruction_count)
        if instruction_count
        else 0.0,
        taken_rate=(taken_total / branch_count) if branch_count else 0.0,
        site_stats=site_stats,
    )


def dynamic_highly_biased_fraction(trace: BranchTrace, cutoff: float = 0.95) -> float:
    """Convenience wrapper: Table 2's highly-biased fraction for a trace."""
    return characterize(trace).dynamic_highly_biased_fraction(cutoff)


def bias_histogram(trace: BranchTrace, bins: int = 10) -> list[int]:
    """Histogram of per-site bias over [0.5, 1.0], execution-weighted.

    Bin ``i`` covers ``[0.5 + 0.5 * i / bins, 0.5 + 0.5 * (i + 1) / bins)``,
    with the final bin closed at 1.0.  Useful for eyeballing workload
    calibration against the mix specs.
    """
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    characterization = characterize(trace)
    histogram = [0] * bins
    for stats in characterization.site_stats.values():
        fraction = (stats.bias - 0.5) / 0.5
        index = min(int(fraction * bins), bins - 1)
        histogram[index] += stats.executions
    return histogram
