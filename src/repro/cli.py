"""Command-line interface: ``python -m repro`` / ``repro``.

Subcommands::

    repro list                         # programs, predictors, experiments
    repro run table3 figure1 --jobs 4 [--no-cache] [--cache-dir DIR]
    repro run --program gcc --predictor gshare --size 8192 \
              [--scheme static_acc] [--shift] [--collisions] \
              [--length 200000] [--input ref] [--profile-input ref]
    repro experiment table3 [--length N] [--seed N] [--scale F]
    repro trace --program gcc --input ref --length 10000 --out gcc.trace
    repro traces generate|list|verify|info [--suite NAME] [--quick] \
                 [--dir DIR] [--force]
    repro profile --program gcc --input train --out gcc.profile.json
    repro classify --program gcc [--predictor gshare --size 8192]
    repro interference --program gcc --predictor gshare --size 2048
    repro bench [--quick] [--name NAME] [--out FILE] \
                [--compare BASELINE [CURRENT]] [--max-regression 20%]
    repro serve [--host H] [--port P] [--jobs N] [--window-ms MS] \
                [--max-batch N] [--queue-limit N] [--timeout-s S] \
                [--stats-file FILE]
    repro loadgen [--requests N] [--concurrency N] [--mode closed|open] \
                  [--rate R] [--mix N] [--json FILE] [--wait-health S] \
                  [--expect-hit-rate F] [--expect-zero-errors] [--shutdown]
    repro lint [--format json|sarif] [--select RULES] [--changed] \
               [--baseline [FILE]] [--update-baseline] [--cache [FILE]] \
               [--hot-report] [paths]

``run`` with experiment ids schedules their declared cells across
``--jobs`` worker processes backed by a persistent result cache (warm
re-runs simulate nothing) and prints each report plus a run summary:
wall time, branches/s per worker, cache hit/miss counts.  ``run`` with
``--program/--predictor/--size`` performs the paper's full two-phase
flow for that single configuration and prints the result line.
``experiment`` regenerates a whole table or figure serially (it also
honors the ``REPRO_JOBS``/``REPRO_CACHE_DIR`` environment knobs);
``traces`` manages the pinned trace suites (:mod:`repro.traces`):
``generate`` materializes a suite's content-digested artifacts into the
store, ``verify`` re-checks every artifact against its manifest and
pinned digest (exit 1 on any problem), ``list`` shows the registered
suites with per-spec store status, and ``info`` dumps the manifests;
``bench`` times the simulation kernels (reference loop versus the
array-backed fast kernels) and writes a ``BENCH_<name>.json`` snapshot;
with ``--compare`` it gates against a baseline snapshot and exits 1 on
any case slower than ``--max-regression`` allows;
``serve`` runs the predictor service (:mod:`repro.service`): an asyncio
TCP server batching cell submissions over the persistent runner pool,
draining gracefully on a ``shutdown`` request; ``loadgen`` drives
measured traffic at a running server and prints/writes a latency
report, with ``--expect-hit-rate``/``--expect-zero-errors`` turning the
report into a gate (exit 1 on miss) — the knobs both commands share
default from the ``REPRO_SERVICE_*`` environment registry;
``lint`` statically checks the determinism, predictor, and parallelism
invariants the results depend on (exit status 1 when any finding
survives); ``--baseline`` ratchets against accepted debt so only *new*
findings fail, ``--changed`` narrows to git-modified files, ``--cache``
reuses unchanged files' analysis, and ``--format sarif`` feeds GitHub
code scanning.

Every subcommand reports library failures (:class:`ReproError`) and
file-system errors as a one-line ``error: ...`` on stderr with exit
status 1 — never a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable

from repro.arch.isa import ShiftPolicy
from repro.errors import ReproError
from repro.experiments.common import ExperimentContext
from repro.kernels import KERNEL_MODES
from repro.experiments.registry import EXPERIMENT_IDS, get_experiment
from repro.predictors.sizing import PREDICTOR_NAMES
from repro.profiling.profile import ProgramProfile
from repro.staticpred.selection import SELECTION_SCHEMES
from repro.workloads.spec95 import PROGRAM_ORDER

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Patil & Emer (HPCA 2000): combining "
                    "static and dynamic branch prediction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list programs, predictors, and experiments")

    run = sub.add_parser(
        "run",
        help="run experiments in parallel, or one predictor configuration",
    )
    run.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                     help="experiment ids to run through the parallel "
                          "runner (omit to run a single --program/"
                          "--predictor/--size configuration); unknown ids "
                          "are rejected with the known list")
    run.add_argument("--jobs", type=int, default=None,
                     help="worker processes (default: REPRO_JOBS or 1)")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the persistent result cache")
    run.add_argument("--cache-dir", default=None,
                     help="result cache location (default: REPRO_CACHE_DIR "
                          "or .repro-cache)")
    run.add_argument("--program", default=None, choices=PROGRAM_ORDER)
    run.add_argument("--predictor", default=None, choices=PREDICTOR_NAMES)
    run.add_argument("--size", type=int, default=None,
                     help="hardware budget in bytes (power of two)")
    run.add_argument("--scheme", default="none", choices=SELECTION_SCHEMES)
    run.add_argument("--shift", action="store_true",
                     help="shift statically predicted outcomes into history")
    run.add_argument("--collisions", action="store_true",
                     help="track constructive/destructive collisions")
    run.add_argument("--input", default="ref", choices=("train", "ref"),
                     help="measurement input")
    run.add_argument("--profile-input", default=None,
                     choices=("train", "ref"),
                     help="profiling input (defaults to the measurement "
                          "input, i.e. self-trained)")
    run.add_argument("--cutoff", type=float, default=0.95,
                     help="bias cutoff for static_95")
    run.add_argument("--length", type=int, default=None,
                     help="trace length in branches")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--scale", type=float, default=None,
                     help="static-branch site scale")
    run.add_argument("--kernel", default=None, choices=KERNEL_MODES,
                     help="simulation kernel mode (default: REPRO_KERNEL "
                          "or auto); bit-identical by contract, so this "
                          "only changes wall time")

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper table or figure")
    experiment.add_argument("id", choices=EXPERIMENT_IDS)
    experiment.add_argument("--length", type=int, default=None)
    experiment.add_argument("--seed", type=int, default=None)
    experiment.add_argument("--scale", type=float, default=None)

    trace = sub.add_parser("trace", help="generate and save a branch trace")
    trace.add_argument("--program", required=True, choices=PROGRAM_ORDER)
    trace.add_argument("--input", default="ref", choices=("train", "ref"))
    trace.add_argument("--length", type=int, default=10_000)
    trace.add_argument("--out", required=True, help="output trace file")
    trace.add_argument("--seed", type=int, default=None)
    trace.add_argument("--scale", type=float, default=None)

    traces = sub.add_parser(
        "traces",
        help="manage pinned trace suites (generate, list, verify, info)",
    )
    traces.add_argument("action",
                        choices=("generate", "list", "verify", "info"))
    traces.add_argument("--suite", default="quick",
                        help="suite to operate on (default: quick); "
                             "see `repro traces list`")
    traces.add_argument("--quick", action="store_true",
                        help="shorthand for --suite quick (the CI suite)")
    traces.add_argument("--dir", default=None, dest="trace_dir",
                        help="trace store root (default: REPRO_TRACE_DIR "
                             "or .repro-traces)")
    traces.add_argument("--force", action="store_true",
                        help="with generate: rebuild artifacts that "
                             "already exist")

    profile = sub.add_parser("profile", help="profile a workload to JSON")
    profile.add_argument("--program", required=True, choices=PROGRAM_ORDER)
    profile.add_argument("--input", default="train", choices=("train", "ref"))
    profile.add_argument("--length", type=int, default=None)
    profile.add_argument("--out", required=True, help="output profile JSON")
    profile.add_argument("--seed", type=int, default=None)
    profile.add_argument("--scale", type=float, default=None)

    classify = sub.add_parser(
        "classify",
        help="Chang-style bias classification of a program's branches",
    )
    classify.add_argument("--program", required=True, choices=PROGRAM_ORDER)
    classify.add_argument("--input", default="ref", choices=("train", "ref"))
    classify.add_argument("--predictor", default=None,
                          choices=PREDICTOR_NAMES,
                          help="also report this predictor's per-class accuracy")
    classify.add_argument("--size", type=int, default=8192)
    classify.add_argument("--length", type=int, default=None)
    classify.add_argument("--seed", type=int, default=None)
    classify.add_argument("--scale", type=float, default=None)

    interference = sub.add_parser(
        "interference",
        help="per-pair destructive collision analysis",
    )
    interference.add_argument("--program", required=True, choices=PROGRAM_ORDER)
    interference.add_argument("--predictor", required=True,
                              choices=PREDICTOR_NAMES)
    interference.add_argument("--size", type=int, required=True)
    interference.add_argument("--input", default="ref", choices=("train", "ref"))
    interference.add_argument("--top", type=int, default=10,
                              help="pairs to list")
    interference.add_argument("--length", type=int, default=None)
    interference.add_argument("--seed", type=int, default=None)
    interference.add_argument("--scale", type=float, default=None)

    bench = sub.add_parser(
        "bench",
        help="time the simulation kernels and gate perf regressions",
    )
    bench.add_argument("--quick", action="store_true",
                       help="shorter trace, fewer repeats, kernel "
                            "microbenches only (the CI configuration)")
    bench.add_argument("--name", default="kernels",
                       help="suite name; the snapshot is written to "
                            "BENCH_<name>.json")
    bench.add_argument("--out", default=None,
                       help="snapshot path (default: BENCH_<name>.json "
                            "in the current directory)")
    bench.add_argument("--length", type=int, default=None,
                       help="trace length in branches (default: 200000, "
                            "or 50000 with --quick)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="timed samples per case (default: 5, or 3 "
                            "with --quick)")
    bench.add_argument("--compare", nargs="+", default=None,
                       metavar="SNAPSHOT",
                       help="compare BASELINE [CURRENT] snapshots; with "
                            "one argument the suite runs fresh as the "
                            "current side; exits 1 on regression")
    bench.add_argument("--max-regression", default="20%",
                       help="tolerated slowdown for --compare: '20%%', "
                            "'2x', or a bare factor (default: 20%%)")

    serve = sub.add_parser(
        "serve",
        help="run the predictor service (async batching over the runner)",
    )
    serve.add_argument("--host", default=None,
                       help="bind host (default: REPRO_SERVICE_HOST or "
                            "127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="bind port (default: REPRO_SERVICE_PORT or "
                            "8177; 0 = OS-assigned)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: REPRO_JOBS or 1)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the persistent result cache")
    serve.add_argument("--cache-dir", default=None,
                       help="result cache location (default: "
                            "REPRO_CACHE_DIR or .repro-cache)")
    serve.add_argument("--window-ms", type=float, default=None,
                       help="batch coalescing window in milliseconds "
                            "(default: REPRO_SERVICE_BATCH_WINDOW_MS or 5)")
    serve.add_argument("--max-batch", type=int, default=None,
                       help="max cells per dispatched batch (default: "
                            "REPRO_SERVICE_MAX_BATCH or 64)")
    serve.add_argument("--queue-limit", type=int, default=None,
                       help="queued+in-flight bound before backpressure "
                            "(default: REPRO_SERVICE_QUEUE_LIMIT or 1024)")
    serve.add_argument("--timeout-s", type=float, default=None,
                       help="per-request timeout in seconds (default: "
                            "REPRO_SERVICE_TIMEOUT_S or 60)")
    serve.add_argument("--stats-file", default=None,
                       help="persist the final stats payload here on "
                            "graceful shutdown")
    serve.add_argument("--length", type=int, default=None)
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument("--scale", type=float, default=None)
    serve.add_argument("--kernel", default=None, choices=KERNEL_MODES)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive measured traffic at a running predictor service",
    )
    loadgen.add_argument("--host", default=None,
                         help="service host (default: REPRO_SERVICE_HOST "
                              "or 127.0.0.1)")
    loadgen.add_argument("--port", type=int, default=None,
                         help="service port (default: REPRO_SERVICE_PORT "
                              "or 8177)")
    loadgen.add_argument("--requests", type=int, default=200)
    loadgen.add_argument("--concurrency", type=int, default=8,
                         help="concurrent connections")
    loadgen.add_argument("--mode", default="closed",
                         choices=("closed", "open"),
                         help="closed: next request on completion; open: "
                              "requests issued on a fixed --rate clock")
    loadgen.add_argument("--rate", type=float, default=None,
                         help="open-loop target rate in requests/s")
    loadgen.add_argument("--mix", type=int, default=4,
                         help="distinct cells in the request mix")
    loadgen.add_argument("--json", default=None, dest="json_out",
                         metavar="FILE",
                         help="also write the report as JSON")
    loadgen.add_argument("--wait-health", type=float, default=None,
                         metavar="SECONDS",
                         help="poll the health endpoint up to this long "
                              "before generating load")
    loadgen.add_argument("--expect-hit-rate", type=float, default=None,
                         metavar="FRACTION",
                         help="exit 1 if the measured hit-rate is below "
                              "this")
    loadgen.add_argument("--expect-zero-errors", action="store_true",
                         help="exit 1 on any error or rejection")
    loadgen.add_argument("--shutdown", action="store_true",
                         help="send a graceful shutdown request after "
                              "the run")

    lint = sub.add_parser(
        "lint",
        help="statically check determinism and predictor invariants",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", dest="format_",
                      metavar="{text,json,sarif}")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule ids or prefixes "
                           "(e.g. DET001 or DET,PRED)")
    lint.add_argument("--baseline", nargs="?", const="", default=None,
                      metavar="FILE",
                      help="fail only on findings not in the baseline file "
                           "(default file: .repro-lint-baseline.json)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline file to exactly this "
                           "run's findings and exit 0")
    lint.add_argument("--changed", action="store_true",
                      help="narrow the linted set to .py files git reports "
                           "as modified, staged, or untracked")
    lint.add_argument("--cache", nargs="?", const="", default=None,
                      metavar="FILE", dest="lint_cache",
                      help="reuse per-file analysis across runs via a "
                           "content-hash cache (default file: "
                           ".repro-lint-cache.json)")
    lint.add_argument("--explain", default=None, metavar="RULE_ID",
                      help="print each matching rule's rationale and a "
                           "minimal good/bad example (accepts ids, "
                           "prefixes, or 'all'), then exit")
    lint.add_argument("--strict-baseline", action="store_true",
                      help="with --baseline: also fail when the baseline "
                           "file contains entries that no longer fire "
                           "(stale accepted debt)")
    lint.add_argument("--stats", action="store_true",
                      help="print engine statistics (files, parsed, "
                           "reused, cache hits) to stderr")
    lint.add_argument("--hot-report", action="store_true", dest="hot_report",
                      help="print the hot-path vectorization worklist "
                           "(function, est. per-branch ops, callers) "
                           "instead of findings, then exit")

    return parser


def _context(args: argparse.Namespace) -> ExperimentContext:
    return ExperimentContext(
        trace_length=getattr(args, "length", None),
        site_scale=getattr(args, "scale", None),
        seed=getattr(args, "seed", None),
        kernel=getattr(args, "kernel", None),
    )


def _cmd_list() -> int:
    from repro.lint import rule_ids
    from repro.traces import suite_names

    print("programs:   ", " ".join(PROGRAM_ORDER))
    print("predictors: ", " ".join(PREDICTOR_NAMES))
    print("schemes:    ", " ".join(SELECTION_SCHEMES))
    print("experiments:", " ".join(EXPERIMENT_IDS))
    print("trace suites:", " ".join(suite_names()))
    print("lint rules: ", " ".join(rule_ids()))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiments:
        return _cmd_run_experiments(args)
    missing = [name for name in ("program", "predictor", "size")
               if getattr(args, name) is None]
    if missing:
        raise ReproError(
            "run needs either experiment ids or a full configuration "
            f"(--{' --'.join(missing)} missing); see `repro list` for ids"
        )
    ctx = _context(args)
    result = ctx.run(
        args.program,
        args.predictor,
        args.size,
        scheme=args.scheme,
        shift_policy=ShiftPolicy.SHIFT if args.shift else ShiftPolicy.NO_SHIFT,
        measure_input=args.input,
        profile_input=args.profile_input or args.input,
        track_collisions=args.collisions,
        cutoff=args.cutoff,
    )
    print(result.describe())
    return 0


def _cmd_run_experiments(args: argparse.Namespace) -> int:
    from repro.runner import ResultCache, default_cache_dir, default_jobs, run_experiments

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    jobs = args.jobs if args.jobs is not None else default_jobs()
    reports, summary = run_experiments(
        args.experiments, ctx=_context(args), jobs=jobs, cache=cache,
    )
    for experiment_id in args.experiments:
        print(reports[experiment_id].render())
        print()
    print(summary.describe())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    ctx = _context(args)
    report = get_experiment(args.id)(ctx)
    print(report.render())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    ctx = _context(args)
    trace = ctx.workload(args.program, args.input).execute(args.length, run_seed=1)
    trace.save(args.out)
    print(f"wrote {len(trace)} branches ({trace.instruction_count} "
          f"instructions) to {args.out}")
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    from repro.traces import TraceStore, get_suite, suite_names

    store = TraceStore(args.trace_dir)
    suite_name = "quick" if args.quick else args.suite

    if args.action == "list":
        for name in suite_names():
            suite = get_suite(name)
            print(f"{suite.name}: {len(suite)} trace(s)"
                  + (f" -- {suite.description}" if suite.description else ""))
            for spec in suite:
                status = "generated" if store.exists(spec) else "missing"
                print(f"  {spec.describe()} [{status}]")
        print(f"store: {store.root}")
        return 0

    suite = get_suite(suite_name)
    if args.action == "generate":
        for spec in suite:
            existed = store.exists(spec) and not args.force
            manifest = store.generate(spec, force=args.force)
            verb = "up to date" if existed else "wrote"
            print(f"{spec.name}: {verb} {manifest['branches']} branches "
                  f"-> {store.artifact_path(spec)} "
                  f"(digest {manifest['content_digest'][:12]})")
        return 0

    if args.action == "verify":
        failures = 0
        for spec in suite:
            problems = store.verify(spec)
            if problems:
                failures += 1
                for problem in problems:
                    print(f"{spec.name}: FAIL: {problem}")
            else:
                print(f"{spec.name}: ok")
        if failures:
            print(f"{failures} of {len(suite)} trace(s) failed verification "
                  f"in store {store.root}", file=sys.stderr)
            return 1
        print(f"verified {len(suite)} trace(s) in store {store.root}")
        return 0

    # info: dump each generated spec's manifest, flag the rest.
    for spec in suite:
        manifest = store.manifest(spec)
        if manifest is None:
            print(f"{spec.name}: not generated "
                  f"(expected {store.artifact_path(spec)})")
            continue
        print(f"{spec.name}:")
        print(f"  artifact: {store.artifact_path(spec)}")
        for key in ("spec_digest", "content_digest", "branches",
                    "instructions", "format_version"):
            print(f"  {key}: {manifest.get(key)}")
        pinned = spec.pinned_digest or "(unpinned)"
        print(f"  pinned_digest: {pinned}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    ctx = _context(args)
    profile = ProgramProfile.from_trace(ctx.trace(args.program, args.input))
    profile.save(args.out)
    print(f"wrote profile of {len(profile)} branches to {args.out}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.analysis.classification import classify_branches
    from repro.utils.tables import render_table

    ctx = _context(args)
    profile = ProgramProfile.from_trace(ctx.trace(args.program, args.input))
    accuracy = None
    if args.predictor is not None:
        accuracy = ctx.accuracy(args.program, args.predictor, args.size,
                                input_name=args.input)
    breakdown = classify_branches(profile, accuracy)
    title = f"{args.program}/{args.input}: branch classification"
    if args.predictor:
        title += f" (accuracy: {args.predictor} {args.size}B)"
    print(render_table(
        ["class", "static branches", "dynamic share", "predictor accuracy"],
        breakdown.rows(), title=title,
    ))
    print(f"\nhighly biased (>=95%) dynamic share: "
          f"{breakdown.highly_biased_dynamic_fraction():.1%}")
    return 0


def _cmd_interference(args: argparse.Namespace) -> int:
    from repro.analysis.interference import analyze_interference
    from repro.predictors.sizing import make_predictor
    from repro.utils.tables import render_table

    ctx = _context(args)
    trace = ctx.trace(args.program, args.input)
    analysis = analyze_interference(
        trace, make_predictor(args.predictor, args.size)
    )
    print(f"{args.program}: {analysis.total_collisions} collisions, "
          f"{analysis.total_destructive} destructive "
          f"({analysis.destructive_fraction:.0%}); "
          f"{analysis.concentration(0.5)} pairs cause half the destruction")
    rows = [
        [f"{victim:#x}", f"{aggressor:#x}", counts.destructive,
         counts.constructive]
        for (victim, aggressor), counts in analysis.top_destructive_pairs(args.top)
    ]
    if rows:
        print()
        print(render_table(
            ["victim", "aggressor", "destructive", "constructive"],
            rows, title=f"top destructive pairs ({args.predictor} "
                        f"{args.size}B)",
        ))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        BenchSnapshot,
        compare,
        parse_threshold,
        run_suite,
        snapshot_filename,
    )

    threshold = parse_threshold(args.max_regression)
    baseline = None
    current = None
    if args.compare:
        if len(args.compare) > 2:
            raise ReproError(
                "--compare takes BASELINE and optionally CURRENT, got "
                f"{len(args.compare)} snapshots"
            )
        baseline = BenchSnapshot.load(args.compare[0])
        if len(args.compare) == 2:
            current = BenchSnapshot.load(args.compare[1])

    if current is None:
        current = run_suite(
            name=args.name, quick=args.quick,
            trace_length=args.length, repeats=args.repeats,
        )
        out = args.out or snapshot_filename(current.name)
        current.save(out)
        for result in current.results:
            print(f"{result.case}: {result.branches_per_s:,.0f} branches/s "
                  f"(median {result.median_s * 1000.0:.2f} ms, "
                  f"iqr {result.iqr_s * 1000.0:.2f} ms)")
        _print_speedups(current)
        print(f"wrote {out}")

    if baseline is None:
        return 0
    comparisons = compare(baseline, current, threshold)
    if not comparisons:
        print("no common cases between the snapshots; nothing to gate",
              file=sys.stderr)
        return 0
    # The ratio table prints on success too, so CI logs carry the trend
    # line even when nothing regressed.
    from repro.utils.tables import render_table

    regressed = 0
    rows = []
    for comparison in comparisons:
        if comparison.regressed:
            regressed += 1
        rows.append([
            comparison.case,
            f"{comparison.old_branches_per_s:,.0f}",
            f"{comparison.new_branches_per_s:,.0f}",
            f"{comparison.ratio:.2f}x",
            "REGRESSION" if comparison.regressed else "ok",
        ])
    print(render_table(
        ["case", "baseline b/s", "current b/s", "ratio", "verdict"],
        rows, title="bench comparison",
    ))
    if regressed:
        print(f"{regressed} case(s) regressed beyond "
              f"{args.max_regression} (factor {threshold:.2f})",
              file=sys.stderr)
        return 1
    print(f"no regression beyond {args.max_regression} "
          f"across {len(comparisons)} case(s)")
    return 0


def _print_speedups(snapshot) -> None:
    """Per-family fast-over-reference speedups, when both rows exist."""
    throughput = {result.case: result.branches_per_s
                  for result in snapshot.results}
    for case, fast_bps in throughput.items():
        if not case.endswith("/fast"):
            continue
        reference_bps = throughput.get(
            case[: -len("fast")] + "reference"
        )
        if reference_bps and reference_bps > 0.0:
            family = case.split("/")[0]
            print(f"{family}: fast kernel is "
                  f"{fast_bps / reference_bps:.1f}x reference")


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runner import ResultCache, default_cache_dir, default_jobs
    from repro.service import PredictorService, ServiceConfig

    config = ServiceConfig.from_env().override(
        host=args.host,
        port=args.port,
        window_s=(args.window_ms / 1000.0
                  if args.window_ms is not None else None),
        max_batch=args.max_batch,
        queue_limit=args.queue_limit,
        timeout_s=args.timeout_s,
    )
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    jobs = args.jobs if args.jobs is not None else default_jobs()
    service = PredictorService(_context(args), config, jobs=jobs, cache=cache)

    async def _serve() -> None:
        await service.start()
        print(f"serving on {config.host}:{service.port} with {jobs} job(s) "
              f"(window {config.window_s * 1000.0:.1f}ms, "
              f"max batch {config.max_batch}, "
              f"queue limit {config.queue_limit})", flush=True)
        try:
            await service.wait_shutdown()
        finally:
            await service.stop(stats_path=args.stats_file)
            stats = service.stats_payload()["scheduler"]
            print(f"drained: {stats['completed']} completed, "
                  f"{stats['cache_hits']} cache hits, "
                  f"{stats['batches']} batch(es), "
                  f"{stats['rejected']} rejected", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import ServiceConfig
    from repro.service.client import ServiceClient
    from repro.service.loadgen import default_mix, run_loadgen

    config = ServiceConfig.from_env().override(host=args.host, port=args.port)

    async def _drive():
        report = await run_loadgen(
            config.host, config.port,
            requests=args.requests, concurrency=args.concurrency,
            mode=args.mode, rate=args.rate, mix=default_mix(args.mix),
            wait_health_s=args.wait_health,
        )
        if args.shutdown:
            async with await ServiceClient.connect(
                config.host, config.port
            ) as client:
                await client.shutdown()
        return report

    report = asyncio.run(_drive())
    print(report.describe())
    if args.json_out:
        report.write_json(args.json_out)
        print(f"wrote {args.json_out}")
    failures = []
    if args.expect_hit_rate is not None:
        measured = report.hit_rate
        if measured is None or measured < args.expect_hit_rate - 1e-9:
            shown = "n/a" if measured is None else f"{measured:.3f}"
            failures.append(
                f"hit-rate {shown} below expected "
                f"{args.expect_hit_rate:.3f}"
            )
    if args.expect_zero_errors and (report.errors or report.rejected):
        failures.append(
            f"{report.errors} error(s) and {report.rejected} rejection(s); "
            f"expected none"
        )
    if failures:
        raise ReproError("; ".join(failures))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import repro
    from repro.errors import LintError
    from repro.lint import (
        DEFAULT_BASELINE_PATH,
        DEFAULT_CACHE_PATH,
        AnalysisCache,
        Baseline,
        LintEngine,
        git_changed_paths,
        render_explain,
        render_json,
        render_sarif,
        render_text,
        select_rules,
    )
    from repro.lint.rules import SYNTAX_RULE_ID, all_rules

    if args.explain is not None:
        selectors = args.explain.split(",")
        if args.explain.strip().lower() == "all":
            chosen = all_rules()
        else:
            chosen = select_rules(selectors)
        print(render_explain(chosen))
        if any(s.strip() == SYNTAX_RULE_ID for s in selectors) \
                or args.explain.strip().lower() == "all":
            from repro.lint.report import _SYNTAX_RULE_EXPLANATION

            print()
            print(_SYNTAX_RULE_EXPLANATION)
        return 0

    rules = None
    if args.select:
        rules = select_rules(args.select.split(","))
    paths: list = args.paths or [os.path.dirname(repro.__file__)]
    if args.changed:
        try:
            paths = git_changed_paths(paths)
        except LintError as exc:
            # No git, no commits, detached tmpdir: degrade to a full
            # scan rather than surfacing a subprocess error.
            print(f"warning: {exc}; falling back to a full scan",
                  file=sys.stderr)

    if args.hot_report:
        from repro.lint.hotpath import hot_region, load_project, render_hot_report

        print(render_hot_report(hot_region(load_project(paths))))
        return 0

    cache = None
    if args.lint_cache is not None:
        cache = AnalysisCache(args.lint_cache or DEFAULT_CACHE_PATH)
    engine = LintEngine(rules, cache=cache)
    findings = engine.run(paths)
    if args.stats:
        stats = engine.stats
        print(
            f"lint stats: files={stats.files} parsed={stats.parsed} "
            f"analyzed={stats.analyzed} reused={stats.reused} "
            f"full_hit={str(stats.full_hit).lower()}",
            file=sys.stderr,
        )

    if args.update_baseline:
        baseline_path = args.baseline or DEFAULT_BASELINE_PATH
        previous = Baseline.load(baseline_path)
        pruned = len(previous.dead_entries(findings, engine.linted_displays))
        updated = previous.updated(findings, engine.linted_displays)
        updated.save(baseline_path)
        print(f"baseline {baseline_path}: accepted {len(findings)} "
              f"finding(s), pruned {pruned} stale fingerprint(s), "
              f"{len(updated)} total accepted")
        return 0

    baselined = 0
    dead: list = []
    if args.baseline is not None:
        baseline = Baseline.load(args.baseline or DEFAULT_BASELINE_PATH)
        if args.strict_baseline:
            dead = baseline.dead_entries(findings, engine.linted_displays)
        findings, baselined = baseline.filter_new(findings)

    executed = engine.executed_rule_ids
    if args.format_ == "json":
        rendered = render_json(findings, rules=executed)
    elif args.format_ == "sarif":
        rendered = render_sarif(findings, executed_rules=executed)
    else:
        rendered = render_text(findings)
        if baselined:
            rendered += f"\n({baselined} baselined finding(s) not shown)"
    print(rendered)
    for path, rule, message, excess in dead:
        print(f"stale baseline entry ({excess} unused): {path}: {rule} "
              f"{message}", file=sys.stderr)
    if dead:
        print(f"{len(dead)} stale baseline fingerprint(s); run "
              "'repro lint --update-baseline' to prune them",
              file=sys.stderr)
    return 1 if findings or dead else 0


_COMMANDS: dict[str, Callable[[argparse.Namespace], int]] = {
    "list": lambda args: _cmd_list(),
    "run": _cmd_run,
    "experiment": _cmd_experiment,
    "trace": _cmd_trace,
    "traces": _cmd_traces,
    "profile": _cmd_profile,
    "classify": _cmd_classify,
    "interference": _cmd_interference,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit status.

    Library failures (any :class:`ReproError`) and file-system errors
    surface as one clean ``error:`` line on stderr with exit status 1;
    tracebacks are reserved for actual programming errors.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS.get(args.command)
    if handler is None:
        raise AssertionError(f"unhandled command {args.command!r}")
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
