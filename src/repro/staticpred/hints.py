"""The static hint database.

The paper runs in two phases: "The first phase was the selection phase
where we decided which branches from our test programs will be predicted
statically and what their static predictions should be.  We recorded the
decision of this selection phase in a database.  The second phase was the
actual simulation of a dynamic predictor that used static hints from the
previously generated database."

:class:`HintAssignment` is that database: a mapping from branch address
to :class:`~repro.arch.isa.HintBits`, tagged with the scheme that
produced it, JSON-persistable, and applicable to a
:class:`~repro.arch.program.Program` (the Spike rewrite step).
"""

from __future__ import annotations

import json
from typing import Iterator, Mapping

from repro.arch.isa import HintBits
from repro.arch.program import Program
from repro.errors import ProfileError

__all__ = ["HintAssignment"]


class HintAssignment:
    """Static hints for one program, produced by one selection scheme."""

    def __init__(
        self,
        program_name: str,
        scheme: str,
        hints: Mapping[int, HintBits] | None = None,
    ):
        self.program_name = program_name
        self.scheme = scheme
        self.hints: dict[int, HintBits] = dict(hints or {})

    def __len__(self) -> int:
        return len(self.hints)

    def __contains__(self, address: int) -> bool:
        return address in self.hints

    def __iter__(self) -> Iterator[int]:
        return iter(self.hints)

    def get(self, address: int) -> HintBits | None:
        """Hints for an address, or None for dynamic-only branches."""
        return self.hints.get(address)

    def set(self, address: int, hint: HintBits) -> None:
        """Install hints for one branch address."""
        self.hints[address] = hint

    def static_addresses(self) -> list[int]:
        """Addresses marked for static prediction."""
        return [a for a, h in self.hints.items() if h.use_static]

    def static_count(self) -> int:
        """Number of statically predicted branches."""
        return sum(1 for h in self.hints.values() if h.use_static)

    def lookup_table(self) -> dict[int, bool]:
        """address -> static direction, for statically predicted branches.

        This is the flat dict the hot simulation loop consults; building
        it once keeps :class:`HintBits` objects out of the loop.
        """
        return {a: h.direction for a, h in self.hints.items() if h.use_static}

    def apply_to(self, program: Program) -> int:
        """Stamp the hints onto a program's branch sites (Spike rewrite).

        Returns the number of sites rewritten.  Addresses in the
        assignment that the program does not contain are ignored: a
        profile can legitimately mention branches from a different build.
        """
        rewritten = 0
        for site in program.sites:
            hint = self.hints.get(site.address)
            if hint is not None:
                site.hints = hint
                rewritten += 1
        return rewritten

    # -- persistence ---------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(
            {
                "program": self.program_name,
                "scheme": self.scheme,
                "hints": {
                    format(address, "x"): hint.encode()
                    for address, hint in self.hints.items()
                },
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "HintAssignment":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
            hints = {
                int(address, 16): HintBits.decode(bits)
                for address, bits in data["hints"].items()
            }
            return cls(data["program"], data["scheme"], hints)
        except (KeyError, ValueError, TypeError) as exc:
            raise ProfileError(f"malformed hint JSON: {exc}") from exc

    def save(self, path: str) -> None:
        """Write the assignment to a JSON file."""
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "HintAssignment":
        """Read an assignment from a JSON file."""
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_json(stream.read())

    def __repr__(self) -> str:
        return (
            f"<HintAssignment {self.program_name}/{self.scheme}: "
            f"{self.static_count()} static of {len(self.hints)}>"
        )
