"""Static branch prediction: hint assignment and selection schemes.

The paper's contribution is *which branches to predict statically* and
how the static hints interact with a dynamic predictor.  This subpackage
provides:

* :mod:`repro.staticpred.hints` -- the hint database produced by the
  selection phase (address -> hint bits, with persistence);
* :mod:`repro.staticpred.selection` -- the selection schemes:
  ``Static_95`` (bias above a cutoff), ``Static_Acc`` (bias above the
  dynamic predictor's per-branch accuracy), and ``Static_Fac`` (the
  single-iteration factor variant of Lindsay's scheme).
"""

from repro.staticpred.hints import HintAssignment
from repro.staticpred.iterative import select_static_iterative
from repro.staticpred.selection import (
    select_static_95,
    select_static_acc,
    select_static_collision,
    select_static_fac,
    SELECTION_SCHEMES,
)

__all__ = [
    "HintAssignment",
    "select_static_95",
    "select_static_acc",
    "select_static_fac",
    "select_static_collision",
    "select_static_iterative",
    "SELECTION_SCHEMES",
]
