"""Iterative static selection (Lindsay's full scheme).

Section 3 of the paper: "In Lindsay's work the selection of branches to
be predicted statically was with an iterative process involving profiling
and simulations.  One of the static selection schemes we studied
(Static_Fac) is a simpler, single iteration, version of Lindsay's
scheme."

The paper only evaluates the single-iteration simplification; this module
implements the full loop as an extension:

1. start with no static hints;
2. simulate the *combined* predictor (current hints + dynamic predictor)
   over the profiling trace, measuring the dynamic side's per-branch
   accuracy under the current hint set;
3. add hints for branches whose bias exceeds that accuracy;
4. repeat until a fixpoint (no new selections) or a round limit.

Iterating matters because statically predicting one set of branches
*changes* the dynamic predictor's accuracy on the rest: aliasing relief
can make a previously hard branch easy (so it should not be selected
after all... the loop is monotone -- hints are only added -- so instead
the effect appears as the loop converging early), and conversely
previously masked conflicts can surface and justify another round.
"""

from __future__ import annotations

from typing import Callable

from repro.arch.isa import HintBits, ShiftPolicy
from repro.errors import SelectionError
from repro.predictors.base import BranchPredictor
from repro.profiling.profile import ProgramProfile
from repro.staticpred.hints import HintAssignment
from repro.staticpred.selection import DEFAULT_MIN_EXECUTIONS
from repro.workloads.trace import BranchTrace

__all__ = ["select_static_iterative"]


def _combined_dynamic_accuracy(
    trace: BranchTrace,
    predictor_factory: Callable[[], BranchPredictor],
    hints: HintAssignment,
) -> dict[int, tuple[int, int]]:
    """Per-branch (executions, correct) of the *dynamic* side under hints.

    Statically predicted branches are excluded -- their accuracy is their
    bias by construction and they are already selected.
    """
    # Imported here rather than at module level: repro.core imports the
    # staticpred package (for HintAssignment), so a top-level import
    # would be circular.
    from repro.core.combined import CombinedPredictor

    combined = CombinedPredictor(
        predictor_factory(), hints, shift_policy=ShiftPolicy.NO_SHIFT
    )
    counts: dict[int, list[int]] = {}
    predict = combined.predict
    update = combined.update
    addresses = trace.addresses
    outcomes = trace.outcomes
    for i in range(len(addresses)):
        address = addresses[i]
        taken = outcomes[i]
        predicted = predict(address)
        was_static = combined.last_was_static
        update(address, taken, predicted)
        if was_static:
            continue
        entry = counts.get(address)
        if entry is None:
            counts[address] = [1, 1 if predicted == taken else 0]
        else:
            entry[0] += 1
            if predicted == taken:
                entry[1] += 1
    return {a: (c[0], c[1]) for a, c in counts.items()}


def select_static_iterative(
    profile_trace: BranchTrace,
    predictor_factory: Callable[[], BranchPredictor],
    max_rounds: int = 4,
    min_executions: int = DEFAULT_MIN_EXECUTIONS,
    profile: ProgramProfile | None = None,
) -> HintAssignment:
    """Run Lindsay's iterative select-simulate loop to a fixpoint.

    Round one is exactly ``Static_Acc``; later rounds re-simulate with
    the accumulated hints and add branches whose bias still beats the
    dynamic side's (now relieved) accuracy.  Returns the accumulated
    assignment, whose scheme name records the number of rounds run.
    """
    if max_rounds < 1:
        raise SelectionError(f"max_rounds must be >= 1, got {max_rounds}")
    if profile is None:
        profile = ProgramProfile.from_trace(profile_trace)
    predictor_name = predictor_factory().name
    hints = HintAssignment(
        profile.program_name, f"static_iter({predictor_name},r0)"
    )
    rounds_run = 0
    for _round in range(max_rounds):
        accuracy = _combined_dynamic_accuracy(
            profile_trace, predictor_factory, hints
        )
        added = 0
        for address, branch in profile.items():
            if address in hints:
                continue
            if branch.executions < min_executions:
                continue
            record = accuracy.get(address)
            if record is None:
                continue
            executions, correct = record
            if executions == 0:
                continue
            if branch.bias > correct / executions:
                hints.set(address, HintBits.static(branch.majority_taken))
                added += 1
        rounds_run += 1
        if added == 0:
            break
    hints.scheme = f"static_iter({predictor_name},r{rounds_run})"
    return hints
