"""Static-selection schemes: which branches get static hints.

Section 4 of the paper targets two branch populations:

1. **Easy branches** (``Static_95``): "any branch with a bias higher than
   a pre-selected cut-off bias was selected for static prediction.  The
   actual static prediction for the branch was set to the direction of
   the bias."  Selecting them frees dynamic-table capacity.
2. **Hard branches** (``Static_Acc``): "we selected those branches for
   static prediction for which the biases of the branches were higher
   than their prediction accuracies" under a simulated dynamic predictor
   -- if the dynamic predictor does worse than the branch's bias, a fixed
   majority-direction prediction cannot lose.

``Static_Fac`` is our single-iteration reading of Lindsay's scheme (the
paper: "One of the static selection schemes we studied (Static_Fac) is a
simpler, single iteration, version of Lindsay's scheme"): like
``Static_Acc`` but requiring the bias to beat the accuracy by a margin
factor, trading fewer selections for higher confidence.

Every selector takes a minimum execution count: branches observed only a
handful of times have meaningless bias estimates, and a real executable
optimizer would not burn a hint on them.
"""

from __future__ import annotations

from repro.arch.isa import HintBits
from repro.errors import SelectionError
from repro.profiling.accuracy import AccuracyProfile
from repro.profiling.collision_profile import CollisionProfile
from repro.profiling.profile import ProgramProfile
from repro.staticpred.hints import HintAssignment

__all__ = [
    "select_static_95",
    "select_static_acc",
    "select_static_fac",
    "select_static_collision",
    "SELECTION_SCHEMES",
]

DEFAULT_MIN_EXECUTIONS = 16
"""Branches executed fewer times than this are never selected."""


def select_static_95(
    profile: ProgramProfile,
    cutoff: float = 0.95,
    min_executions: int = DEFAULT_MIN_EXECUTIONS,
    shift_history: bool = False,
) -> HintAssignment:
    """Select highly biased branches (the paper's ``Static_95``).

    Independent of any dynamic predictor, so a single assignment serves
    every predictor in Figures 7-12.  ``cutoff`` is exclusive, matching
    the paper's "bias greater than 95%".
    """
    if not 0.5 <= cutoff < 1.0:
        raise SelectionError(f"cutoff must be in [0.5, 1), got {cutoff}")
    scheme = f"static_{int(round(cutoff * 100))}"
    assignment = HintAssignment(profile.program_name, scheme)
    for address, branch in profile.items():
        if branch.executions < min_executions:
            continue
        if branch.bias > cutoff:
            assignment.set(
                address,
                HintBits.static(branch.majority_taken, shift_history=shift_history),
            )
    return assignment


def select_static_acc(
    profile: ProgramProfile,
    accuracy: AccuracyProfile,
    min_executions: int = DEFAULT_MIN_EXECUTIONS,
    shift_history: bool = False,
) -> HintAssignment:
    """Select branches whose bias beats the dynamic predictor's accuracy
    (the paper's ``Static_Acc``).

    "The motivation being that by using the dominant biases of those
    branches as static prediction hints final prediction accuracies for
    those branches will never be worse."
    """
    return _select_by_accuracy(
        profile, accuracy, factor=1.0, min_executions=min_executions,
        scheme=f"static_acc({accuracy.predictor_name})",
        shift_history=shift_history,
    )


def select_static_fac(
    profile: ProgramProfile,
    accuracy: AccuracyProfile,
    factor: float = 1.05,
    min_executions: int = DEFAULT_MIN_EXECUTIONS,
    shift_history: bool = False,
) -> HintAssignment:
    """``Static_Fac``: bias must beat accuracy by a margin factor.

    ``factor`` > 1 selects fewer, safer branches; exactly 1.0 degenerates
    to ``Static_Acc``.
    """
    if factor < 1.0:
        raise SelectionError(f"factor must be >= 1, got {factor}")
    return _select_by_accuracy(
        profile, accuracy, factor=factor, min_executions=min_executions,
        scheme=f"static_fac({accuracy.predictor_name},{factor:g})",
        shift_history=shift_history,
    )


def _select_by_accuracy(
    profile: ProgramProfile,
    accuracy: AccuracyProfile,
    factor: float,
    min_executions: int,
    scheme: str,
    shift_history: bool,
) -> HintAssignment:
    if accuracy.program_name != profile.program_name:
        raise SelectionError(
            f"accuracy profile is for {accuracy.program_name!r} but bias "
            f"profile is for {profile.program_name!r}"
        )
    assignment = HintAssignment(profile.program_name, scheme)
    for address, branch in profile.items():
        if branch.executions < min_executions:
            continue
        record = accuracy.get(address)
        if record is None:
            # The dynamic predictor was never measured on this branch
            # (different run lengths); without evidence it is hard to
            # predict, leave it dynamic.
            continue
        if branch.bias > record.accuracy * factor:
            assignment.set(
                address,
                HintBits.static(branch.majority_taken, shift_history=shift_history),
            )
    return assignment


def select_static_collision(
    profile: ProgramProfile,
    collisions: CollisionProfile,
    min_bias: float = 0.90,
    min_destructive_rate: float = 0.01,
    min_executions: int = DEFAULT_MIN_EXECUTIONS,
    shift_history: bool = False,
) -> HintAssignment:
    """Collision-aware selection -- the paper's flagged future-work idea.

    "We want to predict only those branches statically that will boost
    constructive collisions and reduce destructive collisions."  A branch
    is selected when it is both

    * heavily involved in destructive collisions (as victim or
      aggressor, at least ``min_destructive_rate`` charges per
      execution), so removing it from the tables relieves real aliasing
      pain, and
    * biased enough (``min_bias``) that a fixed majority-direction hint
      is cheap.

    Requires a :class:`~repro.profiling.collision_profile.CollisionProfile`
    from a phase-one instrumented simulation of the same dynamic
    predictor configuration.
    """
    if not 0.5 <= min_bias < 1.0:
        raise SelectionError(f"min_bias must be in [0.5, 1), got {min_bias}")
    if min_destructive_rate < 0.0:
        raise SelectionError(
            f"min_destructive_rate must be >= 0, got {min_destructive_rate}"
        )
    if collisions.program_name != profile.program_name:
        raise SelectionError(
            f"collision profile is for {collisions.program_name!r} but bias "
            f"profile is for {profile.program_name!r}"
        )
    scheme = f"static_collision({collisions.predictor_name})"
    assignment = HintAssignment(profile.program_name, scheme)
    for address, branch in profile.items():
        if branch.executions < min_executions:
            continue
        if branch.bias < min_bias:
            continue
        if collisions.destructive_rate_of(address) >= min_destructive_rate:
            assignment.set(
                address,
                HintBits.static(branch.majority_taken, shift_history=shift_history),
            )
    return assignment


SELECTION_SCHEMES = (
    "none", "static_95", "static_acc", "static_fac",
    "static_collision", "static_iter",
)
"""Scheme names used by experiments and the CLI ("none" = pure dynamic).

``static_collision`` (the paper's future-work idea) and ``static_iter``
(Lindsay's full iterative scheme, see
:mod:`repro.staticpred.iterative`) are this library's extensions."""
