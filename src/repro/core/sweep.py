"""Parameter sweeps over predictor size and static scheme.

Thin, cache-free building blocks used by the experiment runners in
:mod:`repro.experiments` (which add workload/trace caching on top).
Each function takes explicit traces so self-trained versus cross-trained
setups stay visible at the call site.
"""

from __future__ import annotations

import functools
from typing import Callable, Sequence

from repro.arch.isa import ShiftPolicy
from repro.core.metrics import SimulationResult
from repro.core.simulator import run_combined, run_selection_phase, simulate
from repro.predictors.base import BranchPredictor
from repro.predictors.sizing import make_predictor
from repro.workloads.trace import BranchTrace

__all__ = ["run_configuration", "size_sweep"]


def run_configuration(
    profile_trace: BranchTrace,
    measure_trace: BranchTrace,
    predictor_name: str,
    size_bytes: int,
    scheme: str,
    shift_policy: ShiftPolicy = ShiftPolicy.NO_SHIFT,
    track_collisions: bool = False,
    predictor_kwargs: dict | None = None,
    **selection_kwargs,
) -> SimulationResult:
    """Run one full (selection phase + measurement phase) configuration.

    ``profile_trace`` feeds the selection phase; ``measure_trace`` is
    what MISPs/KI is reported on.  Self-trained experiments pass the same
    trace for both.
    """
    kwargs = predictor_kwargs or {}
    # functools.partial rather than a lambda so a bound configuration
    # stays picklable -- the parallel runner ships these across workers.
    factory: Callable[[], BranchPredictor] = functools.partial(
        make_predictor, predictor_name, size_bytes, **kwargs
    )
    if scheme == "none":
        return simulate(
            measure_trace, factory(), scheme="none",
            track_collisions=track_collisions,
        )
    hints = run_selection_phase(
        profile_trace, scheme, predictor_factory=factory, **selection_kwargs
    )
    return run_combined(
        measure_trace, factory(), hints,
        shift_policy=shift_policy, track_collisions=track_collisions,
    )


def size_sweep(
    profile_trace: BranchTrace,
    measure_trace: BranchTrace,
    predictor_name: str,
    sizes: Sequence[int],
    schemes: Sequence[str] = ("none",),
    shift_policy: ShiftPolicy = ShiftPolicy.NO_SHIFT,
    track_collisions: bool = False,
    **selection_kwargs,
) -> dict[str, list[SimulationResult]]:
    """Sweep predictor sizes for each scheme (the Figures 1-6 shape).

    Returns ``{scheme: [result per size, in input order]}``.  The
    selection phase runs per (scheme, size) because ``Static_Acc``'s
    hint set legitimately depends on the simulated predictor's size.
    """
    results: dict[str, list[SimulationResult]] = {scheme: [] for scheme in schemes}
    for scheme in schemes:
        for size in sizes:
            results[scheme].append(
                run_configuration(
                    profile_trace,
                    measure_trace,
                    predictor_name,
                    size,
                    scheme,
                    shift_policy=shift_policy,
                    track_collisions=track_collisions,
                    **selection_kwargs,
                )
            )
    return results
