"""Simulation result records.

The paper's metric is **MISPs/KI** -- conditional-branch mispredictions
per thousand instructions executed -- argued to be more honest than raw
prediction accuracy "as the latter can be deceptive if the test programs
have too few or unevenly distributed branches".  Both are recorded here,
along with the static/dynamic split and collision counts when the run
was instrumented for them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.predictors.collisions import CollisionCounts

__all__ = ["SimulationResult", "improvement"]


@dataclass(slots=True)
class SimulationResult:
    """Outcome of simulating one predictor over one trace."""

    program_name: str
    input_name: str
    predictor_name: str
    scheme: str
    """Static scheme in effect ("none" for pure dynamic)."""
    size_bytes: float
    branches: int
    instructions: int
    mispredictions: int
    static_branches: int = 0
    """Dynamic branch executions resolved by a static hint."""
    static_mispredictions: int = 0
    collisions: CollisionCounts | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def misp_per_ki(self) -> float:
        """Mispredictions per thousand instructions (the paper's metric)."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions

    @property
    def accuracy(self) -> float:
        """Overall prediction accuracy.

        An empty run (zero branches) has no mispredictions, so it is
        vacuously 100% accurate -- not 0%, which would make an empty
        trace look like a catastrophically bad predictor.
        """
        if self.branches == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.branches

    @property
    def cbrs_per_ki(self) -> float:
        """Branch density of the measured trace."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.branches / self.instructions

    @property
    def dynamic_branches(self) -> int:
        """Branch executions that consulted the dynamic predictor."""
        return self.branches - self.static_branches

    @property
    def static_fraction(self) -> float:
        """Fraction of dynamic branch executions handled statically."""
        if self.branches == 0:
            return 0.0
        return self.static_branches / self.branches

    @property
    def static_accuracy(self) -> float:
        """Accuracy over the statically predicted executions.

        Vacuously 1.0 when no execution was handled statically (see
        :attr:`accuracy` for the rationale).
        """
        if self.static_branches == 0:
            return 1.0
        return 1.0 - self.static_mispredictions / self.static_branches

    def describe(self) -> str:
        """One-line summary for logs and examples."""
        parts = [
            f"{self.program_name}/{self.input_name}",
            f"{self.predictor_name}@{int(self.size_bytes)}B",
            f"scheme={self.scheme}",
            f"MISP/KI={self.misp_per_ki:.2f}",
            f"acc={self.accuracy:.4f}",
        ]
        if self.static_branches:
            parts.append(f"static={self.static_fraction:.1%}")
        if self.collisions is not None:
            parts.append(
                f"collisions={self.collisions.collisions} "
                f"(destructive={self.collisions.destructive})"
            )
        return " ".join(parts)

    # -- persistence (the runner's on-disk result cache) -----------------

    def to_dict(self) -> dict:
        """JSON-safe dict representation; inverse of :meth:`from_dict`."""
        data = {
            "program_name": self.program_name,
            "input_name": self.input_name,
            "predictor_name": self.predictor_name,
            "scheme": self.scheme,
            "size_bytes": self.size_bytes,
            "branches": self.branches,
            "instructions": self.instructions,
            "mispredictions": self.mispredictions,
            "static_branches": self.static_branches,
            "static_mispredictions": self.static_mispredictions,
            "metadata": dict(self.metadata),
        }
        if self.collisions is not None:
            data["collisions"] = {
                "lookups": self.collisions.lookups,
                "collisions": self.collisions.collisions,
                "constructive": self.collisions.constructive,
                "destructive": self.collisions.destructive,
            }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        Raises :class:`~repro.errors.ReproError` on malformed payloads so
        a corrupt cache entry surfaces as a clean error, not a KeyError.
        """
        try:
            collisions = None
            raw = data.get("collisions")
            if raw is not None:
                collisions = CollisionCounts(
                    lookups=int(raw["lookups"]),
                    collisions=int(raw["collisions"]),
                    constructive=int(raw["constructive"]),
                    destructive=int(raw["destructive"]),
                )
            return cls(
                program_name=data["program_name"],
                input_name=data["input_name"],
                predictor_name=data["predictor_name"],
                scheme=data["scheme"],
                size_bytes=data["size_bytes"],
                branches=int(data["branches"]),
                instructions=int(data["instructions"]),
                mispredictions=int(data["mispredictions"]),
                static_branches=int(data["static_branches"]),
                static_mispredictions=int(data["static_mispredictions"]),
                collisions=collisions,
                metadata=dict(data.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed SimulationResult payload: {exc}") from exc


def improvement(base: SimulationResult, improved: SimulationResult) -> float:
    """Fractional MISPs/KI improvement of ``improved`` over ``base``.

    Positive = fewer mispredictions (better), matching the sign
    convention of the paper's Tables 3 and 4; a value of 0.14 is the
    paper's "14%".

    A zero-misprediction baseline cannot be improved on fractionally:
    against it, an equally perfect run reports 0.0 and a *worse* run
    reports ``-math.inf`` -- a signed sentinel, so regressions against a
    perfect baseline can no longer hide behind a silent 0.0.  Render
    with :func:`repro.utils.tables.format_improvement`, which spells the
    sentinel out.
    """
    base_misp = base.misp_per_ki
    if base_misp == 0.0:
        return 0.0 if improved.misp_per_ki == 0.0 else -math.inf
    return (base_misp - improved.misp_per_ki) / base_misp
