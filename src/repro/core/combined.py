"""The combined static + dynamic predictor (the paper's hardware model).

Section 4: "We assume that static prediction can be conveyed to the
hardware using two hint bits ... one of the bits describes the static
prediction and the processor chooses between the static and dynamic
prediction depending on the other hint bit."

For a branch whose hint says *use static*:

* the prediction is the hint's direction bit, fixed for the whole run;
* the dynamic predictor is **neither looked up nor updated** -- that is
  the whole point: the branch stops competing for dynamic counters;
* the branch's resolved outcome is shifted into the dynamic predictor's
  global history register only under the active
  :class:`~repro.arch.isa.ShiftPolicy` (Table 4 studies this knob; the
  paper's default is NO_SHIFT).

Everything else flows through to the wrapped dynamic predictor, so a
``CombinedPredictor`` satisfies the same
:class:`~repro.predictors.base.BranchPredictor` protocol and can be
simulated, collision-instrumented, and swept like any dynamic scheme.
"""

from __future__ import annotations

from repro.arch.isa import ShiftPolicy
from repro.errors import ConfigurationError
from repro.predictors.base import BranchPredictor
from repro.staticpred.hints import HintAssignment

__all__ = ["CombinedPredictor"]


class CombinedPredictor(BranchPredictor):
    """A dynamic predictor gated by per-branch static hints."""

    def __init__(
        self,
        dynamic: BranchPredictor,
        hints: HintAssignment,
        shift_policy: ShiftPolicy = ShiftPolicy.NO_SHIFT,
    ):
        if not isinstance(shift_policy, ShiftPolicy):
            raise ConfigurationError(
                f"shift_policy must be a ShiftPolicy, got {shift_policy!r}"
            )
        self.dynamic = dynamic
        self.hint_assignment = hints
        self.shift_policy = shift_policy
        self.name = f"{dynamic.name}+{hints.scheme}"
        if shift_policy is not ShiftPolicy.NO_SHIFT:
            self.name += f"+{shift_policy.value}"
        # Flat lookup tables for the hot path.
        self._static_direction: dict[int, bool] = hints.lookup_table()
        self._static_shift: dict[int, bool] = {
            a: h.shift_history
            for a, h in hints.hints.items()
            if h.use_static
        }
        # Stats the simulator reads back after a run.
        self.static_lookups = 0
        self.static_mispredictions = 0
        self._last_was_static = False

    @property
    def last_was_static(self) -> bool:
        """Whether the most recent predict() used a static hint."""
        return self._last_was_static

    def predict(self, address: int) -> bool:
        direction = self._static_direction.get(address)
        if direction is None:
            self._last_was_static = False
            return self.dynamic.predict(address)
        self._last_was_static = True
        self.static_lookups += 1
        return direction

    def update(self, address: int, taken: bool, predicted: bool) -> None:
        """Train on a resolved branch.

        Whether the branch is statically handled is re-resolved from the
        hint table rather than from predict-time state: the hint set is
        fixed for a run, so routing by address keeps ``update`` correct
        even if a caller skips ``predict`` (speculative squash) or calls
        ``update`` twice for one lookup.  The old behaviour -- trusting a
        ``_last_was_static`` flag left behind by ``predict`` -- trained
        the dynamic predictor on statically handled branches (or vice
        versa) whenever the predict/update pairing broke.
        """
        direction = self._static_direction.get(address)
        if direction is None:
            self.dynamic.update(address, taken, predicted)
            return
        # Static branches always predict their (run-constant) hint
        # direction, so the misprediction check uses it directly rather
        # than whatever stale value the caller passed back.
        if direction != taken:
            self.static_mispredictions += 1
        policy = self.shift_policy
        if policy is ShiftPolicy.SHIFT:
            self.dynamic.shift_history(taken)
        elif policy is ShiftPolicy.PER_BRANCH and self._static_shift.get(address):
            self.dynamic.shift_history(taken)

    def shift_history(self, taken: bool) -> None:
        self.dynamic.shift_history(taken)

    @property
    def size_bytes(self) -> float:
        """Dynamic hardware only; hint bits live in the instruction
        encoding, which is the scheme's hardware selling point."""
        return self.dynamic.size_bytes

    def table_entry_counts(self) -> list[int]:
        return self.dynamic.table_entry_counts()

    def accessed(self) -> list[tuple[int, int]]:
        """Counters touched by the last lookup: none for static branches."""
        if self._last_was_static:
            return []
        return self.dynamic.accessed()

    def static_count(self) -> int:
        """Number of statically predicted static branches."""
        return len(self._static_direction)

    def reset(self) -> None:
        self.dynamic.reset()
        self.static_lookups = 0
        self.static_mispredictions = 0
        self._last_was_static = False
