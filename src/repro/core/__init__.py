"""The paper's primary contribution: combined static + dynamic prediction.

* :mod:`repro.core.combined` -- :class:`CombinedPredictor`, a dynamic
  predictor wrapped with a static hint database and a history-shift
  policy (the hardware model of Section 4);
* :mod:`repro.core.simulator` -- the simulation driver: run a trace
  through a predictor, collect MISPs/KI and collision statistics, and
  the two-phase (selection, then measurement) orchestration;
* :mod:`repro.core.metrics` -- result records;
* :mod:`repro.core.sweep` -- parameter sweeps over sizes, schemes, and
  programs used by the figure/table experiments.
"""

from repro.core.combined import CombinedPredictor
from repro.core.metrics import SimulationResult
from repro.core.simulator import (
    simulate,
    run_selection_phase,
    run_combined,
)

__all__ = [
    "CombinedPredictor",
    "SimulationResult",
    "simulate",
    "run_selection_phase",
    "run_combined",
]
