"""Simulation driver: traces through predictors, in the paper's two phases.

* :func:`simulate` -- run one trace through one predictor, producing a
  :class:`~repro.core.metrics.SimulationResult` (optionally with the
  tag-based collision instrumentation of Figures 1-6).
* :func:`run_selection_phase` -- phase one: profile a trace (and, for the
  accuracy-based schemes, simulate the dynamic predictor over it) and
  produce a :class:`~repro.staticpred.hints.HintAssignment`.
* :func:`run_combined` -- phase two: wrap a fresh dynamic predictor with
  the hints and measure on the measurement trace.

Keeping the phases as separate functions keeps "self-trained" versus
"cross-trained" experiments honest: the caller explicitly chooses which
trace feeds selection and which feeds measurement.
"""

from __future__ import annotations

from typing import Callable

from repro.arch.isa import ShiftPolicy
from repro.core.combined import CombinedPredictor
from repro.core.metrics import SimulationResult
from repro.errors import SelectionError
from repro.kernels import try_fast_simulate, validate_kernel_mode
from repro.predictors.base import BranchPredictor
from repro.predictors.collisions import CollisionTracker
from repro.profiling.accuracy import measure_accuracy
from repro.profiling.collision_profile import measure_collision_involvement
from repro.profiling.profile import ProgramProfile
from repro.staticpred.hints import HintAssignment
from repro.staticpred.selection import (
    select_static_95,
    select_static_acc,
    select_static_collision,
    select_static_fac,
)
from repro.workloads.trace import BranchTrace

__all__ = ["simulate", "run_selection_phase", "run_combined"]


def _reference_loop(
    trace: BranchTrace,
    predictor: BranchPredictor,
    tracker: CollisionTracker | None,
) -> int:
    """The per-branch ``predict``/``update`` loop; returns mispredictions.

    This is the semantic definition every fast kernel must match
    bit-for-bit, and the only loop body in the simulator: collision
    instrumentation hangs off the optional ``tracker`` rather than
    duplicating the loop.
    """
    addresses = trace.addresses
    outcomes = trace.outcomes
    predict = predictor.predict
    update = predictor.update
    observe = tracker.observe_lookup if tracker is not None else None
    classify = tracker.classify if tracker is not None else None
    mispredictions = 0
    # repro: allow[PERF001] -- this IS the semantic reference the fast
    # kernels must match bit-for-bit; it stays scalar by definition
    for i in range(len(addresses)):
        address = addresses[i]
        taken = outcomes[i]
        predicted = predict(address)
        collisions = observe(address) if observe is not None else None
        update(address, taken, predicted)
        correct = predicted == taken
        if not correct:
            mispredictions += 1
        if classify is not None:
            classify(collisions, correct)
    return mispredictions


def simulate(
    trace: BranchTrace,
    predictor: BranchPredictor,
    scheme: str = "none",
    track_collisions: bool = False,
    kernel: str = "auto",
) -> SimulationResult:
    """Run ``trace`` through ``predictor`` and collect statistics.

    The predictor is trained in place; pass a fresh instance for
    independent measurements.  With ``track_collisions`` every counter
    lookup is tag-checked (slower; used by the Figures 1-6 sweep).

    ``kernel`` selects the execution strategy (see :mod:`repro.kernels`
    for the modes and the bit-identical contract); it never changes a
    result, only how fast it is produced.  Collision tracking observes
    every individual lookup, so it always runs the reference loop.
    """
    validate_kernel_mode(kernel)
    tracker = CollisionTracker(predictor) if track_collisions else None

    mispredictions = None
    if tracker is None and kernel != "reference":
        mispredictions = try_fast_simulate(
            trace, predictor, require=kernel == "fast"
        )
    if mispredictions is None:
        mispredictions = _reference_loop(trace, predictor, tracker)
    collision_counts = tracker.counts if tracker is not None else None

    static_branches = 0
    static_mispredictions = 0
    if isinstance(predictor, CombinedPredictor):
        static_branches = predictor.static_lookups
        static_mispredictions = predictor.static_mispredictions

    return SimulationResult(
        program_name=trace.program_name,
        input_name=trace.input_name,
        predictor_name=predictor.name,
        scheme=scheme,
        size_bytes=predictor.size_bytes,
        branches=len(trace),
        instructions=trace.instruction_count,
        mispredictions=mispredictions,
        static_branches=static_branches,
        static_mispredictions=static_mispredictions,
        collisions=collision_counts,
    )


def run_selection_phase(
    profile_trace: BranchTrace,
    scheme: str,
    predictor_factory: Callable[[], BranchPredictor] | None = None,
    profile: ProgramProfile | None = None,
    cutoff: float = 0.95,
    factor: float = 1.05,
    min_executions: int | None = None,
    shift_history: bool = False,
) -> HintAssignment:
    """Phase one: produce the static hint database.

    ``scheme`` is one of ``"none"``, ``"static_95"``, ``"static_acc"``,
    ``"static_fac"``.  The accuracy-based schemes simulate a *fresh*
    predictor from ``predictor_factory`` over the profiling trace --
    matching the paper, where the selection simulation uses the same
    dynamic configuration as the measurement run.

    ``profile`` overrides the bias profile (used by cross-training
    experiments that select from a merged/filtered Spike database rather
    than the raw profiling run).
    """
    if profile is None:
        profile = ProgramProfile.from_trace(profile_trace)
    kwargs = {}
    if min_executions is not None:
        kwargs["min_executions"] = min_executions

    if scheme == "none":
        return HintAssignment(profile.program_name, "none")
    if scheme == "static_95":
        return select_static_95(
            profile, cutoff=cutoff, shift_history=shift_history, **kwargs
        )
    if scheme in ("static_acc", "static_fac"):
        if predictor_factory is None:
            raise SelectionError(
                f"scheme {scheme!r} needs a predictor_factory to measure "
                "per-branch dynamic accuracy"
            )
        accuracy = measure_accuracy(profile_trace, predictor_factory())
        if scheme == "static_acc":
            return select_static_acc(
                profile, accuracy, shift_history=shift_history, **kwargs
            )
        return select_static_fac(
            profile, accuracy, factor=factor, shift_history=shift_history, **kwargs
        )
    if scheme == "static_collision":
        if predictor_factory is None:
            raise SelectionError(
                "scheme 'static_collision' needs a predictor_factory to "
                "attribute per-branch collisions"
            )
        collisions = measure_collision_involvement(
            profile_trace, predictor_factory()
        )
        return select_static_collision(
            profile, collisions, shift_history=shift_history, **kwargs
        )
    raise SelectionError(
        f"unknown selection scheme {scheme!r}; expected one of "
        "none, static_95, static_acc, static_fac, static_collision"
    )


def run_combined(
    measure_trace: BranchTrace,
    dynamic: BranchPredictor,
    hints: HintAssignment,
    shift_policy: ShiftPolicy = ShiftPolicy.NO_SHIFT,
    track_collisions: bool = False,
    kernel: str = "auto",
) -> SimulationResult:
    """Phase two: measure the combined predictor on the measurement trace.

    ``kernel`` is passed through to :func:`simulate`; a combined
    predictor has no fast kernel today, so every mode currently runs
    the reference loop, but the knob keeps the call sites uniform.
    """
    combined = CombinedPredictor(dynamic, hints, shift_policy=shift_policy)
    scheme = hints.scheme
    if shift_policy is ShiftPolicy.SHIFT:
        scheme += "+shift"
    return simulate(
        measure_trace,
        combined,
        scheme=scheme,
        track_collisions=track_collisions,
        kernel=kernel,
    )
