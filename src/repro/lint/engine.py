"""File collection, parsing, rule dispatch, and suppression filtering.

The engine is deliberately boring: collect ``.py`` files in sorted
order (the lint output itself must be deterministic — rule DET002 cuts
both ways), parse each once, hand the shared AST to every applicable
file rule, run project rules whose anchor file is present, drop
suppressed findings, and return the rest sorted.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import LintError
from repro.lint.findings import Finding, Severity
from repro.lint.rules import (
    SYNTAX_RULE_ID,
    FileRule,
    ProjectRule,
    _RuleBase,
    all_rules,
)
from repro.lint.suppressions import SuppressionIndex

__all__ = ["FileContext", "ProjectContext", "LintEngine", "run_lint"]

_SKIP_DIR_SUFFIXES = ("__pycache__", ".egg-info")


class FileContext:
    """One parsed module as seen by the rules."""

    __slots__ = ("path", "display", "source", "tree", "suppressions")

    def __init__(self, path: Path, display: str, source: str, tree: ast.AST):
        self.path = path
        self.display = display
        self.source = source
        self.tree = tree
        self.suppressions = SuppressionIndex.from_source(source)

    def matches(self, suffix: str) -> bool:
        """Whether this file's posix path ends with ``suffix``."""
        return self.path.as_posix().endswith(suffix)


class ProjectContext:
    """The whole linted file set, for cross-file rules."""

    def __init__(self, files: Sequence[FileContext]):
        self.files = list(files)

    def find(self, suffix: str) -> FileContext | None:
        """The first file whose path ends with ``suffix``, if any."""
        for ctx in self.files:
            if ctx.matches(suffix):
                return ctx
        return None

    def glob(self, fragment: str) -> list[FileContext]:
        """Every file whose posix path contains ``fragment``."""
        return [ctx for ctx in self.files if fragment in ctx.path.as_posix()]


def collect_files(paths: Iterable[str | os.PathLike]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    collected: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not any(
                    (part.startswith(".") and part not in (".", ".."))
                    or part.endswith(_SKIP_DIR_SUFFIXES)
                    for part in p.parent.parts
                )
            )
        else:
            raise LintError(f"lint path does not exist: {path}")
        for candidate in candidates:
            if candidate.suffix != ".py":
                raise LintError(f"not a Python file: {candidate}")
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return collected


class LintEngine:
    """Run a set of rules over a set of paths."""

    def __init__(self, rules: Sequence[_RuleBase] | None = None):
        self.rules = list(rules) if rules is not None else all_rules()

    def run(self, paths: Iterable[str | os.PathLike]) -> list[Finding]:
        """Lint ``paths`` and return unsuppressed findings, sorted."""
        contexts: list[FileContext] = []
        findings: list[Finding] = []
        for path in collect_files(paths):
            source = path.read_text(encoding="utf-8")
            display = self._display(path)
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                findings.append(Finding(
                    path=display, line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1, rule=SYNTAX_RULE_ID,
                    severity=Severity.ERROR,
                    message=f"file does not parse: {exc.msg}",
                ))
                continue
            contexts.append(FileContext(path, display, source, tree))

        file_rules = [r for r in self.rules if isinstance(r, FileRule)]
        project_rules = [r for r in self.rules if isinstance(r, ProjectRule)]

        suppression_by_display = {ctx.display: ctx.suppressions for ctx in contexts}
        for ctx in contexts:
            for rule in file_rules:
                if rule.applies(ctx):
                    findings.extend(rule.check(ctx))

        project = ProjectContext(contexts)
        for rule in project_rules:
            anchor_ctx = project.find(rule.anchor) if rule.anchor else None
            if anchor_ctx is not None:
                findings.extend(rule.check_project(anchor_ctx, project))

        kept = [
            finding for finding in findings
            if not self._suppressed(finding, suppression_by_display)
        ]
        return sorted(kept)

    @staticmethod
    def _display(path: Path) -> str:
        """Path as reported in findings: relative to cwd when possible."""
        try:
            return os.path.relpath(path)
        except ValueError:  # pragma: no cover - windows cross-drive only
            return str(path)

    @staticmethod
    def _suppressed(
        finding: Finding, indexes: dict[str, SuppressionIndex]
    ) -> bool:
        index = indexes.get(finding.path)
        return index is not None and index.is_suppressed(finding.rule, finding.line)


def run_lint(
    paths: Iterable[str | os.PathLike],
    rules: Sequence[_RuleBase] | None = None,
) -> list[Finding]:
    """Convenience wrapper: lint ``paths`` with ``rules`` (default: all)."""
    return LintEngine(rules).run(paths)
