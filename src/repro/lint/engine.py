"""File collection, parsing, rule dispatch, and suppression filtering.

The engine is deliberately boring: collect ``.py`` files in sorted
order (the lint output itself must be deterministic — rule DET002 cuts
both ways), parse each once, hand the shared AST to every applicable
file rule, run project rules whose anchor file is present, drop
suppressed findings, and return the rest sorted.

When handed an :class:`~repro.lint.cache.AnalysisCache`, the engine
short-circuits at two granularities.  If nothing changed at all (same
file set, same bytes, same rules) the complete prior finding list
replays without a single parse.  Otherwise, files whose content hash
matches a cached entry reuse their per-file findings — they are still
*parsed* when any project rule's anchor is in the set (cross-file rules
need every tree), but their file rules are not re-run.  ``stats``
records which path each file took so callers (and tests) can assert
warm runs actually skipped work.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import LintError
from repro.lint.cache import AnalysisCache, content_hash, rule_signature
from repro.lint.findings import Finding, Severity
from repro.lint.rules import (
    SYNTAX_RULE_ID,
    FileRule,
    ProjectRule,
    _RuleBase,
    all_rules,
)
from repro.lint.suppressions import SuppressionIndex

__all__ = [
    "FileContext",
    "ProjectContext",
    "LintEngine",
    "EngineStats",
    "run_lint",
]

_SKIP_DIR_SUFFIXES = ("__pycache__", ".egg-info")


class FileContext:
    """One parsed module as seen by the rules."""

    __slots__ = ("path", "display", "source", "tree", "suppressions")

    def __init__(self, path: Path, display: str, source: str, tree: ast.AST):
        self.path = path
        self.display = display
        self.source = source
        self.tree = tree
        self.suppressions = SuppressionIndex.from_source(source)

    def matches(self, suffix: str) -> bool:
        """Whether this file's posix path ends with ``suffix``."""
        return self.path.as_posix().endswith(suffix)


class ProjectContext:
    """The whole linted file set, for cross-file rules."""

    def __init__(self, files: Sequence[FileContext]):
        self.files = list(files)

    def find(self, suffix: str) -> FileContext | None:
        """The first file whose path ends with ``suffix``, if any."""
        for ctx in self.files:
            if ctx.matches(suffix):
                return ctx
        return None

    def glob(self, fragment: str) -> list[FileContext]:
        """Every file whose posix path contains ``fragment``."""
        return [ctx for ctx in self.files if fragment in ctx.path.as_posix()]


def collect_files(paths: Iterable[str | os.PathLike]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    collected: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not any(
                    (part.startswith(".") and part not in (".", ".."))
                    or part.endswith(_SKIP_DIR_SUFFIXES)
                    for part in p.parent.parts
                )
            )
        else:
            raise LintError(f"lint path does not exist: {path}")
        for candidate in candidates:
            if candidate.suffix != ".py":
                raise LintError(f"not a Python file: {candidate}")
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return collected


@dataclass
class EngineStats:
    """What one ``LintEngine.run`` actually did, for cache assertions."""

    files: int = 0      # .py files in the linted set
    parsed: int = 0     # files parsed to an AST this run
    analyzed: int = 0   # files whose file rules actually executed
    reused: int = 0     # files whose findings replayed from the cache
    full_hit: bool = False  # entire run replayed from the full-set entry


class LintEngine:
    """Run a set of rules over a set of paths."""

    def __init__(
        self,
        rules: Sequence[_RuleBase] | None = None,
        cache: AnalysisCache | None = None,
    ):
        self.rules = list(rules) if rules is not None else all_rules()
        self.cache = cache
        self.stats = EngineStats()
        #: Display paths of the most recent run's linted set — the
        #: *scope* a baseline update is allowed to prune within.
        self.linted_displays: list[str] = []

    @property
    def executed_rule_ids(self) -> list[str]:
        """Rule ids this engine evaluates, plus the parse pseudo-rule."""
        return sorted({r.rule_id for r in self.rules} | {SYNTAX_RULE_ID})

    def run(self, paths: Iterable[str | os.PathLike]) -> list[Finding]:
        """Lint ``paths`` and return unsuppressed findings, sorted."""
        entries = []
        for path in collect_files(paths):
            entries.append((path, self._display(path),
                            path.read_text(encoding="utf-8")))
        self.stats = EngineStats(files=len(entries))
        self.linted_displays = [display for _, display, _ in entries]

        signature = ""
        if self.cache is not None:
            signature = rule_signature(self.executed_rule_ids)
            set_key = AnalysisCache.set_key(
                [(display, content_hash(source))
                 for _, display, source in entries],
                signature,
            )
            full = self.cache.get_full(set_key)
            if full is not None:
                self.stats.full_hit = True
                return full

        file_rules = [r for r in self.rules if isinstance(r, FileRule)]
        project_rules = [
            r for r in self.rules
            if isinstance(r, ProjectRule) and r.anchor and any(
                path.as_posix().endswith(r.anchor) for path, _, _ in entries
            )
        ]
        # Cross-file rules see the whole tree, so a per-file cache hit
        # only skips *analysis*; the parse still happens when any
        # project-rule anchor is present.
        must_parse_all = bool(project_rules)

        contexts: list[FileContext] = []
        findings: list[Finding] = []
        suppression_by_display: dict[str, SuppressionIndex] = {}
        for path, display, source in entries:
            source_hash = ""
            cached: list[Finding] | None = None
            if self.cache is not None:
                source_hash = content_hash(source)
                cached = self.cache.get_file(display, source_hash, signature)
            if cached is not None:
                self.stats.reused += 1
                findings.extend(cached)
                if not must_parse_all:
                    continue
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                if cached is None:
                    finding = Finding(
                        path=display, line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1, rule=SYNTAX_RULE_ID,
                        severity=Severity.ERROR,
                        message=f"file does not parse: {exc.msg}",
                    )
                    findings.append(finding)
                    if self.cache is not None:
                        self.cache.put_file(display, source_hash, signature,
                                            [finding])
                continue
            self.stats.parsed += 1
            ctx = FileContext(path, display, source, tree)
            contexts.append(ctx)
            suppression_by_display[display] = ctx.suppressions
            if cached is not None:
                continue
            self.stats.analyzed += 1
            checked = [
                finding
                for rule in file_rules if rule.applies(ctx)
                for finding in rule.check(ctx)
            ]
            kept = [
                finding for finding in checked
                if not ctx.suppressions.is_suppressed(finding.rule,
                                                      finding.line)
            ]
            findings.extend(kept)
            if self.cache is not None:
                self.cache.put_file(display, source_hash, signature, kept)

        project = ProjectContext(contexts)
        for rule in project_rules:
            anchor_ctx = project.find(rule.anchor)
            if anchor_ctx is not None:
                findings.extend(
                    finding
                    for finding in rule.check_project(anchor_ctx, project)
                    if not self._suppressed(finding, suppression_by_display)
                )

        result = sorted(findings)
        if self.cache is not None:
            self.cache.put_full(set_key, result)
            self.cache.save()
        return result

    @staticmethod
    def _display(path: Path) -> str:
        """Path as reported in findings: relative to cwd when possible."""
        try:
            return os.path.relpath(path)
        except ValueError:  # pragma: no cover - windows cross-drive only
            return str(path)

    @staticmethod
    def _suppressed(
        finding: Finding, indexes: dict[str, SuppressionIndex]
    ) -> bool:
        index = indexes.get(finding.path)
        return index is not None and index.is_suppressed(finding.rule, finding.line)


def run_lint(
    paths: Iterable[str | os.PathLike],
    rules: Sequence[_RuleBase] | None = None,
    cache: AnalysisCache | None = None,
) -> list[Finding]:
    """Convenience wrapper: lint ``paths`` with ``rules`` (default: all)."""
    return LintEngine(rules, cache=cache).run(paths)
