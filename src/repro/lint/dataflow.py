"""Intraprocedural reaching-definitions for value-provenance queries.

Rule DET003 needs to answer "where did this value come from?" for the
argument of a ``rng_from_seed`` call: a seed is legitimate when it
traces back to a literal, a parameter, or a field of a carried object
(``self.behavior_seed``, ``ctx.seed``), and poisonous when anything in
its derivation read a clock, ``os.environ``, or the ``random`` module.

:class:`ReachingDefinitions` collects every binding of every local name
in one function (assignments, augmented and annotated assignments,
walrus expressions, loop and ``with`` targets, tuple unpacking).  A
query for a name at a use line returns the definitions whose line
precedes the use — a lexical approximation of the classic dataflow fix
point that is exact for the straight-line derivation chains seed code
actually writes, and degrades to *all* bindings (a conservative
superset) when a name is only bound later, e.g. bound in a loop body
and used in its header.

:func:`provenance_atoms` is the backward slice built on top: starting
from an expression it walks names to their reaching definitions
(recursively, cycle-safe), falls through to module-level assignments
for globals, and yields the leaf :class:`Atom` records — literals,
parameters, attribute loads, calls — that a provenance rule classifies.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator

__all__ = ["Definition", "ReachingDefinitions", "Atom", "provenance_atoms"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclasses.dataclass(frozen=True)
class Definition:
    """One binding of a local name.

    ``value`` is the bound expression when the binding is a plain
    assignment; loop/``with``/``except`` targets and tuple unpacking
    bind a name to a value with no directly usable expression, so they
    carry the *source* expression (the iterable, the context manager)
    and set ``indirect`` — provenance then slices through the source.
    Parameters have neither: they are trust boundaries.
    """

    name: str
    line: int
    value: ast.expr | None
    indirect: bool = False
    is_parameter: bool = False


class ReachingDefinitions:
    """All bindings of every local name in one function body."""

    def __init__(self, fn: ast.AST):
        self._defs: dict[str, list[Definition]] = {}
        args = getattr(fn, "args", None)
        if args is not None:
            for arg in (args.posonlyargs + args.args + args.kwonlyargs
                        + ([args.vararg] if args.vararg else [])
                        + ([args.kwarg] if args.kwarg else [])):
                self._record(Definition(
                    arg.arg, getattr(fn, "lineno", 0), None,
                    is_parameter=True,
                ))
        body = getattr(fn, "body", None)
        if isinstance(body, list):
            for stmt in body:
                self._collect(stmt)
        elif body is not None:  # a Lambda body is a single expression
            self._collect_expr(body)

    def _record(self, definition: Definition) -> None:
        self._defs.setdefault(definition.name, []).append(definition)

    def _collect(self, node: ast.AST) -> None:
        # Explicit worklist rather than ast.walk: walk() enqueues every
        # descendant up front, so skipping a nested FunctionDef there
        # would still visit its body under the wrong scope.
        stack: list[ast.AST] = [node]
        while stack:
            child = stack.pop()
            if isinstance(child, _FUNC_NODES):
                continue  # nested scopes own their bindings
            stack.extend(ast.iter_child_nodes(child))
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    self._bind_target(target, child.value)
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                self._bind_target(child.target, child.value)
            elif isinstance(child, ast.AugAssign):
                # ``x += e`` rebinds x from both its old value and e;
                # recording e (indirect) keeps the taint flowing.
                self._bind_target(child.target, child.value, indirect=True)
            elif isinstance(child, ast.NamedExpr):
                self._bind_target(child.target, child.value)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                self._bind_target(child.target, child.iter, indirect=True)
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    if item.optional_vars is not None:
                        self._bind_target(item.optional_vars,
                                          item.context_expr, indirect=True)
            elif isinstance(child, ast.ExceptHandler) and child.name:
                self._record(Definition(child.name, child.lineno, None,
                                        indirect=True))

    def _collect_expr(self, expr: ast.expr) -> None:
        for child in ast.walk(expr):
            if isinstance(child, ast.NamedExpr):
                self._bind_target(child.target, child.value)

    def _bind_target(self, target: ast.AST, value: ast.expr,
                     indirect: bool = False) -> None:
        if isinstance(target, ast.Name):
            self._record(Definition(target.id, target.lineno, value,
                                    indirect=indirect))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                # Unpacking loses which element came from where; bind
                # each name to the whole right-hand side, indirectly.
                self._bind_target(element, value, indirect=True)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, value, indirect=True)

    def definitions(self, name: str, before_line: int) -> list[Definition]:
        """Bindings of ``name`` that may reach a use at ``before_line``."""
        bindings = self._defs.get(name, [])
        reaching = [d for d in bindings if d.line < before_line]
        return reaching if reaching else list(bindings)

    def is_local(self, name: str) -> bool:
        return name in self._defs


@dataclasses.dataclass(frozen=True)
class Atom:
    """One leaf of a backward provenance slice.

    ``kind`` is one of ``"literal"``, ``"parameter"``, ``"attribute"``
    (with ``text`` the dotted load, e.g. ``self.behavior_seed``),
    ``"call"`` (with ``text`` the dotted callee, empty when dynamic),
    ``"name"`` (an unresolvable global read), ``"subscript"`` (with
    ``text`` the dotted base, e.g. ``os.environ``), or ``"opaque"``.
    """

    kind: str
    text: str
    node: ast.AST = dataclasses.field(compare=False)


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def provenance_atoms(
    expr: ast.expr,
    defs: ReachingDefinitions,
    module_assigns: dict[str, ast.expr] | None = None,
    use_line: int | None = None,
) -> Iterator[Atom]:
    """Yield the leaf atoms of an expression's backward slice.

    Walks the expression; every name is replaced by its reaching
    definitions (module-level assignments serve as the fallback for
    globals); calls yield a ``call`` atom *and* slice through their
    arguments, so ``int(os.environ["SEED"])`` still surfaces the
    ``os.environ`` subscript underneath the benign ``int`` wrapper.
    """
    module_assigns = module_assigns or {}
    seen: set[int] = set()

    def walk(node: ast.expr, line: int) -> Iterator[Atom]:
        if id(node) in seen:
            return
        seen.add(id(node))
        if isinstance(node, ast.Constant):
            yield Atom("literal", repr(node.value), node)
        elif isinstance(node, ast.Name):
            if defs.is_local(node.id):
                for definition in defs.definitions(node.id, line):
                    if definition.is_parameter:
                        yield Atom("parameter", node.id, node)
                    elif definition.value is not None:
                        yield from walk(definition.value, definition.line + 1)
                    else:
                        yield Atom("opaque", node.id, node)
            elif node.id in module_assigns:
                yield from walk(module_assigns[node.id], line)
            else:
                yield Atom("name", node.id, node)
        elif isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            yield Atom("attribute", dotted or node.attr, node)
        elif isinstance(node, ast.Subscript):
            dotted = _dotted(node.value)
            yield Atom("subscript", dotted or "", node)
            yield from walk(node.slice, line)
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            yield Atom("call", dotted or "", node)
            for arg in node.args:
                yield from walk(arg, line)
            for keyword in node.keywords:
                yield from walk(keyword.value, line)
        elif isinstance(node, ast.BinOp):
            yield from walk(node.left, line)
            yield from walk(node.right, line)
        elif isinstance(node, ast.UnaryOp):
            yield from walk(node.operand, line)
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                yield from walk(element, line)
        elif isinstance(node, ast.IfExp):
            yield from walk(node.body, line)
            yield from walk(node.orelse, line)
        elif isinstance(node, ast.BoolOp):
            for value in node.values:
                yield from walk(value, line)
        else:
            yield Atom("opaque", type(node).__name__, node)

    yield from walk(expr, use_line if use_line is not None
                    else getattr(expr, "lineno", 1))
