"""Text and JSON renderings of a finding list.

The JSON schema is versioned and flat so CI and editor integrations can
consume it without knowing rule internals::

    {
      "version": 1,
      "count": 2,
      "rules": ["BIT001", "DET001", ...],
      "findings": [
        {"rule": "DET001", "severity": "error", "path": "...",
         "line": 3, "col": 0, "message": "..."},
        ...
      ]
    }
"""

from __future__ import annotations

import inspect
import json
from typing import Sequence

from repro.lint.findings import Finding
from repro.lint.rules import SYNTAX_RULE_ID, _RuleBase, rule_ids

__all__ = ["render_text", "render_json", "render_explain",
           "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1

_SYNTAX_RULE_EXPLANATION = f"""\
{SYNTAX_RULE_ID} · error · a linted file failed to parse

  Not a rule class but the engine itself: a file that does not parse
  cannot be checked by *any* rule, so its syntax error is reported as a
  finding instead of aborting the run.  Fix the syntax error; there is
  nothing to suppress."""


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in findings]
    if findings:
        errors = sum(1 for f in findings if f.severity.value == "error")
        warnings = len(findings) - errors
        lines.append(f"{len(findings)} finding(s): {errors} error(s), "
                     f"{warnings} warning(s)")
    else:
        lines.append("clean: no lint findings")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    rules: Sequence[str] | None = None,
) -> str:
    """Machine-readable report (schema documented in the module docstring).

    ``rules`` is the rule-id set this run actually evaluated; consumers
    treat an id's presence there as "this rule ran and found what is
    listed", so a ``--select``-narrowed run must not advertise rules it
    skipped.  ``None`` means the full registry ran.
    """
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "count": len(findings),
        "rules": list(rules) if rules is not None else list(rule_ids()),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _indent(text: str, prefix: str) -> str:
    return "\n".join(prefix + line if line else line
                     for line in text.splitlines())


def render_explain(rules: Sequence[_RuleBase]) -> str:
    """``repro lint --explain``: rationale and examples per rule.

    Each section shows the rule's one-line summary, its class docstring
    (the rationale — *why* the invariant exists and what breaks when it
    does not hold), and the minimal bad/good example pair from the
    rule's ``example_bad``/``example_good`` attributes.
    """
    sections = []
    for rule in rules:
        header = f"{rule.rule_id} · {rule.severity.value} · {rule.summary}"
        body = inspect.cleandoc(type(rule).__doc__ or "").strip()
        section = [header]
        if body:
            section.append(_indent(body, "  "))
        bad = getattr(rule, "example_bad", "")
        good = getattr(rule, "example_good", "")
        if bad:
            section.append("  bad:\n" + _indent(bad, "    "))
        if good:
            section.append("  good:\n" + _indent(good, "    "))
        sections.append("\n\n".join(section))
    return "\n\n".join(sections)
