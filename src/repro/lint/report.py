"""Text and JSON renderings of a finding list.

The JSON schema is versioned and flat so CI and editor integrations can
consume it without knowing rule internals::

    {
      "version": 1,
      "count": 2,
      "rules": ["BIT001", "DET001", ...],
      "findings": [
        {"rule": "DET001", "severity": "error", "path": "...",
         "line": 3, "col": 0, "message": "..."},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.findings import Finding
from repro.lint.rules import rule_ids

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in findings]
    if findings:
        errors = sum(1 for f in findings if f.severity.value == "error")
        warnings = len(findings) - errors
        lines.append(f"{len(findings)} finding(s): {errors} error(s), "
                     f"{warnings} warning(s)")
    else:
        lines.append("clean: no lint findings")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    rules: Sequence[str] | None = None,
) -> str:
    """Machine-readable report (schema documented in the module docstring).

    ``rules`` is the rule-id set this run actually evaluated; consumers
    treat an id's presence there as "this rule ran and found what is
    listed", so a ``--select``-narrowed run must not advertise rules it
    skipped.  ``None`` means the full registry ran.
    """
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "count": len(findings),
        "rules": list(rules) if rules is not None else list(rule_ids()),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
