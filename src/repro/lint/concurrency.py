"""Shared machinery for the concurrency rule family (analysis layer 6).

The CONC rules of :mod:`repro.lint.rules.conc` answer questions about
*multi-process discipline*: which filesystem mutations happen under the
shard-lock seam, whether locks are scoped and un-nested, what code both
the pool workers and the parent can reach, and which file descriptors
have a guaranteed cleanup path.  This module holds the reusable pieces:

* seam recognition — names bound to :func:`repro.utils.io.shard_lock`
  by import provenance (the same discipline as the env-accessor seam:
  a fixture's local ``shard_lock`` that is *not* the seam does not
  masquerade as one);
* lock regions — the source spans of ``with shard_lock(...)`` bodies,
  plus containment queries (is this call under a lock? is this lock
  nested inside another?);
* call classification — cross-process *mutation* calls (unlink,
  replace, rmtree: the operations whose interleaving loses updates),
  *scan* calls (listdir, stat, getsize: the read half of a
  read-modify-write cycle), and *blocking* calls (sleep, subprocess,
  whole simulations) that must never run while a shard lock is held;
* a standalone :func:`module_info` so file rules can resolve import
  provenance without building the whole project table.

The lock-requiring convention rides function names: a ``*_locked``
function may mutate freely (its contract is "caller holds the lock"),
and every *call* to one must sit inside a lock region.  Everything here
operates on linted ASTs only — deterministic and side-effect-free, like
the rest of the lint layers.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.lint.graph import CallGraph, FunctionInfo, ModuleInfo, ModuleTable, _dotted

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import FileContext

__all__ = [
    "LOCK_SEAM_NAMES",
    "Span",
    "blocking_call_description",
    "body_span",
    "call_name",
    "function_nodes",
    "in_locked_function",
    "is_lock_call",
    "lock_regions",
    "lock_seam_aliases",
    "module_info",
    "mutation_call_description",
    "node_span",
    "scan_call_name",
    "seam_blocked_reach",
    "within",
]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: The mutual-exclusion seam of :mod:`repro.utils.io`.
LOCK_SEAM_NAMES = frozenset({"shard_lock"})

Span = tuple[int, int, int, int]


# -- seam recognition ----------------------------------------------------


def module_info(ctx: "FileContext") -> ModuleInfo:
    """A standalone symbol table for one linted file.

    File rules have no project table; imports and assigns of the single
    module are enough to recognize the lock seam by provenance.
    """
    from repro.lint.graph import module_name_for

    info = ModuleInfo(module_name_for(ctx), ctx)
    ModuleTable._index_module(info)
    return info


def lock_seam_aliases(module: ModuleInfo) -> frozenset[str]:
    """Local names bound to the shard-lock seam by import provenance.

    A name counts when it is imported from a module whose last path
    component is ``io`` and resolves to one of
    :data:`LOCK_SEAM_NAMES` -- mirroring how the env rules recognize
    the accessor seam.
    """
    return frozenset(
        local for local, (source, original) in module.import_froms.items()
        if original in LOCK_SEAM_NAMES and source.split(".")[-1] == "io"
    )


def is_lock_call(
    expr: ast.AST, module: ModuleInfo, aliases: frozenset[str]
) -> bool:
    """Whether an expression is a call acquiring the shard-lock seam."""
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Name):
        return func.id in aliases
    if isinstance(func, ast.Attribute) and func.attr in LOCK_SEAM_NAMES:
        dotted = _dotted(func.value)
        if dotted is None:
            return False
        target = module.imports.get(dotted)
        if target is None:
            origin = module.import_froms.get(dotted)
            if origin is not None:
                target = (origin[0] + "." + origin[1]).lstrip(".")
        return target is not None and target.split(".")[-1] == "io"
    return False


# -- lock regions --------------------------------------------------------


def lock_regions(
    tree: ast.AST, module: ModuleInfo, aliases: frozenset[str]
) -> list[ast.With]:
    """Every ``with`` statement that acquires the shard-lock seam."""
    regions: list[ast.With] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)) and any(
            is_lock_call(item.context_expr, module, aliases)
            for item in node.items
        ):
            regions.append(node)
    return regions


def node_span(node: ast.AST) -> Span:
    return (
        node.lineno, node.col_offset,
        node.end_lineno or node.lineno, node.end_col_offset or 0,
    )


def body_span(with_node: ast.With) -> Span:
    """The span of a ``with`` statement's *body* (code run under lock)."""
    first = with_node.body[0]
    return (
        first.lineno, first.col_offset,
        with_node.end_lineno or first.lineno,
        with_node.end_col_offset or 0,
    )


def within(node: ast.AST, spans: list[Span]) -> bool:
    """Whether ``node`` lies entirely inside any of the spans."""
    start = (node.lineno, node.col_offset)
    end = (node.end_lineno or node.lineno, node.end_col_offset or 0)
    return any(
        start >= (l0, c0) and end <= (l1, c1) for (l0, c0, l1, c1) in spans
    )


def function_nodes(tree: ast.AST) -> list[ast.AST]:
    """Every function/method definition node in a module, in walk order."""
    return [n for n in ast.walk(tree) if isinstance(n, _FUNC_NODES)]


def in_locked_function(node: ast.AST, functions: list[ast.AST]) -> bool:
    """Whether ``node`` sits inside a ``*_locked``-named function.

    The naming convention is the escape hatch for helpers whose
    contract is "caller holds the shard lock": their bodies may mutate,
    and CONC001 instead polices their *call sites*.
    """
    return any(
        fn.name.endswith("_locked") and within(node, [node_span(fn)])
        for fn in functions
    )


# -- call classification -------------------------------------------------

#: Dotted calls that mutate shared filesystem state in place.  Path
#: methods are matched only where unambiguous (``.unlink``/``.rmdir``);
#: ``str.replace``/``.rename`` lookalikes stay out.
_MUTATION_DOTTED = frozenset({
    "os.unlink", "os.remove", "os.rename", "os.replace", "os.rmdir",
    "os.removedirs", "os.truncate", "shutil.rmtree", "shutil.move",
})
_MUTATION_METHODS = frozenset({"unlink", "rmdir"})

#: The read half of a read-modify-write cycle on shared paths.
_SCAN_DOTTED = frozenset({
    "os.listdir", "os.scandir", "os.stat", "os.lstat",
    "os.path.getsize", "os.path.getmtime", "glob.glob", "glob.iglob",
})

_BLOCKING_DOTTED = frozenset({"time.sleep", "os.system", "os.popen"})
_BLOCKING_DOTTED_PREFIXES = ("subprocess.",)
#: Bare simulation entry points: a whole simulation under a shard lock
#: serializes every other process on filesystem metadata work.
_BLOCKING_NAMES = frozenset({
    "simulate", "run_combined", "run_selection_phase",
    "execute_cell", "execute_cells", "run_experiments",
})
#: Pool-submission methods (shipping work while holding a lock means
#: workers can contend on the very lock the parent holds).
_BLOCKING_METHODS = frozenset({
    "submit", "apply", "apply_async", "map_async", "starmap",
    "imap", "imap_unordered",
})


def call_name(call: ast.Call) -> str | None:
    """The bare called name (``f`` or the ``.attr`` of a method call)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def mutation_call_description(call: ast.Call) -> str | None:
    """Classify a call as a shared-path mutation (description), or None."""
    dotted = _dotted(call.func)
    if dotted in _MUTATION_DOTTED:
        return f"{dotted}(...)"
    if (isinstance(call.func, ast.Attribute)
            and call.func.attr in _MUTATION_METHODS):
        return f".{call.func.attr}(...)"
    return None


def scan_call_name(dotted: str | None) -> str | None:
    """The scan call a dotted callee names, or None."""
    if dotted in _SCAN_DOTTED:
        return dotted
    return None


def blocking_call_description(call: ast.Call) -> str | None:
    """Classify a call as blocking-under-lock (description), or None."""
    dotted = _dotted(call.func)
    if dotted in _BLOCKING_DOTTED:
        return f"{dotted}(...)"
    if dotted is not None and dotted.startswith(_BLOCKING_DOTTED_PREFIXES):
        return f"{dotted}(...)"
    if isinstance(call.func, ast.Name) and call.func.id in _BLOCKING_NAMES:
        return f"{call.func.id}(...) (a simulation entry point)"
    if (isinstance(call.func, ast.Attribute)
            and call.func.attr in _BLOCKING_METHODS):
        return f".{call.func.attr}(...) (a pool submission)"
    return None


# -- seam-blocked reachability -------------------------------------------


def seam_blocked_reach(
    graph: CallGraph,
    roots: list[str],
    seam_suffixes: tuple[str, ...],
) -> dict[str, FunctionInfo]:
    """Functions reachable from ``roots`` without traversing the seams.

    Like :meth:`CallGraph.reachable_from`, except functions defined in
    seam modules are *boundaries*: they are recorded as reached (so a
    caller can see the seam absorbs a path) but their callees are not
    expanded -- a write inside ``ResultCache`` does not make everything
    the cache touches "worker-reachable shared state".
    """
    seen: dict[str, FunctionInfo] = {}
    stack = sorted(set(roots))
    while stack:
        qual = stack.pop()
        if qual in seen:
            continue
        fn = graph.functions.get(qual)
        if fn is None:
            continue
        seen[qual] = fn
        if any(fn.ctx.matches(suffix) for suffix in seam_suffixes):
            continue
        stack.extend(graph.edges.get(qual, ()))
    return seen
