"""Baseline ratchet: fail only on findings newer than the accepted debt.

A project-wide analyzer is only adoptable if turning a rule on does not
require fixing every historical finding in one commit.  The ratchet
records the *accepted* findings in ``.repro-lint-baseline.json``; a
baselined run then exits non-zero only when a finding appears that is
not in the file — debt can be paid down (shrinking the baseline via
``--update-baseline``) but never silently grows.

Findings are matched by **fingerprint** — ``(path, rule, message)``,
deliberately excluding line and column — so editing an unrelated part
of a file does not resurrect its baselined findings, while the same
violation appearing a *second* time in the same file does fail (the
baseline stores a count per fingerprint, and the run may use at most
that many).

Updates are **scope-aware**: ``--update-baseline`` replaces the entries
for the paths that were actually linted — adding new debt, refreshing
counts, and *pruning* fingerprints that no longer fire — while leaving
entries for files outside the linted set untouched, so updating from
``tests/`` never discards the debt recorded for ``benchmarks/``.
:meth:`Baseline.dead_entries` reports the would-be-pruned set, which
``--strict-baseline`` (used in CI) turns into a failure: a committed
baseline must not carry entries that no longer fire.

The file is committed, human-readable, and sorted, so a baseline change
is always a reviewable diff::

    {
      "version": 1,
      "findings": [
        {"path": "tests/x.py", "rule": "DET002", "count": 1,
         "message": "time.time() reads wall clock; ..."},
        ...
      ]
    }
"""

from __future__ import annotations

import collections
import json
import os
from pathlib import Path
from typing import Sequence

from repro.errors import LintError
from repro.lint.findings import Finding
from repro.utils.io import atomic_write_text

__all__ = ["Baseline", "DEFAULT_BASELINE_PATH", "BASELINE_VERSION"]

BASELINE_VERSION = 1
DEFAULT_BASELINE_PATH = ".repro-lint-baseline.json"


def _fingerprint(finding: Finding) -> tuple[str, str, str]:
    return (finding.path.replace(os.sep, "/"), finding.rule, finding.message)


class Baseline:
    """Accepted findings, counted per (path, rule, message) fingerprint."""

    def __init__(self, counts: dict[tuple[str, str, str], int] | None = None):
        self.counts = dict(counts or {})

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        counts: dict[tuple[str, str, str], int] = collections.Counter(
            _fingerprint(finding) for finding in findings
        )
        return cls(dict(counts))

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline.

        Treating absence as empty makes ``--baseline`` safe to turn on
        before the first ``--update-baseline`` has ever run: every
        finding is "new" until some are explicitly accepted.
        """
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise LintError(f"unreadable lint baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or "findings" not in payload:
            raise LintError(
                f"lint baseline {path} has no 'findings' list; regenerate "
                "it with 'repro lint --update-baseline'"
            )
        counts: dict[tuple[str, str, str], int] = {}
        for entry in payload["findings"]:
            try:
                key = (str(entry["path"]), str(entry["rule"]),
                       str(entry["message"]))
                counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
            except (KeyError, TypeError, ValueError) as exc:
                raise LintError(
                    f"malformed lint baseline entry in {path}: {entry!r}"
                ) from exc
        return cls(counts)

    def save(self, path: str | os.PathLike) -> None:
        """Write the baseline atomically, sorted for stable diffs."""
        entries = [
            {"path": key[0], "rule": key[1], "count": count,
             "message": key[2]}
            for key, count in sorted(self.counts.items())
        ]
        payload = {"version": BASELINE_VERSION, "findings": entries}
        atomic_write_text(os.fspath(path),
                          json.dumps(payload, indent=2) + "\n")

    def updated(
        self, findings: Sequence[Finding], linted_paths: Sequence[str]
    ) -> "Baseline":
        """The baseline after accepting this run's findings.

        Entries for paths in ``linted_paths`` are replaced wholesale —
        which prunes fingerprints that stopped firing — while entries
        for paths outside the linted scope are carried over unchanged.
        """
        scope = {path.replace(os.sep, "/") for path in linted_paths}
        counts = {key: count for key, count in self.counts.items()
                  if key[0] not in scope}
        counts.update(Baseline.from_findings(findings).counts)
        return Baseline(counts)

    def dead_entries(
        self, findings: Sequence[Finding], linted_paths: Sequence[str]
    ) -> list[tuple[str, str, str, int]]:
        """Baselined fingerprints in scope that no current finding uses.

        Returns ``(path, rule, message, excess)`` tuples sorted by key;
        ``excess`` is how many accepted occurrences did not fire.  Only
        paths actually linted this run are considered — debt recorded
        for files outside the scope cannot be judged dead by a run that
        never looked at them.
        """
        scope = {path.replace(os.sep, "/") for path in linted_paths}
        live = collections.Counter(_fingerprint(f) for f in findings)
        dead = []
        for key, count in sorted(self.counts.items()):
            if key[0] not in scope:
                continue
            excess = count - live.get(key, 0)
            if excess > 0:
                dead.append((key[0], key[1], key[2], excess))
        return dead

    def filter_new(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], int]:
        """Split findings into (new, number baselined).

        Findings are consumed against the baseline in sorted order (the
        engine's output order), so which duplicates count as "new" when
        a fingerprint appears more often than its baseline allows is
        deterministic: the extras are the later occurrences.
        """
        remaining = dict(self.counts)
        new: list[Finding] = []
        baselined = 0
        for finding in findings:
            key = _fingerprint(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined += 1
            else:
                new.append(finding)
        return new, baselined

    def __len__(self) -> int:
        return sum(self.counts.values())
