"""Inline suppressions: ``# repro: allow[RULE-ID] -- justification``.

A suppression silences named rules for the statement it annotates.  Two
placements are recognized:

* trailing, anywhere on the offending statement (including inside a
  multi-line call's parentheses)::

      t0 = time.perf_counter()  # repro: allow[DET002] -- wall time is the payload

* a standalone comment above the offending statement — blank lines and
  further comments may sit in between, and several stacked markers all
  annotate the same next statement::

      # repro: allow[DET002] -- wall time is the payload here

      # unrelated note
      t0 = time.perf_counter()

Several rules may share one marker (``allow[DET001,DET002]``).  The
justification after ``--`` (or ``:``) is free text; by convention every
suppression carries one, so a reader never has to reconstruct why an
invariant was waived.

The scan is token-based, not line-based: markers are only recognized in
real ``COMMENT`` tokens, so the text ``# repro: allow[...]`` inside a
string literal never suppresses anything.  A marker silences its whole
*logical statement* — every physical line from the statement's first
token to its closing ``NEWLINE`` — so a finding reported on any line of
a multi-line call is covered by one marker.  Sources that do not
tokenize (the engine reports those as LINT001 anyway) fall back to a
plain line scan.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["SuppressionIndex"]

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]"
    r"(?:\s*(?:--|:)\s*(?P<why>.*))?"
)

_TRIVIA = frozenset({
    tokenize.NL, tokenize.INDENT, tokenize.DEDENT, tokenize.ENDMARKER,
})


def _parse_rules(comment: str) -> set[str]:
    match = _ALLOW_RE.search(comment)
    if match is None:
        return set()
    return {r.strip() for r in match.group(1).split(",") if r.strip()}


class SuppressionIndex:
    """Per-file map from line number to the rule ids allowed there."""

    def __init__(self, allowed: dict[int, set[str]]):
        self._allowed = allowed

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan a module's source text for ``repro: allow`` markers."""
        try:
            markers, spans = cls._scan(source)
        except (tokenize.TokenError, IndentationError, SyntaxError,
                ValueError):
            return cls._from_lines(source)
        allowed: dict[int, set[str]] = {}
        for marker_line, rules in markers:
            span = cls._span_for(marker_line, spans)
            lines = range(span[0], span[1] + 1) if span else (marker_line,)
            for lineno in lines:
                allowed.setdefault(lineno, set()).update(rules)
        return cls(allowed)

    @staticmethod
    def _scan(source: str):
        """(marker lines, statement spans) from the token stream.

        A *span* is one logical statement as (first physical line, last
        physical line); for compound statements that is the header up to
        its colon — the body lines are their own statements.
        """
        markers: list[tuple[int, set[str]]] = []
        spans: list[tuple[int, int]] = []
        start: int | None = None
        last_line = 0
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                rules = _parse_rules(tok.string)
                if rules:
                    markers.append((tok.start[0], rules))
                continue
            if tok.type in _TRIVIA:
                continue
            if tok.type == tokenize.NEWLINE:
                if start is not None:
                    spans.append((start, max(tok.start[0], last_line)))
                    start = None
                continue
            if start is None:
                start = tok.start[0]
            last_line = tok.end[0]
        if start is not None:  # statement ran into EOF without a NEWLINE
            spans.append((start, max(last_line, start)))
        return markers, spans

    @staticmethod
    def _span_for(
        marker_line: int, spans: list[tuple[int, int]]
    ) -> tuple[int, int] | None:
        """The statement a marker annotates.

        A marker *inside* a statement (trailing comment, or a comment
        line within its parentheses) annotates that statement; a marker
        between statements annotates the next one.
        """
        for span in spans:
            if span[0] <= marker_line <= span[1]:
                return span
        following = [span for span in spans if span[0] > marker_line]
        return min(following) if following else None

    @classmethod
    def _from_lines(cls, source: str) -> "SuppressionIndex":
        """Line-scan fallback for sources the tokenizer rejects."""
        allowed: dict[int, set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            rules = _parse_rules(text)
            if not rules:
                continue
            allowed.setdefault(lineno, set()).update(rules)
            if text.lstrip().startswith("#"):
                allowed.setdefault(lineno + 1, set()).update(rules)
        return cls(allowed)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is allowed at ``line``."""
        return rule in self._allowed.get(line, ())

    def __len__(self) -> int:
        return len(self._allowed)
