"""Inline suppressions: ``# repro: allow[RULE-ID] -- justification``.

A suppression silences named rules for the statement it annotates.  Two
placements are recognized:

* trailing, on the offending line itself::

      t0 = time.perf_counter()  # repro: allow[DET002] -- wall time is the payload

* a standalone comment line directly above the offending line::

      # repro: allow[DET002] -- wall time is the payload here
      t0 = time.perf_counter()

Several rules may share one marker (``allow[DET001,DET002]``).  The
justification after ``--`` (or ``:``) is free text; by convention every
suppression carries one, so a reader never has to reconstruct why an
invariant was waived.
"""

from __future__ import annotations

import re

__all__ = ["SuppressionIndex"]

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]"
    r"(?:\s*(?:--|:)\s*(?P<why>.*))?"
)


class SuppressionIndex:
    """Per-file map from line number to the rule ids allowed there."""

    def __init__(self, allowed: dict[int, set[str]]):
        self._allowed = allowed

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan a module's source text for ``repro: allow`` markers."""
        allowed: dict[int, set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _ALLOW_RE.search(text)
            if match is None:
                continue
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            allowed.setdefault(lineno, set()).update(rules)
            if text.lstrip().startswith("#"):
                # Standalone comment: it annotates the next line.
                allowed.setdefault(lineno + 1, set()).update(rules)
        return cls(allowed)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is allowed at ``line``."""
        return rule in self._allowed.get(line, ())

    def __len__(self) -> int:
        return len(self._allowed)
