"""``repro.lint``: AST-based enforcement of the simulator's invariants.

The reproduction's numbers are trustworthy only while a handful of
codebase-wide conventions hold — all randomness derives from named
seeded streams, no code reads clocks or OS entropy, every predictor
honors the predict-then-update contract, the experiment registry and
its golden files agree, and index masking goes through the checked
:mod:`repro.utils.bits` helpers.  None of these fail loudly when
violated; they corrupt MISP/KI numbers silently.  This package turns
them into machine-checked rules that run before any simulation does::

    repro lint                       # self-check the installed package
    repro lint --format json src/    # CI / tooling output
    repro lint --select DET,PRED001  # a subset of rules

Deliberate exceptions are annotated in place::

    t0 = time.perf_counter()  # repro: allow[DET002] -- measuring wall time

Rules (see :mod:`repro.lint.rules` and DESIGN.md section 8):

========  ============================================================
DET001    randomness must flow through ``utils.rng.derive_rng``
DET002    no wall clocks, OS entropy, or unordered-set iteration
PRED001   ``BranchPredictor`` subclasses honor the base contract
PRED002   predictor names, factories, classes, and CLI choices agree
REG001    experiment ids, runners, and result goldens stay in lockstep
BIT001    index masking goes through ``utils.bits``, not inline math
LINT001   (engine) a linted file failed to parse
========  ============================================================
"""

from repro.lint.engine import LintEngine, collect_files, run_lint
from repro.lint.findings import Finding, Severity
from repro.lint.report import render_json, render_text
from repro.lint.rules import RULES, all_rules, rule_ids, select_rules
from repro.lint.suppressions import SuppressionIndex

__all__ = [
    "Finding",
    "Severity",
    "LintEngine",
    "SuppressionIndex",
    "run_lint",
    "collect_files",
    "render_text",
    "render_json",
    "RULES",
    "all_rules",
    "rule_ids",
    "select_rules",
]
