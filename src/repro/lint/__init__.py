"""``repro.lint``: AST-based enforcement of the simulator's invariants.

The reproduction's numbers are trustworthy only while a handful of
codebase-wide conventions hold — all randomness derives from named
seeded streams, no code reads clocks or OS entropy, every predictor
honors the predict-then-update contract, the experiment registry and
its golden files agree, index masking goes through the checked
:mod:`repro.utils.bits` helpers, and everything the parallel runner's
workers can reach stays pure, picklable, and seeded only from declared
experiment knobs.  None of these fail loudly when violated; they
corrupt MISP/KI numbers silently.  This package turns them into
machine-checked rules that run before any simulation does::

    repro lint                       # self-check the installed package
    repro lint --format json src/    # CI / tooling output
    repro lint --format sarif src/   # GitHub code scanning upload
    repro lint --select DET,PRED001  # a subset of rules
    repro lint --changed --cache     # pre-commit: only git-touched files
    repro lint --baseline tests/     # fail only on NEW findings
    repro lint --update-baseline t/  # accept current, prune stale debt
    repro lint --strict-baseline ... # CI: also fail on stale debt
    repro lint --explain WID002      # a rule's rationale + examples
    repro lint --stats --cache src/  # cache effectiveness, to stderr
    repro lint --hot-report src/     # ranked hot-path vectorization worklist

Deliberate exceptions are annotated in place::

    t0 = time.perf_counter()  # repro: allow[DET002] -- measuring wall time

Rules (see :mod:`repro.lint.rules` and DESIGN.md section 8):

========  ============================================================
DET001    randomness must flow through ``utils.rng.derive_rng``
DET002    no wall clocks, OS entropy, or unordered-set iteration
DET003    ``rng_from_seed`` seeds trace to experiment knobs or literals
PRED001   ``BranchPredictor`` subclasses honor the base contract
PRED002   predictor names, factories, classes, and CLI choices agree
REG001    experiment ids, runners, and result goldens stay in lockstep
EXP002    ``cells``/``synthesize`` pair up; Cell schemes are registered
PAR001    worker-reachable code must not write module globals
PAR002    no lambdas/closures/local classes cross the pickle boundary
BIT001    index masking goes through ``utils.bits``, not inline math
WID001    table indices are provably within ``[0, table_size)``
WID002    counter updates provably saturate at the declared width
WID003    history shift-ins are masked to the declared width
WID004    modulo by a provable power of two should be a mask
PERF001   no per-element Python loops over trace-scale data on hot paths
PERF002   hot-path accumulators preallocate arrays instead of append
PERF003   no array-reallocating, upcasting, or scalar-math numpy use
PERF004   ``kernels/`` ``simulate_*`` functions reachable from ``_KERNELS``
KEY001    every result-influencing input reaches the cache key or is
          declared in the audited ``_KEY_EXEMPT`` contract
KEY002    cache keys serialize canonically: sorted JSON, no sets,
          ``repr()``, or host/process-dependent values
ENV001    ``os.environ`` reads go through ``utils.env`` and match the
          ``ENV_KNOBS`` contract registry
ATM001    artifact stores write through the ``utils.io`` atomic seam
ATM002    no exists-then-write (TOCTOU) races in artifact stores
CONC001   store mutations hold the shard lock (or ride ``*_locked``
          helpers whose call sites do); no stale pre-lock scans
CONC002   shard locks are with-scoped and un-nested; nothing blocking
          runs under one; bare ``.acquire()`` needs a finally release
CONC003   worker-and-parent-reachable code writes files only through
          the result-store seams
CONC004   store-module descriptors have guaranteed cleanup: opens are
          context managers, ``os.open`` closes in finally, ``mkstemp``
          unlinks on failure paths
LINT001   (engine) a linted file failed to parse
========  ============================================================

The rules stack in six analysis layers.  Syntactic rules match
shapes in one AST (DET001/DET002, BIT001, PRED/EXP/REG contracts);
interprocedural dataflow rules walk the project call graph
(:mod:`repro.lint.graph`) and reaching definitions
(:mod:`repro.lint.dataflow`) for worker purity and seed provenance
(PAR001, DET003); the WID family abstractly interprets predictor
classes over a symbolic interval domain (:mod:`repro.lint.intervals`,
:mod:`repro.lint.rules.widths`) to *prove* bit-width contracts instead
of pattern-matching them; and the PERF family combines all three —
call-graph hot-region inference from the simulation entry points
(:mod:`repro.lint.hotpath`), loop trip-count provenance through
reaching definitions, and the interval domain to separate trace-scale
loops from table-sized ones — to ratchet scalar code off the hot
paths.  The fifth layer is result provenance
(:mod:`repro.lint.provenance`, :mod:`repro.lint.rules.provenance`):
KEY001 proves over the call graph that every ``Cell`` field and every
``ExperimentContext`` knob reachable from ``execute_cell`` flows into
the result-cache key or carries an audited ``_KEY_EXEMPT`` entry,
KEY002 keeps the key's serialization canonical, ENV001 reconciles
every environment read against the ``ENV_KNOBS`` contract registry,
and ATM001/ATM002 confine artifact writes to the ``mkstemp`` +
``os.replace`` seam of :mod:`repro.utils.io`.  The sixth layer is
concurrency safety (:mod:`repro.lint.concurrency`,
:mod:`repro.lint.rules.conc`), proving the discipline the sharded
result store (:mod:`repro.runner.store`) relies on: CONC001 requires
every cross-process filesystem mutation in the store modules to hold
the ``shard_lock`` seam (recognized by import provenance, like the
env-accessor seam) or to live in a ``*_locked`` helper whose call
sites are all under lock, and uses reaching definitions to reject
stale pre-lock directory scans consumed inside a locked region;
CONC002 keeps lock acquisition with-scoped, un-nested, and free of
blocking calls; CONC003 generalizes PAR001's reachability with
seam-blocked call-graph traversal — code reachable from both the pool
workers and the parent may write files only through the store seams;
and CONC004 guarantees descriptor cleanup paths in the store modules.
No module is ever imported to be linted.
"""

from repro.lint.baseline import BASELINE_VERSION, DEFAULT_BASELINE_PATH, Baseline
from repro.lint.cache import (
    CACHE_FORMAT_VERSION,
    DEFAULT_CACHE_PATH,
    AnalysisCache,
    git_changed_paths,
)
from repro.lint.engine import EngineStats, LintEngine, collect_files, run_lint
from repro.lint.findings import Finding, Severity
from repro.lint.hotpath import HotRegion, hot_region, load_project, render_hot_report
from repro.lint.report import render_explain, render_json, render_text
from repro.lint.rules import RULES, all_rules, rule_ids, select_rules
from repro.lint.sarif import SARIF_SCHEMA_URI, SARIF_VERSION, render_sarif
from repro.lint.suppressions import SuppressionIndex

__all__ = [
    "Finding",
    "Severity",
    "LintEngine",
    "EngineStats",
    "SuppressionIndex",
    "run_lint",
    "collect_files",
    "render_text",
    "render_json",
    "render_explain",
    "render_sarif",
    "SARIF_VERSION",
    "SARIF_SCHEMA_URI",
    "Baseline",
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_PATH",
    "AnalysisCache",
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_PATH",
    "git_changed_paths",
    "RULES",
    "all_rules",
    "rule_ids",
    "select_rules",
    "HotRegion",
    "hot_region",
    "load_project",
    "render_hot_report",
]
