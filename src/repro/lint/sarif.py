"""SARIF 2.1.0 rendering of a finding list.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what GitHub code scanning, VS Code's SARIF viewer, and most analyzer
dashboards ingest.  Emitting it makes ``repro lint`` findings show up
as inline annotations on pull requests via
``github/codeql-action/upload-sarif`` — no custom tooling.

The document is one run of one tool.  Rule metadata (every registered
rule plus the engine's parse pseudo-rule) goes in
``tool.driver.rules``; each finding becomes a ``result`` whose
``ruleIndex`` points back into that array, as the spec recommends so
viewers can show rule help without string lookups.  Only the
actually-executed rule set is advertised (same contract as the JSON
reporter): a ``--select DET`` run must not claim PAR001 ran clean.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.findings import Finding
from repro.lint.rules import RULES, rule_ids

__all__ = ["render_sarif", "SARIF_VERSION", "SARIF_SCHEMA_URI"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json")

TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/paper-repro/hpca2000-static-dynamic"

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule_id: str) -> dict:
    rule = RULES.get(rule_id)
    if rule is None:  # the engine's parse pseudo-rule
        summary, level = "a linted file failed to parse", "error"
    else:
        summary = rule.summary or rule_id
        level = _LEVELS.get(rule.severity.value, "error")
    return {
        "id": rule_id,
        "shortDescription": {"text": summary},
        "defaultConfiguration": {"level": level},
    }


def render_sarif(
    findings: Sequence[Finding],
    executed_rules: Sequence[str] | None = None,
) -> str:
    """Render findings as a SARIF 2.1.0 document (a JSON string).

    ``executed_rules`` is the rule-id set this run actually evaluated;
    ``None`` means the full registry (the engine default).
    """
    advertised = tuple(executed_rules) if executed_rules is not None else rule_ids()
    descriptors = [_rule_descriptor(rule_id) for rule_id in advertised]
    index_of = {rule_id: i for i, rule_id in enumerate(advertised)}

    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.severity.value, "error"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        if finding.rule in index_of:
            result["ruleIndex"] = index_of[finding.rule]
        results.append(result)

    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "rules": descriptors,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
    return json.dumps(document, indent=2)
