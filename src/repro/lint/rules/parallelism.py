"""PAR001/PAR002: the process-pool runner's determinism contracts.

The parallel runner's promise (DESIGN.md section 4) is that scheduling
only changes *who* computes a result, never its value.  Two statically
checkable properties carry that promise:

* **Worker purity** — a worker executes ``_worker_init`` once and then
  ``execute_cell`` per cell; if anything reachable from those entry
  points assigns a module-level global, the *order* cells arrive at a
  worker leaks into later results, and parallel stops being
  bit-identical to serial.  The only sanctioned globals are the worker
  state slots declared in ``runner/engine.py``'s ``_WORKER_GLOBALS``.
* **Pickle safety** — cells and pool callables cross a process
  boundary.  Lambdas, closures, and locally defined classes are not
  picklable; embedding one in a :class:`~repro.runner.cells.Cell` field
  or submitting one to the pool works under ``--jobs 1`` and explodes
  (or worse, silently degrades to serial fallbacks) the first time a
  run actually fans out.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.graph import CallGraph, FunctionInfo
from repro.lint.rules import FileRule, ProjectRule, register

__all__ = ["WorkerPurityRule", "PickleSafetyRule"]

ENGINE_SUFFIX = "runner/engine.py"
CELLS_SUFFIX = "runner/cells.py"
WORKER_GLOBALS_NAME = "_WORKER_GLOBALS"

#: Bare names whose call creates a process pool (checked with any
#: qualification prefix, e.g. ``concurrent.futures.ProcessPoolExecutor``).
_POOL_TYPES = ("ProcessPoolExecutor", "Pool")

#: Method names that ship a callable to pool workers; the callable is
#: the first positional argument.
_SUBMIT_METHODS = ("submit", "map", "apply", "apply_async", "map_async",
                   "imap", "imap_unordered", "starmap")


@register
class WorkerPurityRule(ProjectRule):
    """PAR001: nothing reachable from a worker assigns module globals.

    Builds the project call graph, takes every function reachable from
    ``execute_cell`` (``runner/cells.py``) and the ``_worker_*`` pool
    entry points (``runner/engine.py``), and flags ``global``
    declarations and subscript/attribute stores on module-level names —
    unless the name is in the ``_WORKER_GLOBALS`` whitelist the engine
    module declares.  Constructor arguments exist so tests can aim the
    rule at synthetic root sets.
    """

    rule_id = "PAR001"
    severity = Severity.ERROR
    summary = "worker-reachable code never assigns undeclared module globals"
    anchor = ENGINE_SUFFIX
    example_bad = (
        "def execute_cell(cell):\n"
        "    global _memo\n"
        "    _memo = build_table()   # lost when the worker exits"
    )
    example_good = (
        "def execute_cell(cell):\n"
        "    memo = build_table()   # local, or carried on the cell"
    )

    def __init__(self, extra_roots: tuple[str, ...] = ()):
        self._extra_roots = extra_roots

    def check_project(self, anchor_ctx, project) -> Iterator[Finding]:
        graph = CallGraph.build(project)
        whitelist = self._worker_globals(anchor_ctx.tree)
        roots = [
            fn.qualname
            for fn in graph.functions.values()
            if (fn.ctx is anchor_ctx and fn.cls is None
                and fn.name.startswith("_worker"))
        ]
        roots += [
            fn.qualname
            for fn in graph.functions_named("execute_cell", CELLS_SUFFIX)
        ]
        roots += list(self._extra_roots)
        for fn in graph.reachable_from(roots):
            yield from self._check_function(graph, fn, whitelist)

    def _check_function(self, graph: CallGraph, fn: FunctionInfo,
                        whitelist: frozenset[str]) -> Iterator[Finding]:
        module = graph.table.modules.get(fn.module)
        module_names = frozenset(module.assigns) if module is not None else frozenset()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                offending = [n for n in node.names if n not in whitelist]
                if offending:
                    yield self.finding(
                        fn.ctx, node,
                        f"{fn.qualname} declares global "
                        f"{', '.join(offending)} but is reachable from the "
                        "worker entry points; module state mutated per cell "
                        "makes results depend on scheduling order (declare "
                        f"it in {WORKER_GLOBALS_NAME} only if it is "
                        "worker-lifetime state)",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    yield from self._check_store(
                        fn, target, module_names, whitelist
                    )

    def _check_store(self, fn: FunctionInfo, target: ast.AST,
                     module_names: frozenset[str],
                     whitelist: frozenset[str]) -> Iterator[Finding]:
        """Flag ``MODULE_LEVEL[k] = v`` / ``MODULE_LEVEL.attr = v``."""
        base = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if base is target:  # plain name store: local unless global-declared
            return
        if (isinstance(base, ast.Name) and base.id in module_names
                and base.id not in whitelist and base.id != "self"):
            yield self.finding(
                fn.ctx, target,
                f"{fn.qualname} mutates module-level {base.id!r} but is "
                "reachable from the worker entry points; per-cell writes "
                "to module state break the parallel==serial contract",
            )

    @staticmethod
    def _worker_globals(tree: ast.AST) -> frozenset[str]:
        """The anchor module's declared ``_WORKER_GLOBALS`` string tuple."""
        for node in tree.body if isinstance(tree, ast.Module) else []:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (isinstance(target, ast.Name)
                        and target.id == WORKER_GLOBALS_NAME
                        and isinstance(node.value, (ast.Tuple, ast.List))):
                    return frozenset(
                        element.value for element in node.value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    )
        return frozenset()


@register
class PickleSafetyRule(FileRule):
    """PAR002: nothing unpicklable reaches a Cell field or a pool call.

    Per file: find names bound to the runner's ``Cell`` (via
    ``from ...runner.cells import Cell`` or a module alias), then flag
    lambda arguments, references to nested functions, and locally
    defined classes in (a) ``Cell(...)``/``Cell.make(...)`` arguments
    and (b) pool ``submit``/``map`` calls and ``ProcessPoolExecutor``
    ``initializer=`` keywords.  Both are values that must survive
    ``pickle`` to cross the worker process boundary.
    """

    rule_id = "PAR002"
    severity = Severity.ERROR
    summary = "Cell fields and pool-submitted callables stay picklable"
    example_bad = "pool.submit(lambda: simulate(cell))   # lambdas don't pickle"
    example_good = "pool.submit(simulate, cell)   # module-level callable"

    def check(self, ctx) -> Iterator[Finding]:
        cell_names = self._cell_names(ctx.tree)
        pools = self._pool_names(ctx.tree)
        yield from self._walk_scope(ctx, ctx.tree, {}, cell_names, pools)

    def _walk_scope(self, ctx, scope: ast.AST, nested: dict[str, str],
                    cell_names: set[str],
                    pools: set[str]) -> Iterator[Finding]:
        """Visit every call once, under its enclosing function's scope."""
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk_scope(
                    ctx, child, self._nested_definitions(child), cell_names,
                    pools | self._pool_names(child),
                )
                continue
            if isinstance(child, ast.Call):
                kind = self._call_kind(child, cell_names, pools)
                if kind is not None:
                    yield from self._check_values(ctx, child, kind, nested)
            yield from self._walk_scope(ctx, child, nested, cell_names, pools)

    # -- classification --------------------------------------------------

    @staticmethod
    def _cell_names(tree: ast.AST) -> set[str]:
        """Local names bound to the runner's ``Cell`` class."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                module = node.module
                if module.endswith("runner.cells") or module.endswith("runner"):
                    for alias in node.names:
                        if alias.name == "Cell":
                            names.add(alias.asname or alias.name)
        return names

    def _call_kind(self, call: ast.Call, cell_names: set[str],
                   pools: set[str]) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in cell_names:
                return "cell"
            if func.id in _POOL_TYPES:
                return "pool-ctor"
        elif isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and func.value.id in cell_names
                    and func.attr == "make"):
                return "cell"
            if func.attr in _POOL_TYPES:
                return "pool-ctor"
            # Only a receiver actually bound to a pool constructor counts:
            # ``.map`` alone is far too common (hypothesis strategies,
            # pandas, plain iterables) to flag on the method name.
            if func.attr in _SUBMIT_METHODS and self._is_pool(func.value,
                                                              pools):
                return "pool-submit"
        return None

    @staticmethod
    def _is_pool(receiver: ast.expr, pools: set[str]) -> bool:
        if isinstance(receiver, ast.Name):
            return receiver.id in pools
        # ProcessPoolExecutor(...).submit(...), without a binding
        return (isinstance(receiver, ast.Call)
                and ((isinstance(receiver.func, ast.Name)
                      and receiver.func.id in _POOL_TYPES)
                     or (isinstance(receiver.func, ast.Attribute)
                         and receiver.func.attr in _POOL_TYPES)))

    @staticmethod
    def _pool_names(scope: ast.AST) -> set[str]:
        """Names bound to pool constructors in ``scope``'s subtree.

        Covers ``pool = ProcessPoolExecutor(...)`` and
        ``with ProcessPoolExecutor(...) as pool:``; the walk is
        deliberately over-inclusive (it does not stop at nested function
        boundaries) because a name that *ever* holds a pool is worth
        treating as one.
        """

        def is_ctor(node: ast.AST) -> bool:
            if not isinstance(node, ast.Call):
                return False
            func = node.func
            return ((isinstance(func, ast.Name) and func.id in _POOL_TYPES)
                    or (isinstance(func, ast.Attribute)
                        and func.attr in _POOL_TYPES))

        names: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and is_ctor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (is_ctor(item.context_expr)
                            and isinstance(item.optional_vars, ast.Name)):
                        names.add(item.optional_vars.id)
        return names

    @staticmethod
    def _nested_definitions(scope: ast.AST) -> dict[str, str]:
        """Names of functions/classes defined inside a function scope."""
        out: dict[str, str] = {}
        for node in ast.walk(scope):
            if node is scope:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out[node.name] = "nested function"
            elif isinstance(node, ast.ClassDef):
                out[node.name] = "locally defined class"
        return out

    def _check_values(self, ctx, call: ast.Call, kind: str,
                      nested: dict[str, str]) -> Iterator[Finding]:
        if kind == "cell":
            values = list(call.args) + [kw.value for kw in call.keywords]
            where = "a Cell field"
        elif kind == "pool-submit":
            values = call.args[:1]
            where = "a pool submission"
        else:  # pool-ctor: the initializer crosses into every worker
            values = [kw.value for kw in call.keywords
                      if kw.arg == "initializer"]
            where = "a pool initializer"
        for value in values:
            yield from self._check_value(ctx, value, where, nested)

    def _check_value(self, ctx, value: ast.expr, where: str,
                     nested: dict[str, str]) -> Iterator[Finding]:
        if isinstance(value, ast.Lambda):
            yield self.finding(
                ctx, value,
                f"lambda used as {where}; lambdas cannot be pickled "
                "across the worker process boundary — use a module-level "
                "function",
            )
            return
        if isinstance(value, ast.Name) and value.id in nested:
            yield self.finding(
                ctx, value,
                f"{nested[value.id]} {value.id!r} used as {where}; only "
                "module-level definitions survive pickling to a worker",
            )
            return
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and nested.get(value.func.id) == "locally defined class"):
            yield self.finding(
                ctx, value,
                f"instance of locally defined class {value.func.id!r} used "
                f"as {where}; pickle resolves classes by module path, which "
                "a function-local class does not have",
            )
            return
        # Containers can smuggle the same values in one level down.
        if isinstance(value, (ast.Tuple, ast.List, ast.Dict)):
            elements = (value.elts if not isinstance(value, ast.Dict)
                        else [v for v in value.values if v is not None])
            for element in elements:
                yield from self._check_value(ctx, element, where, nested)
