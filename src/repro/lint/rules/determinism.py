"""DET001/DET002: every run must be a pure function of its seed.

The reproduction's headline property — rerunning an experiment with the
same root seed replays the exact same branch trace and misprediction
counts — holds only while *all* randomness flows through the named
streams of :mod:`repro.utils.rng` and nothing reads clocks or OS
entropy.  A single stray ``random.random()`` or ``time.time()`` does not
crash anything; it silently decouples MISP/KI numbers from the seed,
which is the worst possible failure mode for a paper reproduction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileRule, register

__all__ = ["RandomStreamRule", "WallClockRule"]

RNG_MODULE_SUFFIX = "utils/rng.py"
"""The one module allowed to touch :mod:`random` directly."""


def _dotted_name(node: ast.AST) -> str | None:
    """Flatten a ``Name``/``Attribute`` chain to ``a.b.c`` (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@register
class RandomStreamRule(FileRule):
    """DET001: all randomness must derive from ``derive_rng`` streams.

    Direct ``random.Random()``, ``random.seed()``, or module-level
    ``random.*`` draws bypass the named-stream derivation, so adding or
    reordering any consumer of randomness would perturb every other
    stream and change published numbers.  Importing :mod:`random` at all
    is flagged: outside ``utils/rng.py`` there is no legitimate draw.
    """

    rule_id = "DET001"
    severity = Severity.ERROR
    summary = "randomness must flow through utils.rng.derive_rng"

    def applies(self, ctx) -> bool:
        return not ctx.matches(RNG_MODULE_SUFFIX)

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx, node,
                            "import of 'random' outside utils/rng.py; use "
                            "repro.utils.rng.derive_rng for a named stream",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    # Importing the Random *type* for annotations is
                    # harmless; instantiating it is what DET001 bans.
                    names = [a.name for a in node.names if a.name != "Random"]
                    if names:
                        yield self.finding(
                            ctx, node,
                            f"'from random import {', '.join(names)}' outside "
                            "utils/rng.py; use repro.utils.rng.derive_rng "
                            "for a named stream",
                        )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is not None and dotted.startswith("random."):
                    yield self.finding(
                        ctx, node,
                        f"direct call to {dotted}(); derive a seeded stream "
                        "via repro.utils.rng.derive_rng instead",
                    )
                elif dotted == "Random":
                    yield self.finding(
                        ctx, node,
                        "direct Random(...) construction; use "
                        "repro.utils.rng.derive_rng (or rng_from_seed for "
                        "an already-derived seed) so every stream stays "
                        "named and independent",
                    )


#: ``module.attr`` call tails that read wall clocks or OS entropy.  The
#: match is on the last two components of the dotted call, so both
#: ``time.time()`` and ``datetime.datetime.now()`` are caught.
_BANNED_CALL_TAILS: dict[tuple[str, str], str] = {
    ("time", "time"): "wall clock",
    ("time", "time_ns"): "wall clock",
    ("time", "monotonic"): "clock",
    ("time", "monotonic_ns"): "clock",
    ("time", "perf_counter"): "clock",
    ("time", "perf_counter_ns"): "clock",
    ("time", "process_time"): "clock",
    ("time", "process_time_ns"): "clock",
    ("datetime", "now"): "wall clock",
    ("datetime", "utcnow"): "wall clock",
    ("datetime", "today"): "wall clock",
    ("date", "today"): "wall clock",
    ("os", "urandom"): "OS entropy",
    ("os", "getrandom"): "OS entropy",
    ("uuid", "uuid1"): "clock/MAC-derived id",
    ("uuid", "uuid4"): "OS entropy",
}

#: ``from <module> import <name>`` pairs that smuggle the same calls in
#: under bare names the call check above cannot see.
_BANNED_IMPORTS: set[tuple[str, str]] = {
    (module, name) for (module, name) in _BANNED_CALL_TAILS
    if module in ("time", "os", "uuid")
}


@register
class WallClockRule(FileRule):
    """DET002: no wall-clock, OS-entropy, or set-order nondeterminism.

    Clock reads and ``os.urandom`` make output depend on when/where a
    run happens; iterating a set feeds hash-order (which varies across
    processes for str keys under hash randomization) into whatever the
    loop builds.  Either way two "identical" runs stop agreeing.
    """

    rule_id = "DET002"
    severity = Severity.ERROR
    summary = "no wall clocks, OS entropy, or unordered-set iteration"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import(ctx, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iteration(ctx, generator.iter)

    def _check_call(self, ctx, node: ast.Call) -> Iterator[Finding]:
        dotted = _dotted_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if parts[0] == "secrets":
            yield self.finding(
                ctx, node,
                f"{dotted}() draws OS entropy; results would no longer be "
                "a function of the root seed",
            )
            return
        if len(parts) < 2:
            return
        tail = (parts[-2], parts[-1])
        why = _BANNED_CALL_TAILS.get(tail)
        if why is not None:
            yield self.finding(
                ctx, node,
                f"{dotted}() reads {why}; output must depend only on the "
                "root seed, not on when or where a run happens",
            )

    def _check_import(self, ctx, node: ast.ImportFrom) -> Iterator[Finding]:
        if node.level != 0:
            return
        if node.module == "secrets":
            yield self.finding(
                ctx, node, "'secrets' draws OS entropy; use "
                "repro.utils.rng.derive_rng for seeded randomness",
            )
            return
        for alias in node.names:
            if (node.module, alias.name) in _BANNED_IMPORTS:
                yield self.finding(
                    ctx, node,
                    f"'from {node.module} import {alias.name}' imports a "
                    "nondeterministic source; seeded runs must not read it",
                )

    def _check_iteration(self, ctx, iter_node: ast.AST) -> Iterator[Finding]:
        if isinstance(iter_node, ast.Set):
            yield self.finding(
                ctx, iter_node,
                "iterating a set literal: set order is arbitrary and feeds "
                "nondeterminism into whatever this loop builds; use a tuple "
                "or sorted(...)",
            )
        elif (isinstance(iter_node, ast.Call)
                and isinstance(iter_node.func, ast.Name)
                and iter_node.func.id in ("set", "frozenset")):
            yield self.finding(
                ctx, iter_node,
                f"iterating {iter_node.func.id}(...) directly: hash order "
                "varies across processes; wrap in sorted(...) to fix the "
                "iteration order",
            )
