"""DET001/DET002/DET003: every run must be a pure function of its seed.

The reproduction's headline property — rerunning an experiment with the
same root seed replays the exact same branch trace and misprediction
counts — holds only while *all* randomness flows through the named
streams of :mod:`repro.utils.rng` and nothing reads clocks or OS
entropy.  A single stray ``random.random()`` or ``time.time()`` does not
crash anything; it silently decouples MISP/KI numbers from the seed,
which is the worst possible failure mode for a paper reproduction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dataflow import ReachingDefinitions, provenance_atoms
from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileRule, register

__all__ = ["RandomStreamRule", "WallClockRule", "SeedProvenanceRule"]

RNG_MODULE_SUFFIX = "utils/rng.py"
"""The one module allowed to touch :mod:`random` directly."""


def _dotted_name(node: ast.AST) -> str | None:
    """Flatten a ``Name``/``Attribute`` chain to ``a.b.c`` (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@register
class RandomStreamRule(FileRule):
    """DET001: all randomness must derive from ``derive_rng`` streams.

    Direct ``random.Random()``, ``random.seed()``, or module-level
    ``random.*`` draws bypass the named-stream derivation, so adding or
    reordering any consumer of randomness would perturb every other
    stream and change published numbers.  Importing :mod:`random` at all
    is flagged: outside ``utils/rng.py`` there is no legitimate draw.
    """

    rule_id = "DET001"
    severity = Severity.ERROR
    summary = "randomness must flow through utils.rng.derive_rng"
    example_bad = "rng = random.Random(42)"
    example_good = (
        "from repro.utils.rng import derive_rng\n"
        'rng = derive_rng(master_seed, "trace", program)'
    )

    def applies(self, ctx) -> bool:
        return not ctx.matches(RNG_MODULE_SUFFIX)

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx, node,
                            "import of 'random' outside utils/rng.py; use "
                            "repro.utils.rng.derive_rng for a named stream",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    # Importing the Random *type* for annotations is
                    # harmless; instantiating it is what DET001 bans.
                    names = [a.name for a in node.names if a.name != "Random"]
                    if names:
                        yield self.finding(
                            ctx, node,
                            f"'from random import {', '.join(names)}' outside "
                            "utils/rng.py; use repro.utils.rng.derive_rng "
                            "for a named stream",
                        )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is not None and dotted.startswith("random."):
                    yield self.finding(
                        ctx, node,
                        f"direct call to {dotted}(); derive a seeded stream "
                        "via repro.utils.rng.derive_rng instead",
                    )
                elif dotted == "Random":
                    yield self.finding(
                        ctx, node,
                        "direct Random(...) construction; use "
                        "repro.utils.rng.derive_rng (or rng_from_seed for "
                        "an already-derived seed) so every stream stays "
                        "named and independent",
                    )


#: ``module.attr`` call tails that read wall clocks or OS entropy.  The
#: match is on the last two components of the dotted call, so both
#: ``time.time()`` and ``datetime.datetime.now()`` are caught.
_BANNED_CALL_TAILS: dict[tuple[str, str], str] = {
    ("time", "time"): "wall clock",
    ("time", "time_ns"): "wall clock",
    ("time", "monotonic"): "clock",
    ("time", "monotonic_ns"): "clock",
    ("time", "perf_counter"): "clock",
    ("time", "perf_counter_ns"): "clock",
    ("time", "process_time"): "clock",
    ("time", "process_time_ns"): "clock",
    ("datetime", "now"): "wall clock",
    ("datetime", "utcnow"): "wall clock",
    ("datetime", "today"): "wall clock",
    ("date", "today"): "wall clock",
    ("os", "urandom"): "OS entropy",
    ("os", "getrandom"): "OS entropy",
    ("uuid", "uuid1"): "clock/MAC-derived id",
    ("uuid", "uuid4"): "OS entropy",
}

#: ``from <module> import <name>`` pairs that smuggle the same calls in
#: under bare names the call check above cannot see.
_BANNED_IMPORTS: set[tuple[str, str]] = {
    (module, name) for (module, name) in _BANNED_CALL_TAILS
    if module in ("time", "os", "uuid")
}


@register
class WallClockRule(FileRule):
    """DET002: no wall-clock, OS-entropy, or set-order nondeterminism.

    Clock reads and ``os.urandom`` make output depend on when/where a
    run happens; iterating a set feeds hash-order (which varies across
    processes for str keys under hash randomization) into whatever the
    loop builds.  Either way two "identical" runs stop agreeing.
    """

    rule_id = "DET002"
    severity = Severity.ERROR
    summary = "no wall clocks, OS entropy, or unordered-set iteration"
    example_bad = "for site in set(sites):   # hash order varies per process"
    example_good = "for site in sorted(set(sites)):"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import(ctx, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iteration(ctx, generator.iter)

    def _check_call(self, ctx, node: ast.Call) -> Iterator[Finding]:
        dotted = _dotted_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if parts[0] == "secrets":
            yield self.finding(
                ctx, node,
                f"{dotted}() draws OS entropy; results would no longer be "
                "a function of the root seed",
            )
            return
        if len(parts) < 2:
            return
        tail = (parts[-2], parts[-1])
        why = _BANNED_CALL_TAILS.get(tail)
        if why is not None:
            yield self.finding(
                ctx, node,
                f"{dotted}() reads {why}; output must depend only on the "
                "root seed, not on when or where a run happens",
            )

    def _check_import(self, ctx, node: ast.ImportFrom) -> Iterator[Finding]:
        if node.level != 0:
            return
        if node.module == "secrets":
            yield self.finding(
                ctx, node, "'secrets' draws OS entropy; use "
                "repro.utils.rng.derive_rng for seeded randomness",
            )
            return
        for alias in node.names:
            if (node.module, alias.name) in _BANNED_IMPORTS:
                yield self.finding(
                    ctx, node,
                    f"'from {node.module} import {alias.name}' imports a "
                    "nondeterministic source; seeded runs must not read it",
                )

    def _check_iteration(self, ctx, iter_node: ast.AST) -> Iterator[Finding]:
        if isinstance(iter_node, ast.Set):
            yield self.finding(
                ctx, iter_node,
                "iterating a set literal: set order is arbitrary and feeds "
                "nondeterminism into whatever this loop builds; use a tuple "
                "or sorted(...)",
            )
        elif (isinstance(iter_node, ast.Call)
                and isinstance(iter_node.func, ast.Name)
                and iter_node.func.id in ("set", "frozenset")):
            yield self.finding(
                ctx, iter_node,
                f"iterating {iter_node.func.id}(...) directly: hash order "
                "varies across processes; wrap in sorted(...) to fix the "
                "iteration order",
            )


#: Callee prefixes/names whose result (or any value derived from it)
#: must never become a seed: clocks, OS entropy, environment state, and
#: the module-level ``random`` streams DET001 already bans directly.
_TAINTED_CALL_HEADS = ("time.", "datetime.", "random.", "uuid.", "secrets.")
_TAINTED_CALL_EXACT = frozenset({
    "os.getenv", "os.urandom", "os.getrandom", "os.getpid", "id",
    "os.environ.get", "environ.get", "getenv", "urandom",
})
_TAINTED_SUBSCRIPT_BASES = frozenset({"os.environ", "environ"})


@register
class SeedProvenanceRule(FileRule):
    """DET003: every ``rng_from_seed`` argument has seeded provenance.

    ``rng_from_seed`` is DET001's escape hatch — it rebuilds a stream
    from an *already-derived* seed, so it is exactly where a laundered
    nondeterministic value would slip back into the simulation.  The
    rule backward-slices the argument through the enclosing function's
    reaching definitions (module-level constants included): a seed must
    bottom out in literals, parameters, carried-object fields
    (``self.behavior_seed``, ``ctx.seed``), or ``derive_seed`` results.
    Any clock, ``os.environ``, ``os.getpid``, or ``random`` read in the
    slice — however many arithmetic or ``int(...)`` wrappers deep — is
    a finding.
    """

    rule_id = "DET003"
    severity = Severity.ERROR
    summary = "rng_from_seed arguments trace to fields/literals, never env"
    example_bad = 'rng = rng_from_seed(int(os.environ["SEED"]))'
    example_good = "rng = rng_from_seed(self.behavior_seed)"

    def applies(self, ctx) -> bool:
        return not ctx.matches(RNG_MODULE_SUFFIX)

    def check(self, ctx) -> Iterator[Finding]:
        module_assigns = {
            target.id: stmt.value
            for stmt in ctx.tree.body if isinstance(stmt, ast.Assign)
            for target in stmt.targets if isinstance(target, ast.Name)
        }
        yield from self._check_scope(ctx, ctx.tree, module_assigns)

    def _check_scope(self, ctx, scope: ast.AST,
                     module_assigns: dict) -> Iterator[Finding]:
        defs = ReachingDefinitions(scope)
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop(0)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, node, module_assigns)
                continue  # the nested scope owns its bindings
            if isinstance(node, ast.Call) and self._is_rng_from_seed(node):
                yield from self._check_call(ctx, node, defs, module_assigns)
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _is_rng_from_seed(call: ast.Call) -> bool:
        dotted = _dotted_name(call.func)
        return dotted is not None and (
            dotted == "rng_from_seed" or dotted.endswith(".rng_from_seed")
        )

    def _check_call(self, ctx, call: ast.Call, defs: ReachingDefinitions,
                    module_assigns: dict) -> Iterator[Finding]:
        if not call.args:
            return
        for atom in provenance_atoms(call.args[0], defs, module_assigns,
                                     use_line=call.lineno):
            why = self._taint(atom)
            if why is not None:
                yield self.finding(
                    ctx, call,
                    f"rng_from_seed argument derives from {why}; a seed "
                    "must trace back to a Cell/ExperimentContext field, a "
                    "parameter, or a literal so reruns replay bit-identical "
                    "streams",
                )
                return  # one finding per call, on the first tainted atom

    @staticmethod
    def _taint(atom) -> str | None:
        if atom.kind == "call":
            dotted = atom.text
            if (dotted in _TAINTED_CALL_EXACT
                    or any(dotted.startswith(head) or f".{head}" in f".{dotted}"
                           for head in _TAINTED_CALL_HEADS)):
                return f"{dotted}()"
        elif atom.kind == "subscript":
            if (atom.text in _TAINTED_SUBSCRIPT_BASES
                    or atom.text.endswith(".environ")):
                return f"{atom.text}[...]"
        elif atom.kind == "attribute":
            if atom.text.endswith(".environ") or atom.text == "environ":
                return atom.text
        return None
