"""PRED001/PRED002/PRED003: predictor contract, registration, state.

The simulator (and the collision tracker riding on it) drives every
predictor through the protocol documented in
:mod:`repro.predictors.base`: ``predict`` then ``update`` with the
predicted value passed back, plus ``size_bytes`` for budget accounting
and a ``name`` for reports.  A subclass that renames an ``update``
parameter or forgets an override does not fail loudly — Python happily
dispatches to a mismatched method and the run produces MISP/KI numbers
for a predictor that never trained correctly.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileRule, ProjectRule, register

__all__ = [
    "PredictorContractRule",
    "PredictorHiddenStateRule",
    "PredictorRegistrationRule",
]

BASE_CLASS = "BranchPredictor"

#: Members every concrete subclass must define, and why.
_REQUIRED_METHODS = ("predict", "update", "size_bytes")

#: The exact positional signature of ``update`` (see base.py contract).
_UPDATE_PARAMS = ("self", "address", "taken", "predicted")


def _base_names(node: ast.ClassDef) -> set[str]:
    """Unqualified base-class names of a class definition."""
    names: set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _class_level_name(node: ast.ClassDef) -> bool:
    """Whether the class body assigns a ``name`` attribute."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "name":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "name":
                return True
    return False


def _instance_level_name(node: ast.ClassDef) -> bool:
    """Whether any method assigns ``self.name`` (e.g. wrapper predictors)."""
    for stmt in ast.walk(node):
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr == "name"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    return True
    return False


def _methods(node: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@register
class PredictorContractRule(FileRule):
    """PRED001: ``BranchPredictor`` subclasses honor the base contract.

    Checks every class that directly bases ``BranchPredictor``: it must
    define ``name`` (class-level or ``self.name`` in ``__init__``),
    override ``predict``/``update``/``size_bytes``, and keep ``update``'s
    signature exactly ``(self, address, taken, predicted)`` so the
    simulator's positional call trains what ``predict`` looked up.
    """

    rule_id = "PRED001"
    severity = Severity.ERROR
    summary = "BranchPredictor subclasses define name/predict/update/size_bytes"
    example_bad = (
        "class MyPredictor(BranchPredictor):\n"
        "    def predict(self, address): ...   # update/size_bytes missing"
    )
    example_good = (
        "class MyPredictor(BranchPredictor):\n"
        '    name = "mine"\n'
        "    def predict(self, address): ...\n"
        "    def update(self, address, taken): ...\n"
        "    def size_bytes(self): ..."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if BASE_CLASS not in _base_names(node):
                continue
            yield from self._check_class(ctx, node)

    def _check_class(self, ctx, node: ast.ClassDef) -> Iterator[Finding]:
        methods = _methods(node)
        if not (_class_level_name(node) or _instance_level_name(node)):
            yield self.finding(
                ctx, node,
                f"predictor {node.name} does not define 'name'; reports and "
                "the collision tracker would label it 'abstract'",
            )
        for required in _REQUIRED_METHODS:
            if required not in methods:
                yield self.finding(
                    ctx, node,
                    f"predictor {node.name} does not override {required!r}; "
                    "the simulator drives every predictor through it",
                )
        update = methods.get("update")
        if update is not None:
            params = tuple(
                arg.arg for arg in update.args.posonlyargs + update.args.args
            )
            extras = update.args.vararg or update.args.kwarg
            if params != _UPDATE_PARAMS or update.args.kwonlyargs or extras:
                got = ", ".join(params)
                yield self.finding(
                    ctx, update,
                    f"{node.name}.update({got}) does not match the base "
                    f"contract update({', '.join(_UPDATE_PARAMS)}); the "
                    "simulator calls it positionally with predict's result",
                )


def _string_tuple(node: ast.AST) -> list[tuple[str, int]] | None:
    """(value, lineno) pairs of a tuple/list of string constants."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out: list[tuple[str, int]] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        out.append((element.value, element.lineno))
    return out


@register
class PredictorRegistrationRule(ProjectRule):
    """PRED002: names, factories, classes, and CLI choices agree.

    ``PREDICTOR_NAMES`` is what the CLI offers, ``_FACTORIES`` is what
    ``make_predictor`` can build, and each scheme class carries a
    ``name`` string used in reports.  A name present in one place but
    not the others is either a phantom predictor (CLI advertises it,
    factory raises) or an unreachable one (factory exists, CLI hides
    it) — both corrupt cross-scheme comparisons silently.
    """

    rule_id = "PRED002"
    severity = Severity.ERROR
    summary = "PREDICTOR_NAMES, _FACTORIES, class names, and CLI choices agree"
    anchor = "predictors/sizing.py"
    example_bad = (
        '# a class declares name = "agree" but PREDICTOR_NAMES or the\n'
        "# _FACTORIES table in predictors/sizing.py does not list it"
    )
    example_good = (
        "# every predictor name appears in the class, PREDICTOR_NAMES,\n"
        "# and _FACTORIES, so the CLI and registry cannot drift"
    )

    def check_project(self, anchor_ctx, project) -> Iterator[Finding]:
        names = self._assigned_string_tuple(anchor_ctx.tree, "PREDICTOR_NAMES")
        factory_keys = self._dict_string_keys(anchor_ctx.tree, "_FACTORIES")
        if names is None:
            yield self.finding(
                anchor_ctx, anchor_ctx.tree,
                "PREDICTOR_NAMES is not a literal tuple of strings; the "
                "registration cross-check cannot see it",
            )
            return
        name_set = {value for value, _ in names}
        if factory_keys is not None:
            key_set = {value for value, _ in factory_keys}
            for value, lineno in names:
                if value not in key_set:
                    yield self._at(anchor_ctx, lineno,
                                   f"predictor {value!r} is in PREDICTOR_NAMES "
                                   "but has no _FACTORIES entry; the CLI "
                                   "advertises a scheme make_predictor cannot "
                                   "build")
            for value, lineno in factory_keys:
                if value not in name_set:
                    yield self._at(anchor_ctx, lineno,
                                   f"factory {value!r} is not in "
                                   "PREDICTOR_NAMES; the scheme is "
                                   "unreachable from the CLI and experiment "
                                   "sweeps")
        yield from self._check_class_names(anchor_ctx, project, names)
        yield from self._check_cli(project)

    # -- helpers ---------------------------------------------------------

    def _at(self, ctx, lineno: int, message: str) -> Finding:
        return Finding(path=ctx.display, line=lineno, col=0,
                       rule=self.rule_id, severity=self.severity,
                       message=message)

    @staticmethod
    def _assigned_string_tuple(tree: ast.AST, target_name: str):
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == target_name:
                        return _string_tuple(node.value)
        return None

    @staticmethod
    def _dict_string_keys(tree: ast.AST, target_name: str):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (isinstance(target, ast.Name)
                        and target.id == target_name):
                    continue
                value = node.value
                if not isinstance(value, ast.Dict):
                    return None
                keys: list[tuple[str, int]] = []
                for key in value.keys:
                    if not (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)):
                        return None
                    keys.append((key.value, key.lineno))
                return keys
        return None

    def _check_class_names(self, anchor_ctx, project, names) -> Iterator[Finding]:
        """Every registered name must belong to some predictor class.

        The scan covers class-level ``name = "..."`` strings of
        ``BranchPredictor`` subclasses in the linted set.  Wrapper
        predictors with computed instance names (and deliberate
        zero-budget baselines like ``always-taken``) are not required to
        be registered, so only the names → classes direction is checked.
        """
        class_names: set[str] = set()
        for ctx in project.files:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if BASE_CLASS not in _base_names(node):
                    continue
                for stmt in node.body:
                    if (isinstance(stmt, ast.Assign)
                            and any(isinstance(t, ast.Name) and t.id == "name"
                                    for t in stmt.targets)
                            and isinstance(stmt.value, ast.Constant)
                            and isinstance(stmt.value.value, str)):
                        class_names.add(stmt.value.value)
        if not class_names:
            return  # Linted set has no predictor classes to cross-check.
        for value, lineno in names:
            if value not in class_names:
                yield self._at(
                    anchor_ctx, lineno,
                    f"PREDICTOR_NAMES entry {value!r} matches no "
                    "BranchPredictor subclass name; reports would "
                    "mislabel the scheme",
                )

    def _check_cli(self, project) -> Iterator[Finding]:
        """Every CLI ``--predictor`` must take choices=PREDICTOR_NAMES."""
        cli_ctx = project.find("repro/cli.py") or project.find("cli.py")
        if cli_ctx is None:
            return
        for node in ast.walk(cli_ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add_argument"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value == "--predictor"):
                continue
            choices = next((kw.value for kw in node.keywords
                            if kw.arg == "choices"), None)
            if not (isinstance(choices, ast.Name)
                    and choices.id == "PREDICTOR_NAMES"):
                yield self._at(
                    cli_ctx, node.lineno,
                    "--predictor must use choices=PREDICTOR_NAMES; a "
                    "hand-written list drifts from the factory table",
                )


def _self_attr_assigns(fn: ast.FunctionDef) -> set[str]:
    """Attributes plainly assigned as ``self.X = ...`` inside a method.

    Augmented assignments (``self.hits += 1``) are deliberately ignored:
    they bump counters that exist before the call, they do not *create*
    lookup context for a later method to consume.
    """
    out: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            for attr in ast.walk(target):
                if (isinstance(attr, ast.Attribute)
                        and isinstance(attr.value, ast.Name)
                        and attr.value.id == "self"):
                    out.add(attr.attr)
    return out


def _self_attr_reads(fn: ast.FunctionDef) -> dict[str, int]:
    """``self.X`` reads inside a method, mapped to their first line."""
    out: dict[str, int] = {}
    for node in ast.walk(fn):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            out.setdefault(node.attr, node.lineno)
        elif isinstance(node, ast.AugAssign):
            # ``self.X += ...`` reads self.X before storing it.
            target = node.target
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                out.setdefault(target.attr, target.lineno)
    return out


@register
class PredictorHiddenStateRule(FileRule):
    """PRED003: predict-time state consumed by ``update`` is declared.

    Most table predictors remember *where predict looked* (an index, a
    bank choice) in ``self`` attributes that ``update`` then consumes.
    That coupling is correct only while every ``update`` immediately
    follows its own ``predict`` — exactly the pairing that wrong-path
    speculation, replayed commits, or a caller invoking ``update``
    standalone silently break (the ``CombinedPredictor`` stale
    ``_last_was_static`` bug was this shape).  The contract: a predictor
    whose ``update`` reads attributes that ``predict`` assigns must
    declare them in a class-level ``_PREDICT_STATE`` tuple, making the
    dependency visible and keeping the declaration honest both ways
    (undeclared reads and stale declarations are both findings).
    """

    rule_id = "PRED003"
    severity = Severity.ERROR
    summary = "update()'s predict-time state is declared in _PREDICT_STATE"
    example_bad = (
        "def update(self, address, taken):\n"
        "    index = self._last_index   # not listed in _PREDICT_STATE"
    )
    example_good = (
        '_PREDICT_STATE = ("_last_index",)\n'
        "def update(self, address, taken):\n"
        "    index = self._last_index"
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if BASE_CLASS not in _base_names(node):
                continue
            yield from self._check_class(ctx, node)

    def _check_class(self, ctx, node: ast.ClassDef) -> Iterator[Finding]:
        methods = _methods(node)
        predict = methods.get("predict")
        update = methods.get("update")
        declared = self._declared(node)
        if predict is None or update is None:
            return
        assigned = _self_attr_assigns(predict)
        reads = _self_attr_reads(update)
        hidden = {attr: line for attr, line in reads.items()
                  if attr in assigned}
        declared_names = {value for value, _ in declared}
        for attr, line in sorted(hidden.items(), key=lambda kv: kv[1]):
            if attr not in declared_names:
                yield Finding(
                    path=ctx.display, line=line, col=0,
                    rule=self.rule_id, severity=self.severity,
                    message=(
                        f"{node.name}.update reads {attr!r}, which "
                        "predict() assigns, without declaring it in "
                        "_PREDICT_STATE; the hidden coupling breaks "
                        "whenever the predict/update pairing does "
                        "(speculative squash, standalone update)"
                    ),
                )
        for value, line in declared:
            if value not in hidden:
                yield Finding(
                    path=ctx.display, line=line, col=0,
                    rule=self.rule_id, severity=self.severity,
                    message=(
                        f"{node.name} declares {value!r} in _PREDICT_STATE "
                        "but update() reads no predict()-assigned attribute "
                        "of that name; stale declarations hide real "
                        "dependencies — remove it"
                    ),
                )

    @staticmethod
    def _declared(node: ast.ClassDef) -> list[tuple[str, int]]:
        """The class-level ``_PREDICT_STATE`` entries, with lines."""
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            else:
                continue
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id == "_PREDICT_STATE"):
                    value = getattr(stmt, "value", None)
                    if value is None:
                        return []
                    return _string_tuple(value) or []
        return []
