"""CONC001-CONC004: concurrency safety for the sharded result store.

The runner's process pool makes every artifact store a *shared* data
structure: N workers plus the parent all read, write, stamp, and evict
entries in the same directory tree at once.  Atomic replace (the ATM
rules) makes any single write safe; these rules prove the multi-step
disciplines on top of it:

* **CONC001** — cross-process file *mutation* (unlink, rename, rmtree)
  in store modules happens under the :func:`repro.utils.io.shard_lock`
  seam or inside a ``*_locked`` helper whose call sites hold the lock;
  and a read-modify-write cycle never acts on a directory scan taken
  *before* the lock was acquired (the scan is stale by the time the
  lock arrives — another process may have removed the entry).
* **CONC002** — lock discipline: the lock seam is acquired only as a
  ``with`` context (so an exception cannot leak a held lock), two shard
  locks never nest (lexicographically unordered nesting deadlocks two
  processes), and nothing *blocking* — sleeps, subprocesses, whole
  simulations, pool submissions — runs while a shard lock is held.
* **CONC003** — shared mutable *filesystem* state: code reachable from
  both the pool workers and the parent must not write or mutate files
  except through the store seams (the result cache, the sharded store,
  the atomic-write module).  A raw write on a path both sides can reach
  is a torn-file or lost-update race the store machinery cannot see.
* **CONC004** — descriptor hygiene in store modules: every ``open`` is
  a context manager, every raw ``os.open`` has an ``os.close`` on a
  ``finally`` path, every ``mkstemp`` temp name is unlinked on failure.
  A leaked descriptor in a long-lived pool worker is a slow fd-limit
  crash attributed to whatever cell happened to run 10,000 cells later.

The self-host subject is :mod:`repro.runner.store`: these rules are the
static proof of exactly the invariants its docstring claims.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.concurrency import (
    blocking_call_description,
    body_span,
    call_name,
    function_nodes,
    in_locked_function,
    is_lock_call,
    lock_regions,
    lock_seam_aliases,
    module_info,
    mutation_call_description,
    node_span,
    scan_call_name,
    within,
)
from repro.lint.dataflow import ReachingDefinitions, provenance_atoms
from repro.lint.findings import Finding
from repro.lint.graph import CallGraph, _dotted
from repro.lint.provenance import raw_write_calls
from repro.lint.rules import FileRule, ProjectRule, register
from repro.lint.rules.provenance import IO_SEAM_SUFFIX, STORE_FRAGMENTS

__all__ = [
    "CrossProcessMutationRule",
    "LockDisciplineRule",
    "SharedStateEscapeRule",
    "ResourceLeakRule",
]

ENGINE_SUFFIX = "runner/engine.py"
CELLS_SUFFIX = "runner/cells.py"
#: The service's batch dispatch entry: it feeds the same persistent
#: pool the parent-side runner does, so everything it reaches is
#: parent-region code for CONC003's worker∩parent intersection.
SERVICE_BATCHING_SUFFIX = "service/batching.py"
SERVICE_DISPATCH_ENTRY = "_dispatch"

#: Modules through which worker/parent-shared filesystem writes are
#: sanctioned (CONC003): the cache facade, the sharded store, and the
#: atomic-write/lock seam they are built on.
STORE_SEAM_SUFFIXES = ("runner/cache.py", "runner/store.py", "utils/io.py")

#: Calls that open a file descriptor (CONC004 wants them scoped).
_OPEN_CALLS = frozenset({"open", "io.open", "os.fdopen"})


class _ConcStoreRule(FileRule):
    """Shared scope for the store-module CONC rules.

    Same fragment scoping as the ATM rules; ``include_seam`` controls
    whether :mod:`repro.utils.io` itself is in scope (CONC004 audits
    the seam too — it is where the raw descriptors live).
    """

    include_seam = False

    def __init__(
        self,
        fragments: tuple[str, ...] = STORE_FRAGMENTS,
        seam_suffix: str = IO_SEAM_SUFFIX,
    ):
        self.fragments = fragments
        self.seam_suffix = seam_suffix

    def applies(self, ctx) -> bool:
        if ctx.matches(self.seam_suffix):
            return self.include_seam
        posix = "/" + ctx.path.as_posix()
        return any(fragment in posix for fragment in self.fragments)


@register
class CrossProcessMutationRule(_ConcStoreRule):
    """CONC001: store-module mutations hold the shard lock.

    Three checks per store module:

    * a mutation call (``os.unlink``/``os.replace``/``shutil.rmtree``
      and friends) must sit inside a ``with shard_lock(...)`` body or
      inside a ``*_locked`` helper (whose contract is "caller holds the
      lock");
    * every *call* to a ``*_locked`` helper must itself sit under a
      lock — the naming convention moves the obligation to the call
      site, it does not waive it;
    * a value derived from a directory *scan* (``os.listdir``,
      ``os.stat``, ``glob``) taken outside the lock must not drive code
      inside it: the scan is stale once the lock is finally acquired,
      so the locked read-modify-write must re-read under the lock.
    """

    rule_id = "CONC001"
    summary = (
        "store-module file mutations happen under the shard lock (or in "
        "*_locked helpers called under it), and locked code never acts "
        "on a pre-lock directory scan"
    )
    example_bad = (
        "names = os.listdir(shard)        # scan before the lock\n"
        "with shard_lock(lock_path):\n"
        "    for name in names:           # stale by now\n"
        "        os.unlink(name)"
    )
    example_good = (
        "with shard_lock(lock_path):\n"
        "    for name in os.listdir(shard):   # scan under the lock\n"
        "        os.unlink(name)"
    )

    def check(self, ctx) -> Iterator[Finding]:
        module = module_info(ctx)
        aliases = lock_seam_aliases(module)
        spans = [
            body_span(region)
            for region in lock_regions(ctx.tree, module, aliases)
        ]
        functions = function_nodes(ctx.tree)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if within(node, spans) or in_locked_function(node, functions):
                continue
            description = mutation_call_description(node)
            if description is not None:
                yield self.finding(
                    ctx, node,
                    f"{description} mutates shared store state without "
                    f"holding the shard lock: a concurrent process can "
                    f"interleave its own read-modify-write and lose the "
                    f"update — wrap the cycle in 'with shard_lock(...)' "
                    f"or move it into a *_locked helper",
                )
                continue
            callee = call_name(node)
            if callee is not None and callee.endswith("_locked"):
                yield self.finding(
                    ctx, node,
                    f"{callee}() is a *_locked helper (contract: caller "
                    f"holds the shard lock) but this call site holds no "
                    f"lock — acquire 'with shard_lock(...)' around it",
                )

        yield from self._check_stale_scans(ctx, module, spans, functions)

    def _check_stale_scans(
        self, ctx, module, spans, functions
    ) -> Iterator[Finding]:
        """Names read under a lock must not derive from a pre-lock scan."""
        reported: set[int] = set()
        for fn in functions:
            fn_span = node_span(fn)
            fn_spans = [
                s for s in spans
                if s[0] >= fn_span[0] and s[2] <= fn_span[2]
            ]
            if not fn_spans:
                continue
            defs = ReachingDefinitions(fn)
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)
                        and within(node, fn_spans)):
                    continue
                for atom in provenance_atoms(
                    node, defs, module.assigns, node.lineno
                ):
                    scan = (scan_call_name(atom.text)
                            if atom.kind == "call" else None)
                    if (scan is None or within(atom.node, fn_spans)
                            or id(atom.node) in reported):
                        continue
                    reported.add(id(atom.node))
                    yield self.finding(
                        ctx, node,
                        f"{node.id!r} is used under the shard lock but "
                        f"derives from a {scan}() scan taken before the "
                        f"lock (line {atom.node.lineno}): the scan is "
                        f"stale once the lock arrives — re-read under "
                        f"the lock instead",
                    )


@register
class LockDisciplineRule(FileRule):
    """CONC002: shard locks are scoped, un-nested, and quick.

    Applies everywhere (the lock seam can be imported anywhere), but is
    inert in modules that never touch it.  Checks:

    * every ``shard_lock(...)`` call is the context expression of a
      ``with`` — a bare call (or an assignment of the context manager)
      can leak a held lock past an exception;
    * no lock region nests inside another: two processes acquiring two
      shards in opposite orders deadlock, so the store's discipline is
      strictly one shard at a time;
    * nothing blocking runs under a lock — ``time.sleep``, subprocess
      spawns, pool submissions, or a whole simulation entry point turn
      an accounting lock into a global serialization point;
    * a bare ``.acquire()`` on any lock object needs a matching
      ``.release()`` on a ``finally`` path in the same function (or use
      ``with`` and let the runtime pair them).
    """

    rule_id = "CONC002"
    summary = (
        "shard locks are with-scoped, never nested, never held across "
        "blocking calls; bare .acquire() pairs with a finally .release()"
    )
    example_bad = (
        "with shard_lock(a_lock):\n"
        "    with shard_lock(b_lock):   # unordered nesting: deadlock\n"
        "        time.sleep(1)          # blocking while holding a lock"
    )
    example_good = (
        "for shard in sorted(doomed):\n"
        "    with shard_lock(lock_path(shard)):   # one at a time\n"
        "        remove_locked(shard, doomed[shard])"
    )

    def check(self, ctx) -> Iterator[Finding]:
        module = module_info(ctx)
        aliases = lock_seam_aliases(module)
        regions = lock_regions(ctx.tree, module, aliases)
        spans = [body_span(region) for region in regions]

        with_items = {
            id(item.context_expr)
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
        }
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and is_lock_call(node, module, aliases)
                    and id(node) not in with_items):
                yield self.finding(
                    ctx, node,
                    "shard_lock(...) acquired outside a 'with' statement: "
                    "an exception between acquire and release leaks a "
                    "held lock to every other process — use "
                    "'with shard_lock(...):'",
                )

        for region in regions:
            others = [body_span(r) for r in regions if r is not region]
            if within(region, others):
                yield self.finding(
                    ctx, region,
                    "nested shard locks: two processes acquiring shards "
                    "in opposite orders deadlock — release the outer "
                    "lock first and take shards strictly one at a time",
                )

        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and within(node, spans)):
                continue
            description = blocking_call_description(node)
            if description is not None:
                yield self.finding(
                    ctx, node,
                    f"blocking call {description} while holding a shard "
                    f"lock: every concurrent reader and writer of the "
                    f"shard stalls behind it — move the slow work "
                    f"outside the locked region",
                )

        yield from self._check_bare_acquire(ctx, with_items)

    def _check_bare_acquire(self, ctx, with_items) -> Iterator[Finding]:
        for fn in function_nodes(ctx.tree):
            released: set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Try):
                    for stmt in node.finalbody:
                        for call in ast.walk(stmt):
                            if (isinstance(call, ast.Call)
                                    and isinstance(call.func, ast.Attribute)
                                    and call.func.attr == "release"):
                                receiver = _dotted(call.func.value)
                                if receiver is not None:
                                    released.add(receiver)
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "acquire"
                        and id(node) not in with_items):
                    continue
                receiver = _dotted(node.func.value)
                if receiver is None or receiver not in released:
                    yield self.finding(
                        ctx, node,
                        f"bare .acquire() without a .release() on a "
                        f"finally path in {fn.name}(): an exception "
                        f"leaves the lock held forever — pair them in "
                        f"try/finally, or use a 'with' block",
                    )


@register
class SharedStateEscapeRule(ProjectRule):
    """CONC003: worker/parent-shared code writes files only via seams.

    Builds the project call graph and computes two reachability
    regions, both *seam-blocked* (traversal records but does not expand
    functions inside the store seams — a write inside the cache is the
    sanctioned path, not an escape):

    * the worker region — everything reachable from ``execute_cell``
      and the ``_worker_*`` pool entry points;
    * the parent region — everything reachable from the scheduling
      entry points: ``CellExecutor.execute`` and the service's batch
      dispatcher (``BatchingScheduler._dispatch``), which drives the
      same persistent pool from the event loop.

    Any function in *both* regions can run concurrently in N+1
    processes.  If it performs a raw file write or a path mutation
    without going through the store seam, two processes can tear or
    lose that file in ways no lock in the store layer can prevent —
    the generalization of PAR001 from module globals to the filesystem.
    """

    rule_id = "CONC003"
    summary = (
        "code reachable from both pool workers and the parent never "
        "writes or mutates files except through the result-store seams"
    )
    anchor = ENGINE_SUFFIX
    example_bad = (
        "def execute_cell(ctx, cell):\n"
        "    with open(\"progress.json\", \"w\") as f:   # N workers +\n"
        "        f.write(status)                       # parent race here"
    )
    example_good = (
        "def execute_cell(ctx, cell):\n"
        "    ...  # results flow back to the parent, which writes them\n"
        "    # through ResultCache (sharded store + shard locks)"
    )

    def __init__(
        self,
        anchor: str = ENGINE_SUFFIX,
        worker_entry: str = "execute_cell",
        cells_suffix: str = CELLS_SUFFIX,
        parent_entry: str = "execute",
        seam_suffixes: tuple[str, ...] = STORE_SEAM_SUFFIXES,
        extra_worker_roots: tuple[str, ...] = (),
        extra_parent_roots: tuple[str, ...] = (),
        parent_entry_sites: tuple[tuple[str, str], ...] = (
            (SERVICE_DISPATCH_ENTRY, SERVICE_BATCHING_SUFFIX),
        ),
    ):
        self.anchor = anchor
        self.worker_entry = worker_entry
        self.cells_suffix = cells_suffix
        self.parent_entry = parent_entry
        self.seam_suffixes = seam_suffixes
        self._extra_worker_roots = extra_worker_roots
        self._extra_parent_roots = extra_parent_roots
        #: (function name, path suffix) pairs resolved against the
        #: linted tree at check time — absent modules simply contribute
        #: no roots, so fixture trees without the service still lint.
        self.parent_entry_sites = parent_entry_sites

    def check_project(self, anchor_ctx, project) -> Iterator[Finding]:
        from repro.lint.concurrency import seam_blocked_reach

        graph = CallGraph.build(project)
        worker_roots = [
            fn.qualname
            for fn in graph.functions.values()
            if (fn.ctx is anchor_ctx and fn.cls is None
                and fn.name.startswith("_worker"))
        ]
        worker_roots += [
            fn.qualname
            for fn in graph.functions_named(self.worker_entry,
                                            self.cells_suffix)
        ]
        worker_roots += list(self._extra_worker_roots)
        parent_roots = [
            fn.qualname
            for fn in graph.functions_named(self.parent_entry, self.anchor)
        ]
        for name, suffix in self.parent_entry_sites:
            parent_roots += [
                fn.qualname for fn in graph.functions_named(name, suffix)
            ]
        parent_roots += list(self._extra_parent_roots)

        workers = seam_blocked_reach(graph, worker_roots, self.seam_suffixes)
        parents = seam_blocked_reach(graph, parent_roots, self.seam_suffixes)
        for qualname in sorted(set(workers) & set(parents)):
            fn = workers[qualname]
            if any(fn.ctx.matches(suffix) for suffix in self.seam_suffixes):
                continue
            for node, description in raw_write_calls(fn.node):
                yield self.finding(
                    fn.ctx, node,
                    f"{fn.qualname} is reachable from both the pool "
                    f"workers and the parent, and performs a raw file "
                    f"write ({description}) outside the store seams: "
                    f"N+1 processes can race on the same path — route "
                    f"the artifact through the result store",
                )
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                description = mutation_call_description(node)
                if description is not None:
                    yield self.finding(
                        fn.ctx, node,
                        f"{fn.qualname} is reachable from both the pool "
                        f"workers and the parent, and mutates a path "
                        f"({description}) outside the store seams: a "
                        f"concurrent process can lose the update or "
                        f"observe the gap — route it through the store",
                    )


@register
class ResourceLeakRule(_ConcStoreRule):
    """CONC004: store modules scope every descriptor they open.

    Pool workers are long-lived, so a descriptor leaked per cache read
    is an ``EMFILE`` crash thousands of cells later, attributed to an
    innocent cell.  In store modules (the atomic seam included — it is
    where the raw descriptors live):

    * ``open``/``io.open``/``os.fdopen`` must be a ``with`` context
      expression, never a bare call or assignment;
    * a raw ``os.open`` descriptor needs an ``os.close(fd)`` on a
      ``finally`` path in the same function;
    * a ``mkstemp`` temp file needs an unlink on the failure path
      (``except``/``finally``) so a crashed write cannot strand temp
      files in the store forever.
    """

    rule_id = "CONC004"
    summary = (
        "store modules open descriptors only as context managers; raw "
        "os.open closes on finally; mkstemp temp names unlink on failure"
    )
    include_seam = True
    example_bad = (
        "stream = open(path)        # leaks on any exception\n"
        "payload = json.load(stream)"
    )
    example_good = (
        "with open(path, \"r\", encoding=\"utf-8\") as stream:\n"
        "    payload = json.load(stream)"
    )

    def check(self, ctx) -> Iterator[Finding]:
        with_items = {
            id(item.context_expr)
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in _OPEN_CALLS and id(node) not in with_items:
                yield self.finding(
                    ctx, node,
                    f"{dotted}(...) outside a 'with' block: the "
                    f"descriptor leaks on any exception before close, "
                    f"and long-lived pool workers turn that into an "
                    f"fd-limit crash — use a context manager",
                )
        for fn in function_nodes(ctx.tree):
            yield from self._check_os_open(ctx, fn, with_items)
            yield from self._check_mkstemp(ctx, fn)

    def _check_os_open(self, ctx, fn, with_items) -> Iterator[Finding]:
        closed = self._closed_in_finally(fn)
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and _dotted(node.value.func) == "os.open"
                    and id(node.value) not in with_items):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id not in closed:
                yield self.finding(
                    ctx, node,
                    f"os.open descriptor {target.id!r} has no "
                    f"os.close({target.id}) on a finally path in "
                    f"{fn.name}(): an exception leaks the descriptor — "
                    f"close it in try/finally",
                )

    def _check_mkstemp(self, ctx, fn) -> Iterator[Finding]:
        cleaned = self._cleanup_targets(fn)
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)):
                continue
            dotted = _dotted(node.value.func)
            if dotted is None or dotted.split(".")[-1] != "mkstemp":
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Tuple)
                    and len(target.elts) == 2
                    and isinstance(target.elts[1], ast.Name)):
                continue
            tmp_name = target.elts[1].id
            if tmp_name not in cleaned:
                yield self.finding(
                    ctx, node,
                    f"mkstemp temp file {tmp_name!r} is never unlinked "
                    f"on a failure path in {fn.name}(): a crashed write "
                    f"strands temp files in the store forever — unlink "
                    f"it in an except/finally handler",
                )

    @staticmethod
    def _closed_in_finally(fn) -> set[str]:
        """Names passed to ``os.close`` inside a finally block of ``fn``."""
        closed: set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Try):
                continue
            for stmt in node.finalbody:
                for call in ast.walk(stmt):
                    if (isinstance(call, ast.Call)
                            and _dotted(call.func) == "os.close"
                            and call.args
                            and isinstance(call.args[0], ast.Name)):
                        closed.add(call.args[0].id)
        return closed

    @staticmethod
    def _cleanup_targets(fn) -> set[str]:
        """Names unlinked inside except handlers or finally blocks."""
        cleaned: set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Try):
                continue
            regions = list(node.finalbody)
            for handler in node.handlers:
                regions.extend(handler.body)
            for stmt in regions:
                for call in ast.walk(stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    dotted = _dotted(call.func)
                    if (dotted in ("os.unlink", "os.remove")
                            and call.args
                            and isinstance(call.args[0], ast.Name)):
                        cleaned.add(call.args[0].id)
        return cleaned
